//! Delta-oriented K-means clustering (Listing 3).
//!
//! The mutable set is the centroid relation `(cid, x, y)`, held by the
//! fixpoint; the *much larger* point set is immutable state inside the join
//! handler `KMAgg`. On each centroid delta, `KMAgg` re-examines point
//! assignments and — for every point that switches — emits a pair of
//! coordinate adjustments: `(newCid, +x, +y, +1)` and `(oldCid, -x, -y,
//! -1)` (the Listing 3 pattern). A `CentroidAvg` aggregate maintains
//! per-cluster running sums and emits the new mean. The query reaches its
//! fixpoint when no point switches centroids — the paper's termination
//! criterion.
//!
//! Because every point must see every centroid, the centroid feedback
//! passes through an *empty-key rehash*, which the cluster router treats as
//! a broadcast; points stay partitioned and never move.

use rex_cluster::runtime::PlanBuilder;
use rex_core::delta::{Annotation, Delta};
use rex_core::error::{Result, RexError};
use rex_core::exec::PlanGraph;
use rex_core::handlers::{AggHandler, AggOutputKind, AggState, JoinHandler, TupleSet};
use rex_core::operators::{
    AggSpec, FixpointOp, GroupByOp, HashJoinOp, ScanOp, SinkOp, Termination,
};
use rex_core::tuple::Tuple;
use rex_core::value::{DataType, Value};
use rex_data::points::Point;
use std::sync::Arc;

/// Configuration for the K-means plans.
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Iteration safety cap.
    pub max_iterations: u64,
}

impl Default for KMeansConfig {
    fn default() -> KMeansConfig {
        KMeansConfig { k: 8, max_iterations: 100 }
    }
}

// Point-state tuples inside the handler: (nid, x, y, cid, dist).
const P_NID: usize = 0;
const P_X: usize = 1;
const P_Y: usize = 2;
const P_CID: usize = 3;
const P_DIST: usize = 4;

/// The paper's `KMAgg` join handler (Listing 3). Left bucket: centroids
/// `(cid, cx, cy)`; right bucket: point state `(nid, x, y, cid, dist)`.
/// Both sides join on the empty key (one logical bucket per worker).
pub struct KmAgg;

impl KmAgg {
    fn switch_point(
        point: &Tuple,
        new_cid: i64,
        new_dist: f64,
        right: &mut TupleSet,
        out: &mut Vec<Delta>,
    ) {
        let old_cid = point.get(P_CID).as_int().unwrap_or(-1);
        let x = point.get(P_X).as_double().unwrap_or(0.0);
        let y = point.get(P_Y).as_double().unwrap_or(0.0);
        let updated = Tuple::new(vec![
            point.get(P_NID).clone(),
            point.get(P_X).clone(),
            point.get(P_Y).clone(),
            Value::Int(new_cid),
            Value::Double(new_dist),
        ]);
        right.put_by_key(P_NID, updated);
        out.push(Delta::insert(Tuple::new(vec![
            Value::Int(new_cid),
            Value::Double(x),
            Value::Double(y),
            Value::Int(1),
        ])));
        if old_cid >= 0 {
            out.push(Delta::insert(Tuple::new(vec![
                Value::Int(old_cid),
                Value::Double(-x),
                Value::Double(-y),
                Value::Int(-1),
            ])));
        }
    }

    /// Update a point's stored distance without changing its assignment.
    fn refresh_dist(point: &Tuple, dist: f64, right: &mut TupleSet) {
        let mut vals: Vec<Value> = point.values().to_vec();
        vals[P_DIST] = Value::Double(dist);
        right.put_by_key(P_NID, Tuple::new(vals));
    }
}

impl JoinHandler for KmAgg {
    fn name(&self) -> &str {
        "KMAgg"
    }

    fn update(
        &self,
        left: &mut TupleSet,
        right: &mut TupleSet,
        d: &Delta,
        from_left: bool,
    ) -> Result<Vec<Delta>> {
        if !from_left {
            // A raw point (nid, x, y) arrives: initialize its state as
            // unassigned. Assignment happens as centroid deltas stream in.
            let t = &d.tuple;
            right.put_by_key(
                P_NID,
                Tuple::new(vec![
                    t.try_get(0)?.clone(),
                    t.try_get(1)?.clone(),
                    t.try_get(2)?.clone(),
                    Value::Int(-1),
                    Value::Double(f64::INFINITY),
                ]),
            );
            return Ok(Vec::new());
        }
        if matches!(d.ann, Annotation::Delete) {
            return Ok(Vec::new());
        }
        // Centroid delta (cid, cx, cy): update the centroid bucket, then
        // re-evaluate every point against it (Listing 3's loop).
        let cid = d
            .tuple
            .get(0)
            .as_int()
            .ok_or_else(|| RexError::Exec("KMAgg expects (cid:Int, x, y)".into()))?;
        let cx = d.tuple.get(1).as_double().unwrap_or(0.0);
        let cy = d.tuple.get(2).as_double().unwrap_or(0.0);
        left.put_by_key(0, d.tuple.clone());

        let centroids: Vec<(i64, f64, f64)> = left
            .iter()
            .filter_map(|t| {
                Some((t.get(0).as_int()?, t.get(1).as_double()?, t.get(2).as_double()?))
            })
            .collect();

        let mut out = Vec::new();
        let points: Vec<Tuple> = right.tuples().to_vec();
        for p in points {
            let px = p.get(P_X).as_double().unwrap_or(0.0);
            let py = p.get(P_Y).as_double().unwrap_or(0.0);
            let own_cid = p.get(P_CID).as_int().unwrap_or(-1);
            let own_dist = p.get(P_DIST).as_double().unwrap_or(f64::INFINITY);
            let dist = ((px - cx).powi(2) + (py - cy).powi(2)).sqrt();
            if own_cid == cid {
                // The point's own centroid moved. If it moved closer, just
                // refresh the distance; if it moved away, the point may now
                // prefer another centroid — rescan all of them.
                if dist <= own_dist {
                    Self::refresh_dist(&p, dist, right);
                } else {
                    let (best_cid, best_dist) = centroids
                        .iter()
                        .map(|&(c, x, y)| (c, ((px - x).powi(2) + (py - y).powi(2)).sqrt()))
                        .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
                        .unwrap_or((cid, dist));
                    if best_cid == cid {
                        Self::refresh_dist(&p, dist, right);
                    } else {
                        let mut refreshed: Vec<Value> = p.values().to_vec();
                        refreshed[P_DIST] = Value::Double(dist);
                        Self::switch_point(
                            &Tuple::new(refreshed),
                            best_cid,
                            best_dist,
                            right,
                            &mut out,
                        );
                    }
                }
            } else if dist < own_dist {
                // Listing 3: `if (oldCid < 0 || dist < oldDist)` — switch.
                Self::switch_point(&p, cid, dist, right, &mut out);
            }
        }
        Ok(out)
    }
}

/// Running per-cluster coordinate sums: state `(Σx, Σy, n)` adjusted by the
/// `(±x, ±y, ±1)` deltas `KMAgg` emits; the result is the cluster mean.
/// Table-valued so it can emit two coordinates (group-by prefixes the cid).
pub struct CentroidAvg;

impl AggHandler for CentroidAvg {
    fn name(&self) -> &str {
        "CentroidAvg"
    }

    fn init(&self) -> AggState {
        AggState::Value(Value::list(vec![Value::Double(0.0), Value::Double(0.0), Value::Int(0)]))
    }

    fn agg_state(&self, state: &mut AggState, d: &Delta) -> Result<Vec<Delta>> {
        let AggState::Value(Value::List(list)) = state else {
            return Err(RexError::Exec("CentroidAvg state must be a list".into()));
        };
        let sx = list[0].as_double().unwrap_or(0.0);
        let sy = list[1].as_double().unwrap_or(0.0);
        let n = list[2].as_int().unwrap_or(0);
        // Input tuple (projected): (dx, dy, dn).
        let dx = d.tuple.get(0).as_double().unwrap_or(0.0);
        let dy = d.tuple.get(1).as_double().unwrap_or(0.0);
        let dn = d.tuple.get(2).as_int().unwrap_or(0);
        let sign = if matches!(d.ann, Annotation::Delete) { -1.0 } else { 1.0 };
        *state = AggState::Value(Value::list(vec![
            Value::Double(sx + sign * dx),
            Value::Double(sy + sign * dy),
            Value::Int(n + if sign < 0.0 { -dn } else { dn }),
        ]));
        Ok(Vec::new())
    }

    fn agg_result(&self, state: &AggState) -> Result<Vec<Delta>> {
        let AggState::Value(Value::List(list)) = state else {
            return Err(RexError::Exec("CentroidAvg state must be a list".into()));
        };
        let n = list[2].as_int().unwrap_or(0);
        if n <= 0 {
            // Empty cluster: keep the previous centroid (emit nothing).
            return Ok(Vec::new());
        }
        let sx = list[0].as_double().unwrap_or(0.0);
        let sy = list[1].as_double().unwrap_or(0.0);
        Ok(vec![Delta::insert(Tuple::new(vec![
            Value::Double(sx / n as f64),
            Value::Double(sy / n as f64),
        ]))])
    }

    fn output_kind(&self) -> AggOutputKind {
        AggOutputKind::TableValued
    }

    fn return_type(&self) -> DataType {
        DataType::Double
    }
}

/// Initial centroid tuples `(cid, x, y)` sampled from the points.
pub fn centroid_tuples(points: &[Point], k: usize) -> Vec<Tuple> {
    crate::reference::sample_centroids(points, k)
        .into_iter()
        .enumerate()
        .map(|(cid, p)| {
            Tuple::new(vec![Value::Int(cid as i64), Value::Double(p.x), Value::Double(p.y)])
        })
        .collect()
}

fn wire(g: &mut PlanGraph, centroids: Vec<Tuple>, points: Vec<Tuple>, cfg: KMeansConfig) {
    let scan_centroids = g.add(Box::new(ScanOp::new("km_base", centroids)));
    let scan_points = g.add(Box::new(ScanOp::new("geodata", points)));
    let fp =
        g.add(Box::new(FixpointOp::new(vec![0], Termination::FixpointOrMax(cfg.max_iterations))));
    // Empty-key rehash = broadcast: every worker sees every centroid delta.
    let bcast = g.add_rehash(vec![]);
    let join = g.add(Box::new(HashJoinOp::new(vec![], vec![]).with_handler(Arc::new(KmAgg))));
    let rehash = g.add_rehash(vec![0]);
    let gb = g.add(Box::new(GroupByOp::new(
        vec![0],
        vec![AggSpec::new(Arc::new(CentroidAvg), vec![1, 2, 3])],
    )));
    let sink = g.add(Box::new(SinkOp::new()));

    g.connect(scan_centroids, 0, fp, 0);
    g.connect(scan_points, 0, join, 1);
    g.connect(fp, 0, bcast, 0);
    g.connect(bcast, 0, join, 0);
    g.pipe(join, rehash); // (cid, ±x, ±y, ±1)
    g.connect(rehash, 0, gb, 0);
    g.connect(gb, 0, fp, 1); // (cid, x̄, ȳ)
    g.connect(fp, 1, sink, 0);
}

/// Single-node plan over in-memory points.
pub fn plan_local(points: &[Point], cfg: KMeansConfig) -> PlanGraph {
    let mut g = PlanGraph::new();
    let centroids = centroid_tuples(points, cfg.k);
    g_wire_points(&mut g, centroids, points, cfg);
    g
}

fn g_wire_points(g: &mut PlanGraph, centroids: Vec<Tuple>, points: &[Point], cfg: KMeansConfig) {
    let point_tuples = rex_data::points::point_tuples(points);
    wire(g, centroids, point_tuples, cfg);
}

/// Cluster plan builder: points (`geodata`, partitioned by `nid`) stay
/// local; initial centroids are derived deterministically from the full
/// table and each worker seeds the ones it owns by `cid`.
pub fn plan_builder(cfg: KMeansConfig) -> PlanBuilder {
    Arc::new(move |worker, snap, catalog| {
        let table = catalog.get("geodata")?;
        let all_points: Vec<Point> = table
            .rows()
            .iter()
            .filter_map(|t| Some(Point { x: t.get(1).as_double()?, y: t.get(2).as_double()? }))
            .collect();
        let centroids: Vec<Tuple> = centroid_tuples(&all_points, cfg.k)
            .into_iter()
            .filter(|t| snap.owner_of_key(&t.key(&[0])) == worker)
            .collect();
        let points = table.partition_for(snap, worker);
        let mut g = PlanGraph::new();
        wire(&mut g, centroids, points, cfg);
        Ok(g)
    })
}

/// Extract `(cid → centroid)` from query results `(cid, x, y)`.
pub fn centroids_from_results(results: &[Tuple], k: usize) -> Vec<Point> {
    let mut out = vec![Point { x: f64::NAN, y: f64::NAN }; k];
    for t in results {
        if let (Some(c), Some(x), Some(y)) =
            (t.get(0).as_int(), t.get(1).as_double(), t.get(2).as_double())
        {
            if (0..k as i64).contains(&c) {
                out[c as usize] = Point { x, y };
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use rex_cluster::runtime::{ClusterConfig, ClusterRuntime};
    use rex_core::exec::LocalRuntime;
    use rex_data::points::{generate_points, PointSpec};
    use rex_storage::catalog::Catalog;
    use rex_storage::table::StoredTable;

    fn pts() -> Vec<Point> {
        generate_points(PointSpec { n_points: 240, n_clusters: 4, stddev: 1.0, seed: 21 })
    }

    fn reference_run(points: &[Point], k: usize) -> Vec<Point> {
        let init = reference::sample_centroids(points, k);
        reference::kmeans(points, &init, 200).0
    }

    fn assert_centroids_close(a: &[Point], b: &[Point], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(x.dist(y) < tol, "centroid {i}: ({}, {}) vs ({}, {})", x.x, x.y, y.x, y.y);
        }
    }

    #[test]
    fn local_plan_matches_lloyd_reference() {
        let points = pts();
        let k = 4;
        let plan = plan_local(&points, KMeansConfig { k, max_iterations: 200 });
        let (results, report) = LocalRuntime::new().run(plan).unwrap();
        let got = centroids_from_results(&results, k);
        let want = reference_run(&points, k);
        assert_centroids_close(&got, &want, 1e-6);
        // Converged via the no-switch criterion, not the cap.
        assert!(report.iterations() < 200);
        assert_eq!(report.strata.last().unwrap().delta_set_size, 0);
    }

    #[test]
    fn switch_counts_decrease() {
        let points =
            generate_points(PointSpec { n_points: 600, n_clusters: 6, stddev: 2.5, seed: 3 });
        let plan = plan_local(&points, KMeansConfig { k: 6, max_iterations: 200 });
        let (_, report) = LocalRuntime::new().run(plan).unwrap();
        let sizes: Vec<u64> = report.strata.iter().map(|s| s.delta_set_size).collect();
        assert!(sizes.len() >= 3);
        assert!(*sizes.last().unwrap() < sizes[0]);
    }

    #[test]
    fn cluster_matches_local() {
        let points = pts();
        let k = 4;
        let cfg = KMeansConfig { k, max_iterations: 200 };
        let (local_res, _) = LocalRuntime::new().run(plan_local(&points, cfg)).unwrap();

        let cat = Catalog::new();
        let mut t = StoredTable::new("geodata", rex_data::points::schema(), vec![0]);
        t.load(rex_data::points::point_tuples(&points)).unwrap();
        cat.register(t);
        let rt = ClusterRuntime::new(ClusterConfig::new(3), cat);
        let (cluster_res, report) = rt.run(plan_builder(cfg)).unwrap();

        let l = centroids_from_results(&local_res, k);
        let c = centroids_from_results(&cluster_res, k);
        assert_centroids_close(&l, &c, 1e-9);
        assert!(report.query.totals.bytes_sent > 0, "broadcast must ship data");
    }

    #[test]
    fn centroid_avg_accumulates_signed_adjustments() {
        let a = CentroidAvg;
        let mut st = a.init();
        let add = |st: &mut AggState, x: f64, y: f64, n: i64| {
            a.agg_state(
                st,
                &Delta::insert(Tuple::new(vec![Value::Double(x), Value::Double(y), Value::Int(n)])),
            )
            .unwrap();
        };
        add(&mut st, 2.0, 4.0, 1);
        add(&mut st, 4.0, 8.0, 1);
        add(&mut st, -2.0, -4.0, -1); // a point left the cluster
        let out = a.agg_result(&st).unwrap();
        assert_eq!(out[0].tuple.get(0).as_double(), Some(4.0));
        assert_eq!(out[0].tuple.get(1).as_double(), Some(8.0));
    }

    #[test]
    fn centroid_avg_stays_silent_for_empty_cluster() {
        let a = CentroidAvg;
        let st = a.init();
        assert!(a.agg_result(&st).unwrap().is_empty());
    }

    #[test]
    fn km_agg_reassigns_on_better_centroid() {
        let h = KmAgg;
        let mut left = TupleSet::new();
        let mut right = TupleSet::new();
        // One point at (0, 0).
        h.update(
            &mut left,
            &mut right,
            &Delta::insert(Tuple::new(vec![Value::Int(0), Value::Double(0.0), Value::Double(0.0)])),
            false,
        )
        .unwrap();
        // Centroid 0 at (10, 0): point assigns to it.
        let out = h
            .update(
                &mut left,
                &mut right,
                &Delta::insert(Tuple::new(vec![
                    Value::Int(0),
                    Value::Double(10.0),
                    Value::Double(0.0),
                ])),
                true,
            )
            .unwrap();
        assert_eq!(out.len(), 1); // join only (no departure from -1)
                                  // Centroid 1 at (1, 0): closer → switch emits +1 into 1, -1 from 0.
        let out = h
            .update(
                &mut left,
                &mut right,
                &Delta::insert(Tuple::new(vec![
                    Value::Int(1),
                    Value::Double(1.0),
                    Value::Double(0.0),
                ])),
                true,
            )
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].tuple.get(0).as_int(), Some(1));
        assert_eq!(out[0].tuple.get(3).as_int(), Some(1));
        assert_eq!(out[1].tuple.get(0).as_int(), Some(0));
        assert_eq!(out[1].tuple.get(3).as_int(), Some(-1));
    }

    #[test]
    fn km_agg_rescans_when_own_centroid_moves_away() {
        let h = KmAgg;
        let mut left = TupleSet::new();
        let mut right = TupleSet::new();
        let point =
            Delta::insert(Tuple::new(vec![Value::Int(0), Value::Double(0.0), Value::Double(0.0)]));
        h.update(&mut left, &mut right, &point, false).unwrap();
        let centroid = |cid: i64, x: f64| {
            Delta::insert(Tuple::new(vec![Value::Int(cid), Value::Double(x), Value::Double(0.0)]))
        };
        h.update(&mut left, &mut right, &centroid(0, 1.0), true).unwrap();
        h.update(&mut left, &mut right, &centroid(1, 5.0), true).unwrap();
        // Centroid 0 moves to 9.0 — now centroid 1 (at 5.0) is better.
        let out = h.update(&mut left, &mut right, &centroid(0, 9.0), true).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].tuple.get(0).as_int(), Some(1));
        // Point state reflects the new owner.
        let p = right.tuples()[0].clone();
        assert_eq!(p.get(P_CID).as_int(), Some(1));
        assert_eq!(p.get(P_DIST).as_double(), Some(5.0));
    }
}
