//! Delta-oriented PageRank on the REX engine (Listing 1 / Figure 1).
//!
//! The plan mirrors the paper's Figure 1:
//!
//! ```text
//! scan(pr base) ──► fixpoint(srcId) ──feedback──► join[PRAgg] ◄── scan(graph)
//!                        ▲                            │ (destId, prDiff)
//!                        │                            ▼
//!                        └──── groupBy[RankAccum] ◄── rehash(destId)
//! ```
//!
//! The join handler `PRAgg` keeps the *mutable* PageRank bucket and the
//! *immutable* neighbor bucket per `srcId`; when a vertex's rank changes by
//! more than the threshold it sends `ΔPR/outdeg` to each out-neighbor
//! (Listing 1's `update`). `RankAccum` accumulates incoming shares per
//! destination and emits `0.15 + 0.85·acc` for changed groups only. In
//! *no-delta* mode the full rank relation is recomputed and re-propagated
//! every stratum (the paper's `no-delta` baseline).

use crate::common::per_vertex_doubles;
use crate::reference::{BASE_RANK, DAMPING};
use rex_cluster::runtime::PlanBuilder;
use rex_core::delta::{Annotation, Delta};
use rex_core::error::{Result, RexError};
use rex_core::exec::PlanGraph;
use rex_core::handlers::{AggHandler, AggState, JoinHandler, TupleSet};
use rex_core::operators::{
    AggSpec, FixpointOp, GroupByOp, HashJoinOp, ScanOp, SinkOp, Termination,
};
use rex_core::tuple::Tuple;
use rex_core::value::{DataType, Value};
use rex_data::graph::Graph;
use std::sync::Arc;

/// Configuration shared by the PageRank plan variants.
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Propagation threshold: diffs with `|ΔPR| ≤ threshold` are absorbed
    /// into the bucket without propagating (Listing 1 uses `0.01`).
    pub threshold: f64,
    /// Iteration count for the fixed-iteration variants (no-delta / wrap);
    /// also the safety cap for the delta variant.
    pub max_iterations: u64,
}

impl Default for PageRankConfig {
    fn default() -> PageRankConfig {
        PageRankConfig { threshold: 0.01, max_iterations: 60 }
    }
}

/// The paper's `PRAgg` join handler (Listing 1). Left bucket: the PageRank
/// state `(srcId, pr)`; right bucket: graph edges `(srcId, destId)`.
pub struct PrAgg {
    /// Propagation threshold; `0.0` propagates every change.
    pub threshold: f64,
    /// Delta mode sends `ΔPR/outdeg`; no-delta mode re-sends the full
    /// `PR/outdeg` share every time (and never suppresses).
    pub delta_mode: bool,
}

impl PrAgg {
    /// Delta-mode handler with the given threshold.
    pub fn delta(threshold: f64) -> PrAgg {
        PrAgg { threshold, delta_mode: true }
    }

    /// No-delta handler: full recomputation each stratum.
    pub fn no_delta() -> PrAgg {
        PrAgg { threshold: 0.0, delta_mode: false }
    }
}

impl JoinHandler for PrAgg {
    fn name(&self) -> &str {
        if self.delta_mode {
            "PRAgg"
        } else {
            "PRAgg-noΔ"
        }
    }

    fn update(
        &self,
        left: &mut TupleSet,
        right: &mut TupleSet,
        d: &Delta,
        from_left: bool,
    ) -> Result<Vec<Delta>> {
        if !from_left {
            // Graph edges accumulate into the immutable neighbor bucket.
            right.insert(d.tuple.clone());
            return Ok(Vec::new());
        }
        let src = d.tuple.try_get(0)?.clone();
        let new_pr = match &d.ann {
            Annotation::Delete => 0.0,
            _ => d
                .tuple
                .get(1)
                .as_double()
                .ok_or_else(|| RexError::Exec("PRAgg expects (srcId, pr:Double)".into()))?,
        };
        let old_pr = left.get_by_key(0, &src).and_then(|t| t.get(1).as_double()).unwrap_or(0.0);
        let first_arrival = left.get_by_key(0, &src).is_none();
        // Listing 1: `prBucket.put(nbrId, pr)` happens unconditionally —
        // sub-threshold residue is absorbed, not banked.
        if matches!(d.ann, Annotation::Delete) {
            let old = left.get_by_key(0, &src).cloned();
            if let Some(old) = old {
                left.remove(&old);
            }
        } else {
            left.put_by_key(0, d.tuple.clone());
        }
        let delta_pr = new_pr - old_pr;
        let mut out = Vec::new();
        if first_arrival {
            // Seed the destination group so vertices without in-edges still
            // converge to the base rank 0.15.
            out.push(Delta::insert(Tuple::new(vec![src.clone(), Value::Double(0.0)])));
        }
        let out_deg = right.len();
        if out_deg == 0 {
            return Ok(out);
        }
        if self.delta_mode {
            if delta_pr.abs() > self.threshold {
                let share = delta_pr / out_deg as f64;
                for e in right.iter() {
                    out.push(Delta::insert(Tuple::new(vec![
                        e.get(1).clone(),
                        Value::Double(share),
                    ])));
                }
            }
        } else {
            // Full share of the current rank, every stratum.
            let share = new_pr / out_deg as f64;
            for e in right.iter() {
                out.push(Delta::insert(Tuple::new(vec![e.get(1).clone(), Value::Double(share)])));
            }
        }
        Ok(out)
    }
}

/// Accumulating rank aggregate: state is the running sum of received
/// shares; the group result is `0.15 + 0.85 · acc`.
pub struct RankAccum;

impl AggHandler for RankAccum {
    fn name(&self) -> &str {
        "RankAccum"
    }

    fn init(&self) -> AggState {
        AggState::Double(0.0)
    }

    fn agg_state(&self, state: &mut AggState, d: &Delta) -> Result<Vec<Delta>> {
        let share = d
            .tuple
            .get(1)
            .as_double()
            .ok_or_else(|| RexError::Exec("RankAccum expects (dest, share:Double)".into()))?;
        let AggState::Double(acc) = state else {
            return Err(RexError::Exec("RankAccum state must be Double".into()));
        };
        match &d.ann {
            Annotation::Delete => *acc -= share,
            _ => *acc += share,
        }
        Ok(Vec::new())
    }

    fn agg_result(&self, state: &AggState) -> Result<Vec<Delta>> {
        let AggState::Double(acc) = state else {
            return Err(RexError::Exec("RankAccum state must be Double".into()));
        };
        Ok(vec![Delta::insert(Tuple::new(vec![Value::Double(BASE_RANK + DAMPING * acc)]))])
    }

    fn return_type(&self) -> DataType {
        DataType::Double
    }

    fn composable(&self) -> bool {
        true // sums of shares can be partially pre-aggregated
    }
}

/// Which evaluation strategy a plan uses (the paper's REX configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// `REX Δ`: propagate only significant diffs, implicit termination.
    Delta,
    /// `REX no-Δ`: re-derive the full mutable set each stratum, fixed
    /// iteration count.
    NoDelta,
}

/// Wire the Figure 1 plan into `g`, reading base ranks and edges from the
/// given tuple sets. Returns the sink node.
fn wire(
    g: &mut PlanGraph,
    base: Vec<Tuple>,
    edges: Vec<Tuple>,
    cfg: PageRankConfig,
    strategy: Strategy,
) {
    let scan_base = g.add(Box::new(ScanOp::new("pr_base", base)));
    let scan_graph = g.add(Box::new(ScanOp::new("graph", edges)));
    let fp = match strategy {
        Strategy::Delta => g.add(Box::new(FixpointOp::new(
            vec![0],
            Termination::FixpointOrMax(cfg.max_iterations),
        ))),
        Strategy::NoDelta => g.add(Box::new(
            FixpointOp::new(vec![0], Termination::ExactStrata(cfg.max_iterations)).no_delta(),
        )),
    };
    let handler: Arc<dyn JoinHandler> = match strategy {
        Strategy::Delta => Arc::new(PrAgg::delta(cfg.threshold)),
        Strategy::NoDelta => Arc::new(PrAgg::no_delta()),
    };
    let join = g.add(Box::new(HashJoinOp::new(vec![0], vec![0]).with_handler(handler)));
    let rehash = g.add_rehash(vec![0]);
    let gb = match strategy {
        Strategy::Delta => {
            GroupByOp::new(vec![0], vec![AggSpec::new(Arc::new(RankAccum), vec![0, 1])])
        }
        Strategy::NoDelta => {
            GroupByOp::new(vec![0], vec![AggSpec::new(Arc::new(RankAccum), vec![0, 1])])
                .without_retention()
        }
    };
    let gb = g.add(Box::new(gb));
    let sink = g.add(Box::new(SinkOp::new()));

    g.connect(scan_base, 0, fp, 0); // base case
    g.connect(scan_graph, 0, join, 1); // immutable edges
    g.connect(fp, 0, join, 0); // feedback: PR deltas
    g.pipe(join, rehash); // (destId, share)
    g.connect(rehash, 0, gb, 0);
    g.connect(gb, 0, fp, 1); // recursive results
    g.connect(fp, 1, sink, 0); // final ranks
}

/// Base-case tuples `(srcId, 1.0)` for the distinct sources in `edges`.
fn base_tuples(edges: &[Tuple]) -> Vec<Tuple> {
    let mut srcs: Vec<i64> = edges.iter().filter_map(|t| t.get(0).as_int()).collect();
    srcs.sort_unstable();
    srcs.dedup();
    srcs.into_iter().map(|s| Tuple::new(vec![Value::Int(s), Value::Double(1.0)])).collect()
}

/// Single-node plan over an in-memory graph.
pub fn plan_local(graph: &Graph, cfg: PageRankConfig, strategy: Strategy) -> PlanGraph {
    let edges = graph.edge_tuples();
    let base = base_tuples(&edges);
    let mut g = PlanGraph::new();
    wire(&mut g, base, edges, cfg, strategy);
    g
}

/// Cluster plan builder: every worker scans its partition of the `graph`
/// table (partitioned by `srcId`) and derives its local base case.
pub fn plan_builder(cfg: PageRankConfig, strategy: Strategy) -> PlanBuilder {
    Arc::new(move |worker, snap, catalog| {
        let table = catalog.get("graph")?;
        let edges = table.partition_for(snap, worker);
        let base = base_tuples(&edges);
        let mut g = PlanGraph::new();
        wire(&mut g, base, edges, cfg, strategy);
        Ok(g)
    })
}

/// Extract final per-vertex ranks from query results. Vertices absent from
/// the result (isolated) default to the base rank.
pub fn ranks_from_results(results: &[Tuple], n_vertices: usize) -> Vec<f64> {
    per_vertex_doubles(results, n_vertices, BASE_RANK)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::max_abs_diff;
    use crate::reference;
    use rex_cluster::runtime::{ClusterConfig, ClusterRuntime};
    use rex_core::exec::LocalRuntime;
    use rex_data::graph::{generate_graph, GraphSpec};
    use rex_storage::catalog::Catalog;
    use rex_storage::table::StoredTable;

    fn small_graph() -> Graph {
        generate_graph(GraphSpec {
            n_vertices: 60,
            edges_per_vertex: 3,
            seed: 1,
            random_edge_fraction: 0.1,
            locality_window: 0,
        })
    }

    fn graph_catalog(g: &Graph) -> Catalog {
        let cat = Catalog::new();
        let mut t = StoredTable::new("graph", Graph::schema(), vec![0]);
        t.load(g.edge_tuples()).unwrap();
        cat.register(t);
        cat
    }

    #[test]
    fn no_delta_matches_reference_exactly() {
        let g = small_graph();
        let cfg = PageRankConfig { threshold: 0.0, max_iterations: 10 };
        let plan = plan_local(&g, cfg, Strategy::NoDelta);
        let (results, report) = LocalRuntime::new().run(plan).unwrap();
        let got = ranks_from_results(&results, g.n_vertices);
        let want = reference::pagerank(&g, 10);
        assert!(max_abs_diff(&got, &want) < 1e-9, "diff {}", max_abs_diff(&got, &want));
        assert_eq!(report.iterations(), 10);
    }

    #[test]
    fn delta_with_tiny_threshold_matches_converged_reference() {
        let g = small_graph();
        let cfg = PageRankConfig { threshold: 1e-9, max_iterations: 300 };
        let plan = plan_local(&g, cfg, Strategy::Delta);
        let (results, _) = LocalRuntime::new().run(plan).unwrap();
        let got = ranks_from_results(&results, g.n_vertices);
        let (want, _) = reference::pagerank_converged(&g, 1e-10, 500);
        assert!(max_abs_diff(&got, &want) < 1e-6, "diff {}", max_abs_diff(&got, &want));
    }

    #[test]
    fn delta_with_paper_threshold_is_close_and_faster() {
        let g = small_graph();
        let tight = plan_local(
            &g,
            PageRankConfig { threshold: 1e-9, max_iterations: 300 },
            Strategy::Delta,
        );
        let loose = plan_local(
            &g,
            PageRankConfig { threshold: 0.01, max_iterations: 300 },
            Strategy::Delta,
        );
        let rt = LocalRuntime::new();
        let (exact_res, exact_rep) = rt.run(tight).unwrap();
        let (approx_res, approx_rep) = rt.run(loose).unwrap();
        let exact = ranks_from_results(&exact_res, g.n_vertices);
        let approx = ranks_from_results(&approx_res, g.n_vertices);
        // The 1%-threshold run converges sooner, at bounded accuracy cost.
        assert!(approx_rep.iterations() < exact_rep.iterations());
        assert!(max_abs_diff(&exact, &approx) < 0.15, "diff {}", max_abs_diff(&exact, &approx));
    }

    #[test]
    fn delta_set_shrinks_as_ranks_converge() {
        let g = small_graph();
        let plan = plan_local(
            &g,
            PageRankConfig { threshold: 0.01, max_iterations: 100 },
            Strategy::Delta,
        );
        let (_, report) = LocalRuntime::new().run(plan).unwrap();
        let sizes: Vec<u64> = report.strata.iter().map(|s| s.delta_set_size).collect();
        assert!(sizes.len() > 3, "needs several strata, got {sizes:?}");
        // Early strata touch many vertices; the final stratum none.
        assert!(sizes[0] > *sizes.last().unwrap());
        assert_eq!(*sizes.last().unwrap(), 0);
        // The tail of the Δ trace is well below the initial size (Fig. 2).
        let tail_max = sizes[sizes.len() / 2..].iter().copied().max().unwrap();
        assert!(tail_max < sizes[0], "tail {tail_max} vs head {}", sizes[0]);
    }

    #[test]
    fn cluster_delta_matches_local() {
        let g = small_graph();
        let cfg = PageRankConfig { threshold: 1e-9, max_iterations: 300 };
        let (local_res, _) = LocalRuntime::new().run(plan_local(&g, cfg, Strategy::Delta)).unwrap();
        let rt = ClusterRuntime::new(ClusterConfig::new(4), graph_catalog(&g));
        let (cluster_res, report) = rt.run(plan_builder(cfg, Strategy::Delta)).unwrap();
        let l = ranks_from_results(&local_res, g.n_vertices);
        let c = ranks_from_results(&cluster_res, g.n_vertices);
        assert!(max_abs_diff(&l, &c) < 1e-9);
        assert!(report.query.totals.bytes_sent > 0, "rehash must ship data");
    }

    #[test]
    fn delta_ships_fewer_bytes_than_no_delta() {
        let g = small_graph();
        let iters = 20;
        let cat = || graph_catalog(&g);
        let delta_rep = ClusterRuntime::new(ClusterConfig::new(4), cat())
            .run(plan_builder(
                PageRankConfig { threshold: 0.01, max_iterations: iters },
                Strategy::Delta,
            ))
            .unwrap()
            .1;
        let nodelta_rep = ClusterRuntime::new(ClusterConfig::new(4), cat())
            .run(plan_builder(
                PageRankConfig { threshold: 0.0, max_iterations: iters },
                Strategy::NoDelta,
            ))
            .unwrap()
            .1;
        assert!(
            delta_rep.query.totals.bytes_sent < nodelta_rep.query.totals.bytes_sent,
            "delta {} !< no-delta {}",
            delta_rep.query.totals.bytes_sent,
            nodelta_rep.query.totals.bytes_sent
        );
    }

    #[test]
    fn rank_accum_handles_deletion() {
        let a = RankAccum;
        let mut st = a.init();
        a.agg_state(&mut st, &Delta::insert(Tuple::new(vec![Value::Int(1), Value::Double(0.4)])))
            .unwrap();
        a.agg_state(&mut st, &Delta::delete(Tuple::new(vec![Value::Int(1), Value::Double(0.1)])))
            .unwrap();
        let out = a.agg_result(&st).unwrap();
        let got = out[0].tuple.get(0).as_double().unwrap();
        assert!((got - (0.15 + 0.85 * 0.3)).abs() < 1e-12);
    }

    #[test]
    fn pr_agg_suppresses_small_diffs() {
        let h = PrAgg::delta(0.01);
        let mut left = TupleSet::new();
        let mut right = TupleSet::new();
        // One edge 7 -> 9.
        h.update(
            &mut left,
            &mut right,
            &Delta::insert(Tuple::new(vec![Value::Int(7), Value::Int(9)])),
            false,
        )
        .unwrap();
        // First rank arrival: guard + share.
        let out = h
            .update(
                &mut left,
                &mut right,
                &Delta::insert(Tuple::new(vec![Value::Int(7), Value::Double(1.0)])),
                true,
            )
            .unwrap();
        assert_eq!(out.len(), 2);
        // Tiny change: absorbed, nothing propagates.
        let out = h
            .update(
                &mut left,
                &mut right,
                &Delta::insert(Tuple::new(vec![Value::Int(7), Value::Double(1.005)])),
                true,
            )
            .unwrap();
        assert!(out.is_empty());
        // Large change propagates the diff (vs the absorbed 1.005).
        let out = h
            .update(
                &mut left,
                &mut right,
                &Delta::insert(Tuple::new(vec![Value::Int(7), Value::Double(1.5)])),
                true,
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        let share = out[0].tuple.get(1).as_double().unwrap();
        assert!((share - 0.495).abs() < 1e-12);
    }
}
