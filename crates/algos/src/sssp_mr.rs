//! Shortest path as MapReduce jobs with relation-level Δ (frontier)
//! updates, plus the wrap variant.
//!
//! The paper notes that for shortest path "it is possible to use a
//! well-defined 'frontier set' corresponding to a relation-level Δᵢ. We
//! have therefore ensured that both Hadoop and HaLoop use relation-level
//! Δᵢ updates for this query" (§6.3). Here each iteration's job maps the
//! immutable linkage table together with the current *frontier* only; the
//! reducer joins them and offers `dist+1` to the frontier's out-neighbors.
//! The driver (whose work is free under the LB modes, like the paper's
//! idealized convergence tests) keeps the visited set and derives the next
//! frontier.

use crate::common::edge_records;
use rex_core::exec::PlanGraph;
use rex_core::operators::{
    AggSpec, ApplyFunctionOp, FixpointOp, GroupByOp, ScanOp, SinkOp, Termination,
};
use rex_core::tuple::Tuple;
use rex_core::value::Value;
use rex_data::graph::Graph;
use rex_hadoop::api::{FnMapper, FnReducer, IdentityMapper, Mapper, Record, Reducer};
use rex_hadoop::driver::{IterationReport, RunReport};
use rex_hadoop::job::{HadoopCluster, JobInput, MapReduceJob};
use rex_hadoop::wrap::{MapWrap, ReduceWrap};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// The expand reducer: joins frontier distances with adjacency lists and
/// offers `dist + 1` to each neighbor (minimum offer per vertex).
pub fn expand_reducer() -> Arc<dyn Reducer> {
    FnReducer::new("SPExpandReduce", |_key, values, out| {
        let mut dist: Option<f64> = None;
        let mut neighbors: Vec<&Value> = Vec::new();
        for v in values {
            match v {
                Value::Double(d) => {
                    dist = Some(dist.map_or(*d, |cur: f64| cur.min(*d)));
                }
                Value::Int(_) => neighbors.push(v),
                _ => {}
            }
        }
        if let Some(d) = dist {
            for nbr in neighbors {
                out((*nbr).clone(), Value::Double(d + 1.0));
            }
        }
    })
}

/// Min combiner for candidate offers. Linkage records (`Int` neighbors,
/// which share the shuffle with the `Double` offers) pass through
/// untouched.
pub fn min_combiner() -> Arc<dyn Reducer> {
    FnReducer::new("MinCombine", |key, values, out| {
        let mut m: Option<f64> = None;
        for v in values {
            match v {
                Value::Double(d) => m = Some(m.map_or(*d, |cur: f64| cur.min(*d))),
                Value::Int(_) => out(key.clone(), v.clone()),
                _ => {}
            }
        }
        if let Some(m) = m {
            out(key.clone(), Value::Double(m));
        }
    })
}

/// Run frontier-based BFS on the simulator until the frontier empties or
/// `max_iterations` is hit. Returns per-vertex distances (`f64::INFINITY`
/// when unreachable) and the per-iteration report.
pub fn run_mr(
    graph: &Graph,
    source: u32,
    max_iterations: usize,
    cluster: &HadoopCluster,
) -> (Vec<f64>, RunReport) {
    let t0 = Instant::now();
    let adjacency = edge_records(graph);
    let job = MapReduceJob::new("sp-expand", Arc::new(IdentityMapper), expand_reducer())
        .with_combiner(min_combiner());
    let mut dist: HashMap<i64, f64> = HashMap::new();
    dist.insert(source as i64, 0.0);
    let mut frontier: Vec<Record> = vec![(Value::Int(source as i64), Value::Double(0.0))];
    let mut report = RunReport::default();
    for iteration in 0..max_iterations {
        if frontier.is_empty() {
            break;
        }
        let inputs = [JobInput::immutable(adjacency.clone()), JobInput::mutable(frontier)];
        let (candidates, metrics) = cluster.run_job(&job, &inputs, iteration);
        // Driver-side convergence logic (free under the LB modes): keep
        // only first-time visits as the next frontier.
        let mut next: Vec<Record> = Vec::new();
        for (k, v) in candidates {
            let (Some(node), Some(d)) = (k.as_int(), v.as_double()) else { continue };
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(node) {
                e.insert(d);
                next.push((Value::Int(node), Value::Double(d)));
            }
        }
        report.iterations.push(IterationReport {
            iteration,
            metrics,
            mutable_records: next.len() as u64,
        });
        frontier = next;
    }
    report.wall_seconds = t0.elapsed().as_secs_f64();
    let mut out = vec![f64::INFINITY; graph.n_vertices];
    for (node, d) in dist {
        if (0..graph.n_vertices as i64).contains(&node) {
            out[node as usize] = d;
        }
    }
    (out, report)
}

// ---------------------------------------------------------------------------
// Wrap variant: combined-record BFS classes inside REX.
// ---------------------------------------------------------------------------

/// Combined-record scatter mapper: `(node, [dist, nbr...])` → offers plus
/// structure pass-through. Unreached vertices carry `f64::INFINITY`.
pub fn combined_scatter_mapper() -> Arc<dyn Mapper> {
    FnMapper::new("SPCombinedMap", |key, value, out| {
        let Some(list) = value.as_list() else { return };
        let dist = list.first().and_then(Value::as_double).unwrap_or(f64::INFINITY);
        let nbrs = &list[1..];
        out(key.clone(), Value::list(nbrs.to_vec()));
        out(key.clone(), Value::Double(dist));
        if dist.is_finite() {
            for n in nbrs {
                out(n.clone(), Value::Double(dist + 1.0));
            }
        }
    })
}

/// Combined-record gather reducer: keeps the minimum distance and rebuilds
/// `(node, [dist, nbr...])`.
pub fn combined_gather_reducer() -> Arc<dyn Reducer> {
    FnReducer::new("SPCombinedReduce", |key, values, out| {
        let mut best = f64::INFINITY;
        let mut adj: Vec<Value> = Vec::new();
        for v in values {
            match v {
                Value::Double(d) => best = best.min(*d),
                Value::List(l) => adj = l.to_vec(),
                _ => {}
            }
        }
        let mut rec = vec![Value::Double(best)];
        rec.extend(adj);
        out(key.clone(), Value::list(rec));
    })
}

/// Combined records `(node, [dist, nbr...])`, distance 0 at the source.
pub fn combined_records(graph: &Graph, source: u32) -> Vec<Record> {
    let adj = graph.adjacency();
    (0..graph.n_vertices)
        .map(|v| {
            let d = if v as u32 == source { 0.0 } else { f64::INFINITY };
            let mut rec = vec![Value::Double(d)];
            rec.extend(adj[v].iter().map(|&t| Value::Int(t as i64)));
            (Value::Int(v as i64), Value::list(rec))
        })
        .collect()
}

/// The wrap plan: combined-record BFS classes inside a REX fixpoint,
/// running a fixed number of strata.
pub fn wrap_plan_local(graph: &Graph, source: u32, iterations: u64) -> PlanGraph {
    let mut g = PlanGraph::new();
    let base: Vec<Tuple> = combined_records(graph, source)
        .iter()
        .map(|(k, v)| Tuple::new(vec![k.clone(), v.clone()]))
        .collect();
    let scan = g.add(Box::new(ScanOp::new("sp_wrap_base", base)));
    let fp =
        g.add(Box::new(FixpointOp::new(vec![0], Termination::ExactStrata(iterations)).no_delta()));
    let map = g.add(Box::new(ApplyFunctionOp::new(Arc::new(MapWrap::new(
        combined_scatter_mapper(),
        false,
    )))));
    let rehash = g.add_rehash(vec![0]);
    let gb = g.add(Box::new(
        GroupByOp::new(
            vec![0],
            vec![AggSpec::new(
                Arc::new(ReduceWrap::new(combined_gather_reducer(), false)),
                vec![0, 1],
            )],
        )
        .without_retention(),
    ));
    let strip = g.add(Box::new(rex_hadoop::wrap::reduce_output_projection()));
    let sink = g.add(Box::new(SinkOp::new()));

    g.connect(scan, 0, fp, 0);
    g.connect(fp, 0, map, 0);
    g.pipe(map, rehash);
    g.connect(rehash, 0, gb, 0);
    g.connect(gb, 0, strip, 0);
    g.connect(strip, 0, fp, 1);
    g.connect(fp, 1, sink, 0);
    g
}

/// Cluster builder for the wrap plan: combined records derived per-worker
/// from the local `graph` partition; the source's owner seeds distance 0.
pub fn wrap_plan_builder(source: u32, iterations: u64) -> rex_cluster::runtime::PlanBuilder {
    use rex_core::operators::ScanOp;
    Arc::new(move |worker, snap, catalog| {
        let table = catalog.get("graph")?;
        let edges = table.partition_for(snap, worker);
        let mut adj: std::collections::BTreeMap<i64, Vec<Value>> =
            std::collections::BTreeMap::new();
        for e in &edges {
            if let (Some(s), Some(d)) = (e.get(0).as_int(), e.get(1).as_int()) {
                adj.entry(s).or_default().push(Value::Int(d));
            }
        }
        // Ensure the source exists even if it has no local out-edges but is
        // owned here.
        let src_key = vec![Value::Int(source as i64)];
        if snap.owner_of_key(&src_key) == worker {
            adj.entry(source as i64).or_default();
        }
        let base: Vec<Tuple> = adj
            .into_iter()
            .map(|(v, nbrs)| {
                let d = if v == source as i64 { 0.0 } else { f64::INFINITY };
                let mut rec = vec![Value::Double(d)];
                rec.extend(nbrs);
                Tuple::new(vec![Value::Int(v), Value::list(rec)])
            })
            .collect();
        let mut g = PlanGraph::new();
        let scan = g.add(Box::new(ScanOp::new("sp_wrap_base", base)));
        let fp = g.add(Box::new(
            FixpointOp::new(vec![0], Termination::ExactStrata(iterations)).no_delta(),
        ));
        let map = g.add(Box::new(ApplyFunctionOp::new(Arc::new(MapWrap::new(
            combined_scatter_mapper(),
            false,
        )))));
        let rehash = g.add_rehash(vec![0]);
        let gb = g.add(Box::new(
            GroupByOp::new(
                vec![0],
                vec![AggSpec::new(
                    Arc::new(ReduceWrap::new(combined_gather_reducer(), false)),
                    vec![0, 1],
                )],
            )
            .without_retention(),
        ));
        let strip = g.add(Box::new(rex_hadoop::wrap::reduce_output_projection()));
        let sink = g.add(Box::new(SinkOp::new()));
        g.connect(scan, 0, fp, 0);
        g.connect(fp, 0, map, 0);
        g.pipe(map, rehash);
        g.connect(rehash, 0, gb, 0);
        g.connect(gb, 0, strip, 0);
        g.connect(strip, 0, fp, 1);
        g.connect(fp, 1, sink, 0);
        Ok(g)
    })
}

/// Extract distances from the wrap plan's `(node, [dist, nbr...])`
/// results.
pub fn wrap_dists(results: &[Tuple], n_vertices: usize) -> Vec<f64> {
    let mut out = vec![f64::INFINITY; n_vertices];
    for t in results {
        if let (Some(v), Some(list)) = (t.get(0).as_int(), t.get(1).as_list()) {
            if (0..n_vertices as i64).contains(&v) {
                if let Some(d) = list.first().and_then(Value::as_double) {
                    out[v as usize] = d;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use rex_core::exec::LocalRuntime;
    use rex_data::graph::{generate_graph, GraphSpec};
    use rex_hadoop::cost::EmulationMode;

    fn small_graph() -> Graph {
        generate_graph(GraphSpec {
            n_vertices: 70,
            edges_per_vertex: 2,
            seed: 31,
            random_edge_fraction: 0.05,
            locality_window: 0,
        })
    }

    fn reference_dists(g: &Graph, s: u32) -> Vec<f64> {
        reference::shortest_paths(g, s)
            .into_iter()
            .map(|d| if d == u32::MAX { f64::INFINITY } else { d as f64 })
            .collect()
    }

    #[test]
    fn frontier_bfs_matches_reference() {
        let g = small_graph();
        let cluster = HadoopCluster::new(4).with_mode(EmulationMode::HadoopLowerBound);
        let (dist, report) = run_mr(&g, 0, 100, &cluster);
        assert_eq!(dist, reference_dists(&g, 0));
        // Frontier exhausts before the cap.
        assert!(report.iterations.len() < 100);
    }

    #[test]
    fn frontier_sizes_trace_bfs_levels() {
        let g = small_graph();
        let cluster = HadoopCluster::new(1).with_mode(EmulationMode::HadoopLowerBound);
        let (_, report) = run_mr(&g, 0, 100, &cluster);
        let frontier_sum: u64 = report.iterations.iter().map(|i| i.mutable_records).sum();
        let reachable =
            reference::shortest_paths(&g, 0).iter().filter(|&&d| d != u32::MAX).count() as u64;
        assert_eq!(frontier_sum, reachable - 1, "every vertex visited once");
    }

    #[test]
    fn haloop_cheaper_same_result() {
        let g = small_graph();
        let hadoop = HadoopCluster::new(4).with_mode(EmulationMode::HadoopLowerBound);
        let haloop = HadoopCluster::new(4).with_mode(EmulationMode::HaLoopLowerBound);
        let (d1, r1) = run_mr(&g, 0, 100, &hadoop);
        let (d2, r2) = run_mr(&g, 0, 100, &haloop);
        assert_eq!(d1, d2);
        assert!(r2.total_sim_time() < r1.total_sim_time());
    }

    #[test]
    fn wrap_plan_reaches_reference_distances() {
        let g = small_graph();
        // Enough strata to cover the BFS depth of the reachable set.
        let depth = reference::shortest_paths(&g, 0)
            .iter()
            .filter(|&&d| d != u32::MAX)
            .max()
            .copied()
            .unwrap() as u64;
        let (results, _) = LocalRuntime::new().run(wrap_plan_local(&g, 0, depth + 1)).unwrap();
        assert_eq!(wrap_dists(&results, g.n_vertices), reference_dists(&g, 0));
    }

    #[test]
    fn expand_reducer_takes_min_frontier_distance() {
        let r = expand_reducer();
        let mut got = Vec::new();
        r.reduce(
            &Value::Int(1),
            &[Value::Double(7.0), Value::Int(2), Value::Double(3.0)],
            &mut |k, v| got.push((k, v)),
        );
        assert_eq!(got, vec![(Value::Int(2), Value::Double(4.0))]);
    }
}
