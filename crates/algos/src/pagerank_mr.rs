//! PageRank as MapReduce jobs: the `Hadoop LB` / `HaLoop LB` baselines and
//! the "wrap" variant that runs the Hadoop classes inside REX (§4.4).
//!
//! Per iteration the baseline executes the HaLoop-paper two-job pipeline:
//!
//! 1. **join/scatter** — identity map over the immutable linkage table and
//!    the mutable rank table; the reducer pairs each vertex's adjacency
//!    list with its rank and scatters `rank/outdeg` contributions to the
//!    out-neighbors (plus a `0.0` self-contribution so rank-less vertices
//!    survive);
//! 2. **gather** — identity map, sum combiner, and a reducer computing
//!    `0.15 + 0.85 · Σ contributions`.
//!
//! Under [`EmulationMode::HaLoopLowerBound`](rex_hadoop::cost::EmulationMode) the linkage table's map and
//! shuffle are free from iteration 1 on (the reducer input cache); under
//! `HadoopLowerBound` everything is charged — exactly the paper's
//! emulation methodology.
//!
//! The **wrap** variant uses the classic single-job formulation whose
//! records carry `(rank, adjacency)` together, because that is the shape
//! of "compiled Hadoop code" a user would hand to REX unchanged.

use crate::common::{edge_records, initial_rank_records, per_vertex_doubles_from_records};
use crate::reference::{BASE_RANK, DAMPING};
use rex_core::exec::PlanGraph;
use rex_core::operators::{
    AggSpec, ApplyFunctionOp, FixpointOp, GroupByOp, ScanOp, SinkOp, Termination,
};
use rex_core::tuple::Tuple;
use rex_core::value::Value;
use rex_data::graph::Graph;
use rex_hadoop::api::{FnMapper, FnReducer, IdentityMapper, Mapper, Record, Reducer};
use rex_hadoop::driver::{IterationReport, RunReport};
use rex_hadoop::job::{HadoopCluster, JobInput, MapReduceJob};
use rex_hadoop::wrap::{MapWrap, ReduceWrap};
use std::sync::Arc;
use std::time::Instant;

/// The join/scatter reducer: pairs a vertex's out-edges (one `Int`
/// neighbor value per linkage record) with its rank (`Double`) and emits
/// one contribution per out-neighbor.
pub fn scatter_reducer() -> Arc<dyn Reducer> {
    FnReducer::new("PRScatterReduce", |key, values, out| {
        let mut rank = 0.0f64;
        let mut neighbors: Vec<&Value> = Vec::new();
        for v in values {
            match v {
                Value::Double(r) => rank += r,
                Value::Int(_) => neighbors.push(v),
                _ => {}
            }
        }
        // Keep every vertex alive in the gather stage.
        out(key.clone(), Value::Double(0.0));
        if !neighbors.is_empty() {
            let share = rank / neighbors.len() as f64;
            for nbr in neighbors {
                out((*nbr).clone(), Value::Double(share));
            }
        }
    })
}

/// The gather reducer: `0.15 + 0.85 · Σ contributions`.
pub fn gather_reducer() -> Arc<dyn Reducer> {
    FnReducer::new("PRGatherReduce", |key, values, out| {
        let sum: f64 = values.iter().filter_map(Value::as_double).sum();
        out(key.clone(), Value::Double(BASE_RANK + DAMPING * sum));
    })
}

/// Sum combiner shared by the gather stage.
pub fn sum_combiner() -> Arc<dyn Reducer> {
    FnReducer::new("SumCombine", |key, values, out| {
        out(key.clone(), Value::Double(values.iter().filter_map(Value::as_double).sum()));
    })
}

/// Run `iterations` rounds of two-job PageRank on the simulator. Returns
/// the final ranks and the per-iteration report (both jobs merged).
pub fn run_mr(graph: &Graph, iterations: usize, cluster: &HadoopCluster) -> (Vec<f64>, RunReport) {
    let t0 = Instant::now();
    let adjacency = edge_records(graph);
    let mut ranks = initial_rank_records(graph);
    let scatter = MapReduceJob::new("pr-scatter", Arc::new(IdentityMapper), scatter_reducer());
    let gather = MapReduceJob::new("pr-gather", Arc::new(IdentityMapper), gather_reducer())
        .with_combiner(sum_combiner());
    let mut report = RunReport::default();
    for iteration in 0..iterations {
        let inputs = [JobInput::immutable(adjacency.clone()), JobInput::mutable(ranks.clone())];
        let (contribs, mut metrics) = cluster.run_job(&scatter, &inputs, iteration);
        let (next, m2) = cluster.run_job(&gather, &[JobInput::mutable(contribs)], iteration);
        metrics.merge(&m2);
        report.iterations.push(IterationReport {
            iteration,
            metrics,
            mutable_records: next.len() as u64,
        });
        ranks = next;
    }
    report.wall_seconds = t0.elapsed().as_secs_f64();
    (per_vertex_doubles_from_records(&ranks, graph.n_vertices, BASE_RANK), report)
}

// ---------------------------------------------------------------------------
// The "wrap" variant: classic combined-record Hadoop PageRank classes
// executed inside a recursive REX plan.
// ---------------------------------------------------------------------------

/// The classic combined-record scatter mapper: input `(node,
/// [rank, nbr...])`, output one contribution per neighbor plus the
/// adjacency pass-through.
pub fn combined_scatter_mapper() -> Arc<dyn Mapper> {
    FnMapper::new("PRCombinedMap", |key, value, out| {
        let Some(list) = value.as_list() else { return };
        let rank = list.first().and_then(Value::as_double).unwrap_or(0.0);
        let nbrs = &list[1..];
        // Pass the structure through the shuffle (Hadoop's trick for
        // keeping rank and adjacency in the same record).
        out(key.clone(), Value::list(nbrs.to_vec()));
        if !nbrs.is_empty() {
            let share = rank / nbrs.len() as f64;
            for n in nbrs {
                out(n.clone(), Value::Double(share));
            }
        }
    })
}

/// The combined-record gather reducer: rebuilds `(node, [newRank,
/// nbr...])`.
pub fn combined_gather_reducer() -> Arc<dyn Reducer> {
    FnReducer::new("PRCombinedReduce", |key, values, out| {
        let mut sum = 0.0f64;
        let mut adj: Vec<Value> = Vec::new();
        for v in values {
            match v {
                Value::Double(d) => sum += d,
                Value::List(l) => adj = l.to_vec(),
                _ => {}
            }
        }
        let mut rec = vec![Value::Double(BASE_RANK + DAMPING * sum)];
        rec.extend(adj);
        out(key.clone(), Value::list(rec));
    })
}

/// Combined records `(node, [rank, nbr...])` for every vertex.
pub fn combined_records(graph: &Graph) -> Vec<Record> {
    let adj = graph.adjacency();
    (0..graph.n_vertices)
        .map(|v| {
            let mut rec = vec![Value::Double(1.0)];
            rec.extend(adj[v].iter().map(|&t| Value::Int(t as i64)));
            (Value::Int(v as i64), Value::list(rec))
        })
        .collect()
}

/// Single-job combined-record PageRank on the MapReduce simulator (used to
/// cross-check the wrap plan and the two-job pipeline agree).
pub fn run_mr_combined(
    graph: &Graph,
    iterations: usize,
    cluster: &HadoopCluster,
) -> (Vec<f64>, RunReport) {
    let t0 = Instant::now();
    let job =
        MapReduceJob::new("pr-combined", combined_scatter_mapper(), combined_gather_reducer());
    let mut records = combined_records(graph);
    let mut report = RunReport::default();
    for iteration in 0..iterations {
        let (next, metrics) = cluster.run_job(&job, &[JobInput::mutable(records)], iteration);
        report.iterations.push(IterationReport {
            iteration,
            metrics,
            mutable_records: next.len() as u64,
        });
        records = next;
    }
    report.wall_seconds = t0.elapsed().as_secs_f64();
    let ranks: Vec<f64> = {
        let mut out = vec![BASE_RANK; graph.n_vertices];
        for (k, v) in &records {
            if let (Some(kv), Some(list)) = (k.as_int(), v.as_list()) {
                if let Some(r) = list.first().and_then(Value::as_double) {
                    out[kv as usize] = r;
                }
            }
        }
        out
    };
    (ranks, report)
}

/// The wrap plan: the combined-record Hadoop classes running inside a REX
/// fixpoint, with `MapWrap`/`ReduceWrap` adapters. The mutable set carries
/// `(node, [rank, nbr...])` tuples exactly as the Hadoop records do, and
/// the whole relation is re-derived each stratum (wrap "iterates over all
/// of the available mutable data", §6).
pub fn wrap_plan_local(graph: &Graph, iterations: u64) -> PlanGraph {
    let mut g = PlanGraph::new();
    let base: Vec<Tuple> = combined_records(graph)
        .iter()
        .map(|(k, v)| Tuple::new(vec![k.clone(), v.clone()]))
        .collect();
    let scan = g.add(Box::new(ScanOp::new("pr_wrap_base", base)));
    let fp =
        g.add(Box::new(FixpointOp::new(vec![0], Termination::ExactStrata(iterations)).no_delta()));
    let map = g.add(Box::new(ApplyFunctionOp::new(Arc::new(MapWrap::new(
        combined_scatter_mapper(),
        false, // inside the loop: no text formatting (§6.3)
    )))));
    let rehash = g.add_rehash(vec![0]);
    let gb = g.add(Box::new(
        GroupByOp::new(
            vec![0],
            vec![AggSpec::new(
                Arc::new(ReduceWrap::new(combined_gather_reducer(), false)),
                vec![0, 1],
            )],
        )
        .without_retention(),
    ));
    let strip = g.add(Box::new(rex_hadoop::wrap::reduce_output_projection()));
    let sink = g.add(Box::new(SinkOp::new()));

    g.connect(scan, 0, fp, 0);
    g.connect(fp, 0, map, 0);
    g.pipe(map, rehash);
    g.connect(rehash, 0, gb, 0);
    g.connect(gb, 0, strip, 0);
    g.connect(strip, 0, fp, 1);
    g.connect(fp, 1, sink, 0);
    g
}

/// Cluster builder for the wrap plan: each worker derives its partition's
/// combined records from its `graph` partition (edges are partitioned by
/// `srcId`, so a vertex's whole adjacency is local).
pub fn wrap_plan_builder(iterations: u64) -> rex_cluster::runtime::PlanBuilder {
    use rex_core::operators::ScanOp;
    Arc::new(move |worker, snap, catalog| {
        let table = catalog.get("graph")?;
        let edges = table.partition_for(snap, worker);
        // Rebuild the local slice of combined records: adjacency from the
        // local edges; every local source vertex starts at rank 1.0.
        let mut adj: std::collections::BTreeMap<i64, Vec<Value>> =
            std::collections::BTreeMap::new();
        for e in &edges {
            if let (Some(s), Some(d)) = (e.get(0).as_int(), e.get(1).as_int()) {
                adj.entry(s).or_default().push(Value::Int(d));
            }
        }
        let base: Vec<Tuple> = adj
            .into_iter()
            .map(|(v, nbrs)| {
                let mut rec = vec![Value::Double(1.0)];
                rec.extend(nbrs);
                Tuple::new(vec![Value::Int(v), Value::list(rec)])
            })
            .collect();
        let mut g = PlanGraph::new();
        let scan = g.add(Box::new(ScanOp::new("pr_wrap_base", base)));
        let fp = g.add(Box::new(
            FixpointOp::new(vec![0], Termination::ExactStrata(iterations)).no_delta(),
        ));
        let map = g.add(Box::new(ApplyFunctionOp::new(Arc::new(MapWrap::new(
            combined_scatter_mapper(),
            false,
        )))));
        let rehash = g.add_rehash(vec![0]);
        let gb = g.add(Box::new(
            GroupByOp::new(
                vec![0],
                vec![AggSpec::new(
                    Arc::new(ReduceWrap::new(combined_gather_reducer(), false)),
                    vec![0, 1],
                )],
            )
            .without_retention(),
        ));
        let strip = g.add(Box::new(rex_hadoop::wrap::reduce_output_projection()));
        let sink = g.add(Box::new(SinkOp::new()));
        g.connect(scan, 0, fp, 0);
        g.connect(fp, 0, map, 0);
        g.pipe(map, rehash);
        g.connect(rehash, 0, gb, 0);
        g.connect(gb, 0, strip, 0);
        g.connect(strip, 0, fp, 1);
        g.connect(fp, 1, sink, 0);
        Ok(g)
    })
}

/// Extract ranks from the wrap plan's `(node, [rank, nbr...])` results.
pub fn wrap_ranks(results: &[Tuple], n_vertices: usize) -> Vec<f64> {
    let mut out = vec![BASE_RANK; n_vertices];
    for t in results {
        if let (Some(v), Some(list)) = (t.get(0).as_int(), t.get(1).as_list()) {
            if (0..n_vertices as i64).contains(&v) {
                if let Some(r) = list.first().and_then(Value::as_double) {
                    out[v as usize] = r;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::max_abs_diff;
    use crate::reference;
    use rex_core::exec::LocalRuntime;
    use rex_data::graph::{generate_graph, GraphSpec};
    use rex_hadoop::cost::EmulationMode;

    fn small_graph() -> Graph {
        generate_graph(GraphSpec {
            n_vertices: 50,
            edges_per_vertex: 3,
            seed: 8,
            random_edge_fraction: 0.1,
            locality_window: 0,
        })
    }

    #[test]
    fn two_job_pipeline_matches_reference() {
        let g = small_graph();
        let cluster = HadoopCluster::new(4).with_mode(EmulationMode::HadoopLowerBound);
        let (ranks, report) = run_mr(&g, 8, &cluster);
        let want = reference::pagerank(&g, 8);
        assert!(max_abs_diff(&ranks, &want) < 1e-9, "diff {}", max_abs_diff(&ranks, &want));
        assert_eq!(report.iterations.len(), 8);
    }

    #[test]
    fn combined_single_job_matches_two_job() {
        let g = small_graph();
        let cluster = HadoopCluster::new(2).with_mode(EmulationMode::HadoopLowerBound);
        let (a, _) = run_mr(&g, 6, &cluster);
        let (b, _) = run_mr_combined(&g, 6, &cluster);
        assert!(max_abs_diff(&a, &b) < 1e-9);
    }

    #[test]
    fn haloop_mode_is_cheaper_and_identical() {
        let g = small_graph();
        let hadoop = HadoopCluster::new(4).with_mode(EmulationMode::HadoopLowerBound);
        let haloop = HadoopCluster::new(4).with_mode(EmulationMode::HaLoopLowerBound);
        let (r1, rep1) = run_mr(&g, 6, &hadoop);
        let (r2, rep2) = run_mr(&g, 6, &haloop);
        assert!(max_abs_diff(&r1, &r2) < 1e-12, "caching must not change results");
        assert!(rep2.total_sim_time() < rep1.total_sim_time());
        assert!(rep2.total_shuffle_bytes() < rep1.total_shuffle_bytes());
    }

    #[test]
    fn wrap_plan_matches_mr_ranks() {
        let g = small_graph();
        let iters = 6;
        let cluster = HadoopCluster::new(1).with_mode(EmulationMode::HadoopLowerBound);
        let (mr_ranks, _) = run_mr(&g, iters, &cluster);
        let (results, report) = LocalRuntime::new().run(wrap_plan_local(&g, iters as u64)).unwrap();
        let wrapped = wrap_ranks(&results, g.n_vertices);
        assert!(
            max_abs_diff(&mr_ranks, &wrapped) < 1e-9,
            "diff {}",
            max_abs_diff(&mr_ranks, &wrapped)
        );
        assert_eq!(report.iterations(), iters);
    }

    #[test]
    fn scatter_reducer_handles_missing_adjacency() {
        // A vertex with rank but no out-edges still emits its keep-alive.
        let r = scatter_reducer();
        let mut got = Vec::new();
        r.reduce(&Value::Int(3), &[Value::Double(0.5)], &mut |k, v| got.push((k, v)));
        assert_eq!(got, vec![(Value::Int(3), Value::Double(0.0))]);
    }

    #[test]
    fn scatter_reducer_splits_rank_across_edges() {
        let r = scatter_reducer();
        let mut got = Vec::new();
        r.reduce(
            &Value::Int(1),
            &[Value::Int(2), Value::Double(0.6), Value::Int(3)],
            &mut |k, v| got.push((k, v)),
        );
        assert_eq!(got.len(), 3); // keep-alive + two contributions
        assert_eq!(got[1], (Value::Int(2), Value::Double(0.3)));
        assert_eq!(got[2], (Value::Int(3), Value::Double(0.3)));
    }
}
