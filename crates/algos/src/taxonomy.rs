//! Figure 3: "Types of recursive data" — the immutable / mutable / Δᵢ-set
//! classification of the paper's algorithm suite.

use std::fmt;

/// One row of Figure 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlgorithmRow {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// The immutable set: data that never changes across iterations.
    pub immutable_set: &'static str,
    /// The mutable set: state refined each iteration.
    pub mutable_set: &'static str,
    /// The Δᵢ set: the minimal tuples that must be processed at iteration i.
    pub delta_set: &'static str,
}

impl fmt::Display for AlgorithmRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<18} | {:<13} | {:<42} | {}",
            self.algorithm, self.immutable_set, self.mutable_set, self.delta_set
        )
    }
}

/// All rows of Figure 3, in paper order.
pub fn figure3() -> Vec<AlgorithmRow> {
    vec![
        AlgorithmRow {
            algorithm: "PageRank",
            immutable_set: "graph edges",
            mutable_set: "PageRank value for all vertices",
            delta_set: "PageRank values with change ≥ 1% since iteration i-1",
        },
        AlgorithmRow {
            algorithm: "Adsorption",
            immutable_set: "graph edges",
            mutable_set: "complete adsorption vectors for all vertices",
            delta_set: "adsorption vector positions with change ≥ 1% since iteration i-1",
        },
        AlgorithmRow {
            algorithm: "Shortest path",
            immutable_set: "graph edges",
            mutable_set: "minimum distance for reachable vertices",
            delta_set: "vertices with minimum distance from source at iteration i lower than \
                        their distance at iteration i-1",
        },
        AlgorithmRow {
            algorithm: "K-means clustering",
            immutable_set: "coordinates",
            mutable_set: "full assignment of nodes to centroids",
            delta_set: "nodes which switched centroids at iteration i",
        },
        AlgorithmRow {
            algorithm: "CRF learning",
            immutable_set: "document set",
            mutable_set: "model parameters",
            delta_set: "parameters updated at iteration i",
        },
    ]
}

/// Render Figure 3 as a text table (the `fig03` bench binary prints this).
pub fn render_figure3() -> String {
    let mut s = String::from(
        "Algorithm          | Immutable set | Mutable set                                | Δi set\n",
    );
    for row in figure3() {
        s.push_str(&row.to_string());
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_has_all_five_algorithms() {
        let rows = figure3();
        assert_eq!(rows.len(), 5);
        let names: Vec<&str> = rows.iter().map(|r| r.algorithm).collect();
        assert_eq!(
            names,
            vec!["PageRank", "Adsorption", "Shortest path", "K-means clustering", "CRF learning"]
        );
    }

    #[test]
    fn graph_algorithms_share_immutable_edges() {
        for row in figure3() {
            if row.algorithm == "PageRank" || row.algorithm == "Adsorption" {
                assert_eq!(row.immutable_set, "graph edges");
            }
        }
    }

    #[test]
    fn render_produces_one_line_per_row_plus_header() {
        let text = render_figure3();
        assert_eq!(text.lines().count(), 6);
        assert!(text.contains("K-means"));
    }
}
