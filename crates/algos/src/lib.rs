//! # rex-algos
//!
//! The paper's algorithm suite, implemented three ways each so the
//! evaluation can compare platforms on identical computations:
//!
//! * **REX delta plans** — join-handler + accumulating-aggregate dataflows
//!   per Figure 1 / Listings 1–3, in `delta` and `no-delta` strategies;
//! * **MapReduce twins** — the same algorithms as Hadoop jobs for the
//!   `Hadoop LB` / `HaLoop LB` baselines, plus "wrap" variants that run the
//!   Hadoop classes *inside* REX (§4.4);
//! * **sequential references** ([`mod@reference`]) — the ground truth that all
//!   platforms are validated against.
//!
//! [`taxonomy`] reproduces Figure 3's immutable/mutable/Δᵢ classification.

pub mod adsorption;
pub mod common;
pub mod kmeans;
pub mod kmeans_mr;
pub mod pagerank;
pub mod pagerank_mr;
pub mod reference;
pub mod sssp;
pub mod sssp_mr;
pub mod taxonomy;

pub use pagerank::{PageRankConfig, Strategy};
