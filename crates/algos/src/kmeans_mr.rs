//! K-means clustering as MapReduce jobs.
//!
//! In the MapReduce formulation every iteration must map the *entire*
//! point set against the current centroids — "the query does not contain a
//! relation with immutable data, meaning that HaLoop and Hadoop exhibit
//! essentially the same behavior" (§6.2). Centroids are broadcast to the
//! mappers by the driver (a shared cell, analogous to Hadoop's distributed
//! cache), so the mutable job input is the full point relation each
//! iteration. This is exactly what makes REX-delta two orders of magnitude
//! faster on Figure 5: its per-iteration work is the set of *switching*
//! points, not all points.

use rex_core::value::Value;
use rex_data::points::Point;
use rex_hadoop::api::{FnMapper, FnReducer, Record};
use rex_hadoop::driver::{IterationReport, RunReport};
use rex_hadoop::job::{HadoopCluster, JobInput, MapReduceJob};
use std::sync::Arc;
use std::sync::RwLock;
use std::time::Instant;

/// Point records `(nid, [x, y])`.
pub fn point_records(points: &[Point]) -> Vec<Record> {
    points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            (Value::Int(i as i64), Value::list(vec![Value::Double(p.x), Value::Double(p.y)]))
        })
        .collect()
}

/// Run Lloyd's algorithm on the simulator until no point switches clusters
/// (the paper's criterion) or `max_iterations`. Returns the centroids and
/// the per-iteration report.
pub fn run_mr(
    points: &[Point],
    k: usize,
    max_iterations: usize,
    cluster: &HadoopCluster,
) -> (Vec<Point>, RunReport) {
    let t0 = Instant::now();
    let centroids: Arc<RwLock<Vec<Point>>> =
        Arc::new(RwLock::new(crate::reference::sample_centroids(points, k)));
    // The assignment mapper: nearest centroid by Euclidean distance, ties
    // to the lower cid (matches the sequential reference).
    let cmap = Arc::clone(&centroids);
    let mapper = FnMapper::new("KMAssignMap", move |_k, v, out| {
        let Some(list) = v.as_list() else { return };
        let (Some(x), Some(y)) = (list[0].as_double(), list[1].as_double()) else { return };
        let ctrs = cmap.read().unwrap();
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (c, ctr) in ctrs.iter().enumerate() {
            let d = ((x - ctr.x).powi(2) + (y - ctr.y).powi(2)).sqrt();
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        out(
            Value::Int(best as i64),
            Value::list(vec![Value::Double(x), Value::Double(y), Value::Int(1)]),
        );
    });
    // Combiner and reducer both sum (Σx, Σy, n) triples; the reducer's
    // output is consumed by the driver to set the next centroids.
    let sum_triples = |name: &str| {
        FnReducer::new(
            name.to_string(),
            |key: &Value, values: &[Value], out: &mut dyn FnMut(Value, Value)| {
                let (mut sx, mut sy, mut n) = (0.0f64, 0.0f64, 0i64);
                for v in values {
                    if let Some(l) = v.as_list() {
                        sx += l[0].as_double().unwrap_or(0.0);
                        sy += l[1].as_double().unwrap_or(0.0);
                        n += l[2].as_int().unwrap_or(0);
                    }
                }
                out(
                    key.clone(),
                    Value::list(vec![Value::Double(sx), Value::Double(sy), Value::Int(n)]),
                );
            },
        )
    };
    let job = MapReduceJob::new("kmeans", mapper, sum_triples("KMSumReduce"))
        .with_combiner(sum_triples("KMSumCombine"));

    let records = point_records(points);
    let mut report = RunReport::default();
    let mut prev_assignment: Option<Vec<i64>> = None;
    for iteration in 0..max_iterations {
        let (sums, metrics) =
            cluster.run_job(&job, &[JobInput::mutable(records.clone())], iteration);
        // Driver: recompute centroids from the per-cluster sums.
        {
            let mut ctrs = centroids.write().unwrap();
            for (key, v) in &sums {
                let (Some(cid), Some(l)) = (key.as_int(), v.as_list()) else { continue };
                let n = l[2].as_int().unwrap_or(0);
                if n > 0 && (0..k as i64).contains(&cid) {
                    ctrs[cid as usize] = Point {
                        x: l[0].as_double().unwrap_or(0.0) / n as f64,
                        y: l[1].as_double().unwrap_or(0.0) / n as f64,
                    };
                }
            }
        }
        // Convergence test (free under LB modes): assignments stable.
        let assignment: Vec<i64> = {
            let ctrs = centroids.read().unwrap();
            points
                .iter()
                .map(|p| {
                    let mut best = 0i64;
                    let mut best_d = f64::INFINITY;
                    for (c, ctr) in ctrs.iter().enumerate() {
                        let d = p.dist(ctr);
                        if d < best_d {
                            best_d = d;
                            best = c as i64;
                        }
                    }
                    best
                })
                .collect()
        };
        let switches = match &prev_assignment {
            Some(prev) => prev.iter().zip(&assignment).filter(|(a, b)| a != b).count(),
            None => points.len(),
        };
        report.iterations.push(IterationReport {
            iteration,
            metrics,
            mutable_records: switches as u64,
        });
        let done = prev_assignment.as_ref() == Some(&assignment);
        prev_assignment = Some(assignment);
        if done {
            break;
        }
    }
    report.wall_seconds = t0.elapsed().as_secs_f64();
    let final_centroids = centroids.read().unwrap().clone();
    (final_centroids, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use rex_data::points::{generate_points, PointSpec};
    use rex_hadoop::cost::EmulationMode;

    fn pts() -> Vec<Point> {
        generate_points(PointSpec { n_points: 200, n_clusters: 4, stddev: 1.0, seed: 21 })
    }

    #[test]
    fn mr_kmeans_matches_reference() {
        let points = pts();
        let cluster = HadoopCluster::new(4).with_mode(EmulationMode::HadoopLowerBound);
        let (got, report) = run_mr(&points, 4, 100, &cluster);
        let init = reference::sample_centroids(&points, 4);
        let (want, _, _, _) = reference::kmeans(&points, &init, 100);
        for (g, w) in got.iter().zip(&want) {
            assert!(g.dist(w) < 1e-9, "({}, {}) vs ({}, {})", g.x, g.y, w.x, w.y);
        }
        assert!(report.iterations.len() < 100, "converged before the cap");
    }

    #[test]
    fn every_iteration_maps_all_points() {
        let points = pts();
        let cluster = HadoopCluster::new(2).with_mode(EmulationMode::HadoopLowerBound);
        let (_, report) = run_mr(&points, 4, 50, &cluster);
        for it in &report.iterations {
            assert_eq!(it.metrics.map_input_records, points.len() as u64);
        }
    }

    #[test]
    fn haloop_equals_hadoop_without_immutable_data() {
        // §6.2: no immutable relation → the modes behave identically.
        let points = pts();
        let hadoop = HadoopCluster::new(4).with_mode(EmulationMode::HadoopLowerBound);
        let haloop = HadoopCluster::new(4).with_mode(EmulationMode::HaLoopLowerBound);
        let (_, r1) = run_mr(&points, 4, 50, &hadoop);
        let (_, r2) = run_mr(&points, 4, 50, &haloop);
        assert_eq!(r1.total_sim_time(), r2.total_sim_time());
        assert_eq!(r1.total_shuffle_bytes(), r2.total_shuffle_bytes());
    }

    #[test]
    fn switch_counts_shrink_to_zero() {
        let points = pts();
        let cluster = HadoopCluster::new(1).with_mode(EmulationMode::HadoopLowerBound);
        let (_, report) = run_mr(&points, 4, 100, &cluster);
        let switches: Vec<u64> = report.iterations.iter().map(|i| i.mutable_records).collect();
        assert_eq!(switches[0], points.len() as u64);
        assert_eq!(*switches.last().unwrap(), 0);
    }
}
