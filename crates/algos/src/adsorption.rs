//! Delta-oriented adsorption (label propagation) — the Figure 3 row the
//! paper classifies but does not evaluate: immutable set = graph edges,
//! mutable set = "complete adsorption vectors for all vertices", Δᵢ set =
//! "adsorption vector positions with change ≥ 1% since iteration i-1".
//!
//! We implement the standard simplified adsorption recurrence: seed
//! vertices inject a fixed label distribution; every vertex's vector is
//! `α·inject(v) + (1-α) · avg_{u→v} L(u)`. The REX plan reuses the Figure
//! 1 topology with vector-valued tuples (`Value::List`) — the
//! collection-typed attributes §2 calls out as essential and missing from
//! SQL-99 — and per-*position* delta suppression, exactly the Δᵢ
//! definition in Figure 3.

use rex_core::delta::{Annotation, Delta};
use rex_core::error::{Result, RexError};
use rex_core::exec::PlanGraph;
use rex_core::handlers::{AggHandler, AggOutputKind, AggState, JoinHandler, TupleSet};
use rex_core::operators::{
    AggSpec, FixpointOp, GroupByOp, HashJoinOp, ScanOp, SinkOp, Termination,
};
use rex_core::tuple::Tuple;
use rex_core::value::{DataType, Value};
use rex_data::graph::Graph;
use std::sync::Arc;

/// Injection weight α (how strongly seeds hold their labels).
pub const ALPHA: f64 = 0.25;

/// Configuration for adsorption runs.
#[derive(Debug, Clone)]
pub struct AdsorptionConfig {
    /// Seed assignments: `(vertex, label)` — the seed's injected
    /// distribution is the one-hot vector of its label.
    pub seeds: Vec<(u32, usize)>,
    /// Number of labels.
    pub n_labels: usize,
    /// Per-position propagation threshold (Figure 3 uses 1%).
    pub threshold: f64,
    /// Iteration cap.
    pub max_iterations: u64,
}

/// Sequential reference: run the recurrence to convergence. Returns one
/// label-distribution vector per vertex.
pub fn reference(graph: &Graph, cfg: &AdsorptionConfig) -> Vec<Vec<f64>> {
    let n = graph.n_vertices;
    let k = cfg.n_labels;
    let mut inject = vec![vec![0.0; k]; n];
    for &(v, l) in &cfg.seeds {
        inject[v as usize][l] = 1.0;
    }
    let adj = graph.adjacency();
    let in_deg = graph.in_degrees();
    let mut labels = inject.clone();
    for _ in 0..cfg.max_iterations {
        let mut incoming = vec![vec![0.0; k]; n];
        for u in 0..n {
            for &t in &adj[u] {
                for j in 0..k {
                    incoming[t as usize][j] += labels[u][j];
                }
            }
        }
        let mut max_change = 0.0f64;
        for v in 0..n {
            let deg = in_deg[v].max(1) as f64;
            for j in 0..k {
                let new = ALPHA * inject[v][j] + (1.0 - ALPHA) * incoming[v][j] / deg;
                max_change = max_change.max((new - labels[v][j]).abs());
                labels[v][j] = new;
            }
        }
        if max_change <= 1e-12 {
            break;
        }
    }
    labels
}

fn vec_from_value(v: &Value, k: usize) -> Vec<f64> {
    v.as_list()
        .map(|l| l.iter().map(|x| x.as_double().unwrap_or(0.0)).collect())
        .unwrap_or_else(|| vec![0.0; k])
}

fn value_from_vec(v: &[f64]) -> Value {
    Value::list(v.iter().map(|&x| Value::Double(x)).collect())
}

/// The adsorption join handler: left bucket holds `(v, labelVec)` state,
/// right bucket the out-edges. A vector delta whose largest per-position
/// change exceeds the threshold sends the *diff vector* to each neighbor
/// (per-position Δ suppression, the Figure 3 Δᵢ definition).
pub struct AdsorbAgg {
    /// Per-position propagation threshold.
    pub threshold: f64,
    /// Number of labels.
    pub n_labels: usize,
}

impl JoinHandler for AdsorbAgg {
    fn name(&self) -> &str {
        "AdsorbAgg"
    }

    fn update(
        &self,
        left: &mut TupleSet,
        right: &mut TupleSet,
        d: &Delta,
        from_left: bool,
    ) -> Result<Vec<Delta>> {
        if !from_left {
            right.insert(d.tuple.clone());
            return Ok(Vec::new());
        }
        if matches!(d.ann, Annotation::Delete) {
            return Ok(Vec::new());
        }
        let v = d.tuple.try_get(0)?.clone();
        let new = vec_from_value(d.tuple.get(1), self.n_labels);
        let first_arrival = left.get_by_key(0, &v).is_none();
        let old = left
            .get_by_key(0, &v)
            .map(|t| vec_from_value(t.get(1), self.n_labels))
            .unwrap_or_else(|| vec![0.0; self.n_labels]);
        left.put_by_key(0, d.tuple.clone());
        let mut out = Vec::with_capacity(right.len() + 1);
        if first_arrival {
            // Seed the vertex's own group so its state gets rescaled to
            // α·inject even when no in-neighbor ever fires (same guard as
            // PRAgg's zero-share).
            out.push(Delta::insert(Tuple::new(vec![
                v.clone(),
                value_from_vec(&vec![0.0; self.n_labels]),
            ])));
        }
        // Per-position diffs; suppress the whole send only if *every*
        // position is below threshold.
        let diff: Vec<f64> = new.iter().zip(&old).map(|(a, b)| a - b).collect();
        if diff.iter().all(|x| x.abs() <= self.threshold) {
            return Ok(out);
        }
        for e in right.iter() {
            out.push(Delta::insert(Tuple::new(vec![e.get(1).clone(), value_from_vec(&diff)])));
        }
        Ok(out)
    }
}

/// Accumulating vector aggregate: per-destination running sum of received
/// label-diff vectors; the result is `α·inject + (1-α)·acc/in_deg`.
pub struct LabelAccum {
    /// Number of labels.
    pub n_labels: usize,
    /// The vertex's injected distribution and in-degree, keyed by vertex.
    /// (Shared immutable context distributed with the query, like UDC.)
    pub inject: Arc<Vec<Vec<f64>>>,
    /// Per-vertex in-degrees.
    pub in_deg: Arc<Vec<u32>>,
}

impl AggHandler for LabelAccum {
    fn name(&self) -> &str {
        "LabelAccum"
    }

    fn init(&self) -> AggState {
        AggState::Value(value_from_vec(&vec![0.0; self.n_labels]))
    }

    fn agg_state(&self, state: &mut AggState, d: &Delta) -> Result<Vec<Delta>> {
        let AggState::Value(acc) = state else {
            return Err(RexError::Exec("LabelAccum state must be a value".into()));
        };
        let mut cur = vec_from_value(acc, self.n_labels);
        // Input (projected): (dest, diffVec).
        let diff = vec_from_value(d.tuple.get(1), self.n_labels);
        let sign = if matches!(d.ann, Annotation::Delete) { -1.0 } else { 1.0 };
        for (c, x) in cur.iter_mut().zip(&diff) {
            *c += sign * x;
        }
        *state = AggState::Value(value_from_vec(&cur));
        Ok(Vec::new())
    }

    fn agg_result(&self, _state: &AggState) -> Result<Vec<Delta>> {
        Err(RexError::Exec("LabelAccum is table-valued and resolved via agg_result_keyed".into()))
    }

    fn output_kind(&self) -> AggOutputKind {
        AggOutputKind::TableValued
    }

    fn return_type(&self) -> DataType {
        DataType::List
    }
}

/// Group-by calls `agg_result` without the key, but adsorption's result
/// needs the vertex's injection vector and in-degree. We wrap the state so
/// the key is captured at `agg_state` time instead.
pub struct KeyedLabelAccum {
    inner: LabelAccum,
}

impl KeyedLabelAccum {
    /// Build from the graph and seed set.
    pub fn new(graph: &Graph, cfg: &AdsorptionConfig) -> KeyedLabelAccum {
        let mut inject = vec![vec![0.0; cfg.n_labels]; graph.n_vertices];
        for &(v, l) in &cfg.seeds {
            inject[v as usize][l] = 1.0;
        }
        KeyedLabelAccum {
            inner: LabelAccum {
                n_labels: cfg.n_labels,
                inject: Arc::new(inject),
                in_deg: Arc::new(graph.in_degrees()),
            },
        }
    }
}

impl AggHandler for KeyedLabelAccum {
    fn name(&self) -> &str {
        "LabelAccum"
    }

    fn init(&self) -> AggState {
        // State: (vertex id or -1, acc vector).
        AggState::Value(Value::list(vec![
            Value::Int(-1),
            value_from_vec(&vec![0.0; self.inner.n_labels]),
        ]))
    }

    fn agg_state(&self, state: &mut AggState, d: &Delta) -> Result<Vec<Delta>> {
        let AggState::Value(Value::List(list)) = state else {
            return Err(RexError::Exec("bad LabelAccum state".into()));
        };
        let vertex = d.tuple.get(0).as_int().unwrap_or(-1);
        let mut cur = vec_from_value(&list[1], self.inner.n_labels);
        let diff = vec_from_value(d.tuple.get(1), self.inner.n_labels);
        let sign = if matches!(d.ann, Annotation::Delete) { -1.0 } else { 1.0 };
        for (c, x) in cur.iter_mut().zip(&diff) {
            *c += sign * x;
        }
        *state = AggState::Value(Value::list(vec![Value::Int(vertex), value_from_vec(&cur)]));
        Ok(Vec::new())
    }

    fn agg_result(&self, state: &AggState) -> Result<Vec<Delta>> {
        let AggState::Value(Value::List(list)) = state else {
            return Err(RexError::Exec("bad LabelAccum state".into()));
        };
        let vertex = list[0].as_int().unwrap_or(-1);
        if vertex < 0 {
            return Ok(Vec::new());
        }
        let acc = vec_from_value(&list[1], self.inner.n_labels);
        let inject = &self.inner.inject[vertex as usize];
        let deg = self.inner.in_deg[vertex as usize].max(1) as f64;
        let result: Vec<f64> =
            inject.iter().zip(&acc).map(|(i, a)| ALPHA * i + (1.0 - ALPHA) * a / deg).collect();
        Ok(vec![Delta::insert(Tuple::new(vec![value_from_vec(&result)]))])
    }

    fn output_kind(&self) -> AggOutputKind {
        AggOutputKind::TableValued
    }

    fn return_type(&self) -> DataType {
        DataType::List
    }
}

/// Single-node adsorption plan: the Figure 1 topology over vector tuples.
pub fn plan_local(graph: &Graph, cfg: &AdsorptionConfig) -> PlanGraph {
    let mut g = PlanGraph::new();
    let mut inject = vec![vec![0.0; cfg.n_labels]; graph.n_vertices];
    for &(v, l) in &cfg.seeds {
        inject[v as usize][l] = 1.0;
    }
    // Base case: every vertex starts at its injection vector.
    let base: Vec<Tuple> = (0..graph.n_vertices)
        .map(|v| Tuple::new(vec![Value::Int(v as i64), value_from_vec(&inject[v])]))
        .collect();
    let scan_base = g.add(Box::new(ScanOp::new("adsorb_base", base)));
    let scan_graph = g.add(Box::new(ScanOp::new("graph", graph.edge_tuples())));
    let fp =
        g.add(Box::new(FixpointOp::new(vec![0], Termination::FixpointOrMax(cfg.max_iterations))));
    let join =
        g.add(Box::new(HashJoinOp::new(vec![0], vec![0]).with_handler(Arc::new(AdsorbAgg {
            threshold: cfg.threshold,
            n_labels: cfg.n_labels,
        }))));
    let rehash = g.add_rehash(vec![0]);
    let gb = g.add(Box::new(GroupByOp::new(
        vec![0],
        vec![AggSpec::new(Arc::new(KeyedLabelAccum::new(graph, cfg)), vec![0, 1])],
    )));
    let sink = g.add(Box::new(SinkOp::new()));
    g.connect(scan_base, 0, fp, 0);
    g.connect(scan_graph, 0, join, 1);
    g.connect(fp, 0, join, 0);
    g.pipe(join, rehash);
    g.connect(rehash, 0, gb, 0);
    g.connect(gb, 0, fp, 1);
    g.connect(fp, 1, sink, 0);
    g
}

/// Extract per-vertex label vectors from plan results.
pub fn labels_from_results(results: &[Tuple], n: usize, k: usize) -> Vec<Vec<f64>> {
    let mut out = vec![vec![0.0; k]; n];
    for t in results {
        if let Some(v) = t.get(0).as_int() {
            if (0..n as i64).contains(&v) {
                out[v as usize] = vec_from_value(t.get(1), k);
            }
        }
    }
    out
}

/// The most likely label per vertex (`None` when the vector is all-zero,
/// i.e. the vertex is unreached by any seed).
pub fn argmax_labels(labels: &[Vec<f64>]) -> Vec<Option<usize>> {
    labels
        .iter()
        .map(|v| {
            let (i, &m) =
                v.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap_or((0, &0.0));
            if m > 0.0 {
                Some(i)
            } else {
                None
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::max_abs_diff;
    use rex_core::exec::LocalRuntime;
    use rex_data::graph::{generate_graph, GraphSpec};

    fn cfg() -> AdsorptionConfig {
        AdsorptionConfig {
            seeds: vec![(0, 0), (40, 1), (55, 2)],
            n_labels: 3,
            threshold: 1e-9,
            max_iterations: 300,
        }
    }

    fn graph() -> Graph {
        generate_graph(GraphSpec {
            n_vertices: 60,
            edges_per_vertex: 3,
            seed: 91,
            random_edge_fraction: 0.1,
            locality_window: 0,
        })
    }

    #[test]
    fn reference_seeds_keep_their_labels() {
        let g = graph();
        let labels = reference(&g, &cfg());
        let arg = argmax_labels(&labels);
        assert_eq!(arg[0], Some(0));
        assert_eq!(arg[40], Some(1));
        assert_eq!(arg[55], Some(2));
    }

    #[test]
    fn rex_plan_matches_reference_with_tiny_threshold() {
        let g = graph();
        let c = cfg();
        let plan = plan_local(&g, &c);
        let (results, report) = LocalRuntime::new().run(plan).unwrap();
        let got = labels_from_results(&results, g.n_vertices, c.n_labels);
        let want = reference(&g, &c);
        for v in 0..g.n_vertices {
            let d = max_abs_diff(&got[v], &want[v]);
            assert!(d < 1e-6, "vertex {v} deviates by {d}");
        }
        assert_eq!(report.strata.last().unwrap().delta_set_size, 0);
    }

    #[test]
    fn one_percent_threshold_converges_faster_and_close() {
        let g = graph();
        let tight = cfg();
        let loose = AdsorptionConfig { threshold: 0.01, ..cfg() };
        let rt = LocalRuntime::new();
        let (res_t, rep_t) = rt.run(plan_local(&g, &tight)).unwrap();
        let (res_l, rep_l) = rt.run(plan_local(&g, &loose)).unwrap();
        assert!(rep_l.iterations() < rep_t.iterations());
        let a = labels_from_results(&res_t, g.n_vertices, 3);
        let b = labels_from_results(&res_l, g.n_vertices, 3);
        let worst = (0..g.n_vertices).map(|v| max_abs_diff(&a[v], &b[v])).fold(0.0f64, f64::max);
        assert!(worst < 0.1, "1%-threshold deviation {worst}");
    }

    #[test]
    fn delta_sets_shrink() {
        let g = graph();
        let c = AdsorptionConfig { threshold: 0.01, ..cfg() };
        let (_, report) = LocalRuntime::new().run(plan_local(&g, &c)).unwrap();
        let sizes: Vec<u64> = report.strata.iter().map(|s| s.delta_set_size).collect();
        assert!(sizes.len() >= 3);
        assert!(*sizes.last().unwrap() < sizes[0]);
    }

    #[test]
    fn argmax_handles_unreached_vertices() {
        let labels = vec![vec![0.0, 0.0], vec![0.2, 0.7]];
        assert_eq!(argmax_labels(&labels), vec![None, Some(1)]);
    }
}
