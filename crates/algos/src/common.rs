//! Shared conversions between datasets, engine tuples, and MapReduce
//! records.

use rex_core::tuple::Tuple;
use rex_core::value::Value;
use rex_data::graph::Graph;
use rex_hadoop::api::Record;

/// Adjacency-list records `(node, [nbr, nbr, ...])` for every vertex with
/// at least one out-edge — the "linkage table" of MapReduce graph jobs.
pub fn adjacency_records(graph: &Graph) -> Vec<Record> {
    graph
        .adjacency()
        .into_iter()
        .enumerate()
        .filter(|(_, nbrs)| !nbrs.is_empty())
        .map(|(v, nbrs)| {
            let list: Vec<Value> = nbrs.into_iter().map(|t| Value::Int(t as i64)).collect();
            (Value::Int(v as i64), Value::list(list))
        })
        .collect()
}

/// Per-edge linkage records `(src, dst)` — the relational layout of the
/// immutable graph input for the MapReduce baselines. One record per edge
/// makes the immutable shuffle volume proportional to |E|, which is what
/// HaLoop's reducer-input cache saves.
pub fn edge_records(graph: &Graph) -> Vec<Record> {
    graph.edges.iter().map(|&(s, t)| (Value::Int(s as i64), Value::Int(t as i64))).collect()
}

/// Initial PageRank records `(v, 1.0)` for every vertex.
pub fn initial_rank_records(graph: &Graph) -> Vec<Record> {
    (0..graph.n_vertices).map(|v| (Value::Int(v as i64), Value::Double(1.0))).collect()
}

/// Extract a per-vertex `f64` vector from `(vertex, value)` result tuples;
/// vertices absent from the results get `default`.
pub fn per_vertex_doubles(results: &[Tuple], n_vertices: usize, default: f64) -> Vec<f64> {
    let mut out = vec![default; n_vertices];
    for t in results {
        if let (Some(v), Some(x)) = (t.get(0).as_int(), t.get(1).as_double()) {
            if (0..n_vertices as i64).contains(&v) {
                out[v as usize] = x;
            }
        }
    }
    out
}

/// Extract a per-vertex `f64` vector from `(key, value)` MapReduce records.
pub fn per_vertex_doubles_from_records(
    records: &[Record],
    n_vertices: usize,
    default: f64,
) -> Vec<f64> {
    let mut out = vec![default; n_vertices];
    for (k, v) in records {
        if let (Some(kv), Some(x)) = (k.as_int(), v.as_double()) {
            if (0..n_vertices as i64).contains(&kv) {
                out[kv as usize] = x;
            }
        }
    }
    out
}

/// Maximum absolute difference between two equally-sized vectors.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::tuple;
    use rex_data::graph::Graph;

    fn g() -> Graph {
        Graph { n_vertices: 3, edges: vec![(0, 1), (0, 2), (1, 2)] }
    }

    #[test]
    fn adjacency_records_skip_sinks() {
        let recs = adjacency_records(&g());
        assert_eq!(recs.len(), 2); // vertex 2 has no out-edges
        assert_eq!(recs[0].0, Value::Int(0));
        assert_eq!(recs[0].1.as_list().unwrap().len(), 2);
    }

    #[test]
    fn initial_ranks_cover_all_vertices() {
        let recs = initial_rank_records(&g());
        assert_eq!(recs.len(), 3);
        assert!(recs.iter().all(|(_, v)| v.as_double() == Some(1.0)));
    }

    #[test]
    fn per_vertex_extraction_defaults_missing() {
        let v = per_vertex_doubles(&[tuple![1i64, 9.5f64]], 3, 0.15);
        assert_eq!(v, vec![0.15, 9.5, 0.15]);
        // Out-of-range vertices are ignored.
        let w = per_vertex_doubles(&[tuple![99i64, 1.0f64]], 3, 0.0);
        assert_eq!(w, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn max_abs_diff_finds_peak() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 1.0]), 1.0);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }
}
