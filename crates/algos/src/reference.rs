//! Sequential reference implementations.
//!
//! Every platform in the workspace (REX delta / no-delta / wrap, the
//! MapReduce simulator, the DBMS X baseline) is validated against these
//! straightforward single-threaded algorithms, so correctness is anchored
//! in one place.

use rex_data::graph::Graph;
use rex_data::points::Point;

/// Damping factor used throughout (the paper's PageRank query hard-codes
/// `0.15 + 0.85 * sum(prDiff)`).
pub const DAMPING: f64 = 0.85;
/// Base rank, `1 - DAMPING`.
pub const BASE_RANK: f64 = 0.15;

/// Power-iteration PageRank in the paper's formulation:
/// `PR(v) = 0.15 + 0.85 · Σ_{u→v} PR(u)/outdeg(u)`, starting from
/// `PR = 1.0`, running exactly `iterations` rounds.
pub fn pagerank(graph: &Graph, iterations: usize) -> Vec<f64> {
    let n = graph.n_vertices;
    let adj = graph.adjacency();
    let out_deg = graph.out_degrees();
    let mut pr = vec![1.0f64; n];
    for _ in 0..iterations {
        let mut incoming = vec![0.0f64; n];
        for v in 0..n {
            if out_deg[v] > 0 {
                let share = pr[v] / out_deg[v] as f64;
                for &t in &adj[v] {
                    incoming[t as usize] += share;
                }
            }
        }
        for v in 0..n {
            pr[v] = BASE_RANK + DAMPING * incoming[v];
        }
    }
    pr
}

/// PageRank run to convergence: stops when no vertex's rank changes by more
/// than `threshold` in an iteration (the paper's criterion: "no page changes
/// its PageRank value by more than 1%"). Returns `(ranks, iterations)`.
pub fn pagerank_converged(graph: &Graph, threshold: f64, max_iters: usize) -> (Vec<f64>, usize) {
    let n = graph.n_vertices;
    let adj = graph.adjacency();
    let out_deg = graph.out_degrees();
    let mut pr = vec![1.0f64; n];
    for it in 0..max_iters {
        let mut incoming = vec![0.0f64; n];
        for v in 0..n {
            if out_deg[v] > 0 {
                let share = pr[v] / out_deg[v] as f64;
                for &t in &adj[v] {
                    incoming[t as usize] += share;
                }
            }
        }
        let mut max_change = 0.0f64;
        for v in 0..n {
            let new = BASE_RANK + DAMPING * incoming[v];
            max_change = max_change.max((new - pr[v]).abs());
            pr[v] = new;
        }
        if max_change <= threshold {
            return (pr, it + 1);
        }
    }
    (pr, max_iters)
}

/// Unweighted single-source shortest paths (BFS). Returns one distance per
/// vertex; unreachable vertices get `u32::MAX`.
pub fn shortest_paths(graph: &Graph, source: u32) -> Vec<u32> {
    let n = graph.n_vertices;
    let adj = graph.adjacency();
    let mut dist = vec![u32::MAX; n];
    let mut frontier = vec![source];
    dist[source as usize] = 0;
    let mut d = 0u32;
    while !frontier.is_empty() {
        d += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for &t in &adj[v as usize] {
                if dist[t as usize] == u32::MAX {
                    dist[t as usize] = d;
                    next.push(t);
                }
            }
        }
        frontier = next;
    }
    dist
}

/// The number of BFS hops needed to reach `fraction` of the reachable set
/// (the paper reaches 99% of DBPedia in 6 hops but needs 75 for 100%).
pub fn hops_to_reach(dist: &[u32], fraction: f64) -> u32 {
    let mut reached: Vec<u32> = dist.iter().copied().filter(|&d| d != u32::MAX).collect();
    if reached.is_empty() {
        return 0;
    }
    reached.sort_unstable();
    let idx = ((reached.len() as f64 * fraction).ceil() as usize).clamp(1, reached.len());
    reached[idx - 1]
}

/// One K-means run with the paper's termination criterion ("until in the
/// end no points switch centroids"). Initial centroids are the given seeds;
/// ties break toward the lower centroid id. Returns `(centroids,
/// assignment, iterations, switches_per_iteration)`.
pub fn kmeans(
    points: &[Point],
    initial: &[Point],
    max_iters: usize,
) -> (Vec<Point>, Vec<usize>, usize, Vec<usize>) {
    let k = initial.len();
    let mut centroids: Vec<Point> = initial.to_vec();
    let mut assign = vec![usize::MAX; points.len()];
    let mut switch_trace = Vec::new();
    let mut iters = 0;
    for _ in 0..max_iters {
        iters += 1;
        // Assignment step.
        let mut switches = 0usize;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, ctr) in centroids.iter().enumerate() {
                let d = p.dist(ctr);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assign[i] != best {
                assign[i] = best;
                switches += 1;
            }
        }
        switch_trace.push(switches);
        if switches == 0 {
            break;
        }
        // Update step: mean of members; empty clusters keep their centroid.
        let mut sums = vec![(0.0f64, 0.0f64, 0usize); k];
        for (i, p) in points.iter().enumerate() {
            let s = &mut sums[assign[i]];
            s.0 += p.x;
            s.1 += p.y;
            s.2 += 1;
        }
        for (c, (sx, sy, n)) in sums.into_iter().enumerate() {
            if n > 0 {
                centroids[c] = Point { x: sx / n as f64, y: sy / n as f64 };
            }
        }
    }
    (centroids, assign, iters, switch_trace)
}

/// Deterministic initial centroids: `k` evenly-spaced points from the
/// dataset (the paper's `KMSampleAgg` "controls how the initial centroids
/// are sampled among the node coordinates").
pub fn sample_centroids(points: &[Point], k: usize) -> Vec<Point> {
    let k = k.min(points.len()).max(1);
    let stride = points.len() / k;
    (0..k).map(|i| points[i * stride.max(1)]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_data::graph::{generate_graph, GraphSpec};
    use rex_data::points::{generate_points, PointSpec};

    fn tiny_graph() -> Graph {
        // 0 -> 1 -> 2, 2 -> 0, 3 isolated source into 0.
        Graph { n_vertices: 4, edges: vec![(0, 1), (1, 2), (2, 0), (3, 0)] }
    }

    #[test]
    fn pagerank_sums_incoming_shares() {
        let pr = pagerank(&tiny_graph(), 1);
        // After one iteration from PR=1: v1 gets all of v0's rank.
        assert!((pr[1] - (0.15 + 0.85 * 1.0)).abs() < 1e-12);
        // v0 gets v2's and v3's full shares.
        assert!((pr[0] - (0.15 + 0.85 * 2.0)).abs() < 1e-12);
        // v3 has no in-edges.
        assert!((pr[3] - 0.15).abs() < 1e-12);
    }

    #[test]
    fn pagerank_converges_and_is_stationary() {
        let g = generate_graph(GraphSpec::small());
        let (pr, iters) = pagerank_converged(&g, 1e-9, 500);
        assert!(iters < 500, "did not converge in 500 iterations");
        // The fixpoint property: one more iteration changes nothing.
        let adj = g.adjacency();
        let deg = g.out_degrees();
        for v in 0..g.n_vertices {
            let mut incoming = 0.0;
            for u in 0..g.n_vertices {
                if adj[u].contains(&(v as u32)) {
                    incoming += pr[u] / deg[u] as f64;
                }
            }
            assert!((pr[v] - (0.15 + 0.85 * incoming)).abs() < 1e-6);
        }
    }

    #[test]
    fn pagerank_ranks_hub_higher() {
        // Everyone links to vertex 0.
        let g = Graph { n_vertices: 5, edges: vec![(1, 0), (2, 0), (3, 0), (4, 0)] };
        let (pr, _) = pagerank_converged(&g, 1e-9, 100);
        for v in 1..5 {
            assert!(pr[0] > pr[v]);
        }
    }

    #[test]
    fn bfs_distances_are_hop_counts() {
        let d = shortest_paths(&tiny_graph(), 0);
        assert_eq!(d, vec![0, 1, 2, u32::MAX]);
        let d3 = shortest_paths(&tiny_graph(), 3);
        assert_eq!(d3, vec![1, 2, 3, 0]);
    }

    #[test]
    fn hops_to_reach_percentiles() {
        let d = vec![0, 1, 1, 2, 5, u32::MAX];
        assert_eq!(hops_to_reach(&d, 1.0), 5);
        assert_eq!(hops_to_reach(&d, 0.8), 2);
        assert_eq!(hops_to_reach(&d, 0.2), 0);
    }

    #[test]
    fn kmeans_converges_with_no_switches() {
        let pts = generate_points(PointSpec { n_points: 300, n_clusters: 3, stddev: 0.5, seed: 4 });
        let init = sample_centroids(&pts, 3);
        let (centroids, assign, iters, trace) = kmeans(&pts, &init, 100);
        assert_eq!(centroids.len(), 3);
        assert_eq!(assign.len(), 300);
        assert!(iters < 100);
        assert_eq!(*trace.last().unwrap(), 0, "last iteration has no switches");
        // Every point is closest to its assigned centroid.
        for (i, p) in pts.iter().enumerate() {
            let own = p.dist(&centroids[assign[i]]);
            for c in &centroids {
                assert!(own <= p.dist(c) + 1e-9);
            }
        }
    }

    #[test]
    fn kmeans_switch_counts_decrease_overall() {
        let pts = generate_points(PointSpec { n_points: 500, n_clusters: 5, stddev: 2.0, seed: 9 });
        let init = sample_centroids(&pts, 5);
        let (_, _, _, trace) = kmeans(&pts, &init, 100);
        // First iteration assigns everyone; the tail has far fewer switches.
        assert_eq!(trace[0], 500);
        assert!(*trace.last().unwrap() < 50);
    }

    #[test]
    fn sample_centroids_is_deterministic_and_sized() {
        let pts = generate_points(PointSpec::small());
        let a = sample_centroids(&pts, 7);
        let b = sample_centroids(&pts, 7);
        assert_eq!(a.len(), 7);
        assert_eq!(a, b);
    }
}
