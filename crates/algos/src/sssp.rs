//! Delta-oriented single-source shortest path (Listing 2).
//!
//! Plan shape matches PageRank's Figure 1 topology; the join handler is the
//! paper's `SPAgg`: when a vertex's minimum distance improves, it offers
//! `dist + 1` to each out-neighbor. The group-by computes the minimum offer
//! per destination, and a `MinDist` while-handler on the fixpoint keeps the
//! mutable set monotone (a distance can only decrease). With implicit
//! fixpoint termination, iteration `i`'s Δᵢ set is exactly the frontier —
//! vertices whose distance improved — so late iterations over a
//! long-diameter graph are nearly free (§6.3 "Improved Accuracy").

use crate::common::per_vertex_doubles;
use rex_cluster::runtime::PlanBuilder;
use rex_core::aggregates::MinAgg;
use rex_core::delta::{Annotation, Delta};
use rex_core::error::{Result, RexError};
use rex_core::exec::PlanGraph;
use rex_core::handlers::{JoinHandler, TupleSet, WhileHandler};
use rex_core::operators::{
    AggSpec, FixpointOp, GroupByOp, HashJoinOp, ScanOp, SinkOp, Termination,
};
use rex_core::tuple::Tuple;
use rex_core::value::Value;
use rex_data::graph::Graph;
use std::sync::Arc;

pub use crate::pagerank::Strategy;

/// Configuration for the shortest-path plans.
#[derive(Debug, Clone, Copy)]
pub struct SsspConfig {
    /// The source vertex (the paper's `startNode`).
    pub source: u32,
    /// Iteration count for the fixed-iteration variants; safety cap for
    /// the delta variant.
    pub max_iterations: u64,
}

impl SsspConfig {
    /// Source 0, generous cap.
    pub fn from_source(source: u32) -> SsspConfig {
        SsspConfig { source, max_iterations: 200 }
    }
}

/// The paper's `SPAgg` join handler (Listing 2). Left bucket: best-known
/// distances `(nodeId, dist)`; right bucket: edges `(srcId, destId)`.
pub struct SpAgg {
    /// Delta mode offers `dist+1` only on improvement; no-delta mode offers
    /// on every (re-)arrival.
    pub delta_mode: bool,
}

impl JoinHandler for SpAgg {
    fn name(&self) -> &str {
        if self.delta_mode {
            "SPAgg"
        } else {
            "SPAgg-noΔ"
        }
    }

    fn update(
        &self,
        left: &mut TupleSet,
        right: &mut TupleSet,
        d: &Delta,
        from_left: bool,
    ) -> Result<Vec<Delta>> {
        if !from_left {
            right.insert(d.tuple.clone());
            return Ok(Vec::new());
        }
        if matches!(d.ann, Annotation::Delete) {
            return Ok(Vec::new()); // distances never retract
        }
        let dist = d
            .tuple
            .get(1)
            .as_double()
            .ok_or_else(|| RexError::Exec("SPAgg expects (nodeId, dist:Double)".into()))?;
        let node = d.tuple.try_get(0)?.clone();
        let current =
            left.get_by_key(0, &node).and_then(|t| t.get(1).as_double()).unwrap_or(f64::INFINITY);
        let improved = dist < current;
        if improved {
            left.put_by_key(0, d.tuple.clone());
        }
        if !improved && self.delta_mode {
            return Ok(Vec::new());
        }
        let best = if improved { dist } else { current };
        let mut out = Vec::with_capacity(right.len() + 1);
        // Self-offer: keeps the node's own distance in its min-group, so a
        // later (worse) cycle offer can never displace it. Needed when the
        // fixpoint runs without a monotone while-handler (the pure-RQL
        // Listing 2 lowering).
        out.push(Delta::insert(Tuple::new(vec![node.clone(), Value::Double(best)])));
        for e in right.iter() {
            out.push(Delta::insert(Tuple::new(vec![e.get(1).clone(), Value::Double(best + 1.0)])));
        }
        Ok(out)
    }
}

/// While-handler keeping the fixpoint's distances monotone: a delta only
/// refines state (and propagates) when it improves the current minimum.
pub struct MinDist;

impl WhileHandler for MinDist {
    fn name(&self) -> &str {
        "MinDist"
    }

    fn update(&self, rel: &mut TupleSet, d: &Delta) -> Result<Vec<Delta>> {
        if matches!(d.ann, Annotation::Delete) {
            return Ok(Vec::new());
        }
        let new = d.tuple.get(1).as_double().unwrap_or(f64::INFINITY);
        let current = rel.iter().next().and_then(|t| t.get(1).as_double()).unwrap_or(f64::INFINITY);
        if new < current {
            rel.clear();
            rel.insert(d.tuple.clone());
            Ok(vec![Delta::insert(d.tuple.clone())])
        } else {
            Ok(Vec::new())
        }
    }
}

fn wire(
    g: &mut PlanGraph,
    base: Vec<Tuple>,
    edges: Vec<Tuple>,
    cfg: SsspConfig,
    strategy: Strategy,
) {
    let scan_base = g.add(Box::new(ScanOp::new("sp_base", base)));
    let scan_graph = g.add(Box::new(ScanOp::new("graph", edges)));
    let fp = match strategy {
        Strategy::Delta => FixpointOp::new(vec![0], Termination::FixpointOrMax(cfg.max_iterations))
            .with_handler(Arc::new(MinDist)),
        Strategy::NoDelta => FixpointOp::new(vec![0], Termination::ExactStrata(cfg.max_iterations))
            .with_handler(Arc::new(MinDist))
            .no_delta(),
    };
    let fp = g.add(Box::new(fp));
    let join = g.add(Box::new(
        HashJoinOp::new(vec![0], vec![0])
            .with_handler(Arc::new(SpAgg { delta_mode: strategy == Strategy::Delta })),
    ));
    let rehash = g.add_rehash(vec![0]);
    let gb = match strategy {
        Strategy::Delta => GroupByOp::new(vec![0], vec![AggSpec::new(Arc::new(MinAgg), vec![1])]),
        Strategy::NoDelta => GroupByOp::new(vec![0], vec![AggSpec::new(Arc::new(MinAgg), vec![1])])
            .without_retention(),
    };
    let gb = g.add(Box::new(gb));
    let sink = g.add(Box::new(SinkOp::new()));

    g.connect(scan_base, 0, fp, 0);
    g.connect(scan_graph, 0, join, 1);
    g.connect(fp, 0, join, 0);
    g.pipe(join, rehash);
    g.connect(rehash, 0, gb, 0);
    g.connect(gb, 0, fp, 1);
    g.connect(fp, 1, sink, 0);
}

/// Single-node plan over an in-memory graph.
pub fn plan_local(graph: &Graph, cfg: SsspConfig, strategy: Strategy) -> PlanGraph {
    let mut g = PlanGraph::new();
    let base = vec![Tuple::new(vec![Value::Int(cfg.source as i64), Value::Double(0.0)])];
    wire(&mut g, base, graph.edge_tuples(), cfg, strategy);
    g
}

/// Cluster plan builder: the worker owning the source vertex seeds the base
/// case; everyone scans their `graph` partition.
pub fn plan_builder(cfg: SsspConfig, strategy: Strategy) -> PlanBuilder {
    Arc::new(move |worker, snap, catalog| {
        let table = catalog.get("graph")?;
        let edges = table.partition_for(snap, worker);
        let src_key = vec![Value::Int(cfg.source as i64)];
        let base = if snap.owner_of_key(&src_key) == worker {
            vec![Tuple::new(vec![Value::Int(cfg.source as i64), Value::Double(0.0)])]
        } else {
            Vec::new()
        };
        let mut g = PlanGraph::new();
        wire(&mut g, base, edges, cfg, strategy);
        Ok(g)
    })
}

/// Extract per-vertex distances from query results; unreachable vertices
/// get `f64::INFINITY`.
pub fn dists_from_results(results: &[Tuple], n_vertices: usize) -> Vec<f64> {
    per_vertex_doubles(results, n_vertices, f64::INFINITY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use rex_cluster::runtime::{ClusterConfig, ClusterRuntime};
    use rex_core::exec::LocalRuntime;
    use rex_data::graph::{generate_graph, GraphSpec};
    use rex_storage::catalog::Catalog;
    use rex_storage::table::StoredTable;

    fn small_graph() -> Graph {
        generate_graph(GraphSpec {
            n_vertices: 80,
            edges_per_vertex: 2,
            seed: 3,
            random_edge_fraction: 0.05,
            locality_window: 0,
        })
    }

    fn assert_matches_reference(graph: &Graph, got: &[f64], source: u32) {
        let want = reference::shortest_paths(graph, source);
        for v in 0..graph.n_vertices {
            let w = if want[v] == u32::MAX { f64::INFINITY } else { want[v] as f64 };
            assert_eq!(got[v], w, "vertex {v}");
        }
    }

    #[test]
    fn delta_matches_bfs_reference() {
        let g = small_graph();
        let cfg = SsspConfig::from_source(0);
        let (results, report) =
            LocalRuntime::new().run(plan_local(&g, cfg, Strategy::Delta)).unwrap();
        assert_matches_reference(&g, &dists_from_results(&results, g.n_vertices), 0);
        // Implicit termination: final stratum produced nothing.
        assert_eq!(report.strata.last().unwrap().delta_set_size, 0);
    }

    #[test]
    fn no_delta_matches_bfs_reference() {
        let g = small_graph();
        // Enough iterations to cover the graph's BFS depth.
        let cfg = SsspConfig { source: 0, max_iterations: 90 };
        let (results, report) =
            LocalRuntime::new().run(plan_local(&g, cfg, Strategy::NoDelta)).unwrap();
        assert_matches_reference(&g, &dists_from_results(&results, g.n_vertices), 0);
        assert_eq!(report.iterations(), 90);
    }

    #[test]
    fn delta_set_is_the_frontier() {
        let g = small_graph();
        let cfg = SsspConfig::from_source(0);
        let (_, report) = LocalRuntime::new().run(plan_local(&g, cfg, Strategy::Delta)).unwrap();
        let sizes: Vec<u64> = report.strata.iter().map(|s| s.delta_set_size).collect();
        // Frontier sizes sum to the reachable-set size minus the source
        // (whose seed enters with the base case, before the first stratum
        // vote): each vertex joins the frontier exactly once — monotone
        // distances, unit weights.
        let reachable =
            reference::shortest_paths(&g, 0).iter().filter(|&&d| d != u32::MAX).count() as u64;
        assert_eq!(sizes.iter().sum::<u64>(), reachable - 1);
    }

    #[test]
    fn late_iterations_are_nearly_free_for_delta() {
        let g = small_graph();
        let cfg = SsspConfig::from_source(0);
        let (_, report) = LocalRuntime::new().run(plan_local(&g, cfg, Strategy::Delta)).unwrap();
        let times: Vec<f64> = report.strata.iter().map(|s| s.simulated_time).collect();
        assert!(times.len() >= 4, "graph too shallow: {} strata", times.len());
        // The last stratum (empty frontier) costs a tiny fraction of the
        // peak stratum.
        let peak = times.iter().copied().fold(0.0, f64::max);
        assert!(*times.last().unwrap() < peak * 0.25);
    }

    #[test]
    fn cluster_matches_local() {
        let g = small_graph();
        let cfg = SsspConfig::from_source(0);
        let cat = Catalog::new();
        let mut t = StoredTable::new("graph", Graph::schema(), vec![0]);
        t.load(g.edge_tuples()).unwrap();
        cat.register(t);
        let rt = ClusterRuntime::new(ClusterConfig::new(4), cat);
        let (results, _) = rt.run(plan_builder(cfg, Strategy::Delta)).unwrap();
        assert_matches_reference(&g, &dists_from_results(&results, g.n_vertices), 0);
    }

    #[test]
    fn sp_agg_offers_only_on_improvement() {
        let h = SpAgg { delta_mode: true };
        let mut left = TupleSet::new();
        let mut right = TupleSet::new();
        h.update(
            &mut left,
            &mut right,
            &Delta::insert(Tuple::new(vec![Value::Int(1), Value::Int(2)])),
            false,
        )
        .unwrap();
        let offer = |h: &SpAgg, l: &mut TupleSet, r: &mut TupleSet, dist: f64| {
            h.update(
                l,
                r,
                &Delta::insert(Tuple::new(vec![Value::Int(1), Value::Double(dist)])),
                true,
            )
            .unwrap()
        };
        let out = offer(&h, &mut left, &mut right, 4.0);
        // Self-offer plus one neighbor offer.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].tuple.get(1).as_double(), Some(4.0));
        assert_eq!(out[1].tuple.get(1).as_double(), Some(5.0));
        // Worse distance: silence.
        assert!(offer(&h, &mut left, &mut right, 9.0).is_empty());
        // Better: propagates.
        let out = offer(&h, &mut left, &mut right, 2.0);
        assert_eq!(out[1].tuple.get(1).as_double(), Some(3.0));
    }

    #[test]
    fn min_dist_handler_is_monotone() {
        let h = MinDist;
        let mut rel = TupleSet::new();
        let d5 = Delta::insert(Tuple::new(vec![Value::Int(1), Value::Double(5.0)]));
        assert_eq!(h.update(&mut rel, &d5).unwrap().len(), 1);
        let d9 = Delta::insert(Tuple::new(vec![Value::Int(1), Value::Double(9.0)]));
        assert!(h.update(&mut rel, &d9).unwrap().is_empty());
        assert_eq!(rel.tuples()[0].get(1).as_double(), Some(5.0));
        let d2 = Delta::insert(Tuple::new(vec![Value::Int(1), Value::Double(2.0)]));
        assert_eq!(h.update(&mut rel, &d2).unwrap().len(), 1);
        assert_eq!(rel.tuples()[0].get(1).as_double(), Some(2.0));
    }
}
