//! Plan graphs and the push-based executor.
//!
//! A [`PlanGraph`] wires operators into a dataflow; the [`Executor`]
//! delivers events along edges until quiescence. Recursion is driven by an
//! outer runtime ([`LocalRuntime`] here, the cluster runtime in
//! `rex-cluster`) that plays the query-requestor role of §4.2: after each
//! stratum it collects the fixpoint operators' new-tuple counts and decides
//! whether to advance to another stratum or terminate the query.

use crate::error::{Result, RexError};
use crate::metrics::{CostModel, ExecMetrics, QueryReport, StratumReport};
use crate::operators::{Event, FixpointOp, OpCtx, Operator};
use crate::telemetry::{ExecTrace, OpStats};
use crate::tuple::Tuple;
use crate::udf::Registry;
use std::collections::VecDeque;
use std::time::Instant;

/// Rows carried by an event, for telemetry accounting.
#[inline]
fn event_rows(e: &Event) -> u64 {
    match e {
        Event::Data(d) => d.len() as u64,
        Event::Rows(r) => r.len() as u64,
        Event::Cols(b) => b.len() as u64,
        Event::Punct(_) => 0,
    }
}

/// Node identifier within a plan graph.
pub type NodeId = usize;

/// How a network-boundary node's emissions are routed among workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetKey {
    /// Partition by the hash of these key columns; each delta is delivered
    /// to the key's owner under the query's partition snapshot.
    Hash(Vec<usize>),
    /// Replicate every delta to all live workers (small relations joined
    /// against everything, e.g. K-means centroids).
    Broadcast,
    /// Deliver every delta to one deterministic worker — the owner of the
    /// empty key. Used for global (ungrouped) aggregates, which must
    /// combine all partitions' tuples at a single site.
    Gather,
}

/// A dataflow graph of operators.
///
/// Edges connect `(node, output port)` to `(node, input port)`. Nodes may be
/// marked as *network boundaries* (rehash operators): in distributed
/// execution their emissions are intercepted by the cluster router instead
/// of being delivered locally.
pub struct PlanGraph {
    nodes: Vec<Box<dyn Operator>>,
    /// For each node: `Some(key)` when it is a rehash/network boundary.
    network: Vec<Option<NetKey>>,
    /// node → out port → list of (dst node, dst port).
    edges: Vec<Vec<Vec<(NodeId, usize)>>>,
}

impl Default for PlanGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanGraph {
    /// An empty graph.
    pub fn new() -> PlanGraph {
        PlanGraph { nodes: Vec::new(), network: Vec::new(), edges: Vec::new() }
    }

    /// Add an operator; returns its node id.
    pub fn add(&mut self, op: Box<dyn Operator>) -> NodeId {
        self.nodes.push(op);
        self.network.push(None);
        self.edges.push(vec![Vec::new(); 4]);
        self.nodes.len() - 1
    }

    /// Add a rehash operator, marking it as a network boundary keyed on
    /// `key_cols` (of the tuples flowing through it). An empty key is a
    /// broadcast boundary, preserving the engine's long-standing
    /// convention.
    pub fn add_rehash(&mut self, key_cols: Vec<usize>) -> NodeId {
        let net =
            if key_cols.is_empty() { NetKey::Broadcast } else { NetKey::Hash(key_cols.clone()) };
        let id = self.add(Box::new(crate::operators::RehashOp::new(key_cols)));
        self.network[id] = Some(net);
        id
    }

    /// Add a gather boundary: all deltas flow to one deterministic worker.
    pub fn add_gather(&mut self) -> NodeId {
        let id = self.add(Box::new(crate::operators::RehashOp::new(Vec::new())));
        self.network[id] = Some(NetKey::Gather);
        id
    }

    /// Connect `from`'s output port to `to`'s input port.
    pub fn connect(&mut self, from: NodeId, from_port: usize, to: NodeId, to_port: usize) {
        self.edges[from][from_port].push((to, to_port));
    }

    /// Convenience: connect output port 0 to input port 0.
    pub fn pipe(&mut self, from: NodeId, to: NodeId) {
        self.connect(from, 0, to, 0);
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// All direct successors of `node`, across every output port. Plan
    /// analyses (e.g. checking that no thread-shard gate feeds another)
    /// walk the graph through this without touching the operators.
    pub fn successors(&self, node: NodeId) -> Vec<NodeId> {
        self.edges[node].iter().flat_map(|dsts| dsts.iter().map(|&(d, _)| d)).collect()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Render the plan for debugging / EXPLAIN output.
    pub fn explain(&self) -> String {
        let mut s = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let net = if self.network[i].is_some() { " [network]" } else { "" };
            s.push_str(&format!("#{i} {}{}\n", n.name(), net));
            for (port, dsts) in self.edges[i].iter().enumerate() {
                for (dst, dport) in dsts {
                    s.push_str(&format!("   out{port} -> #{dst}.in{dport}\n"));
                }
            }
        }
        s
    }
}

/// An emission crossing a network boundary, to be routed by the cluster.
#[derive(Debug, Clone)]
pub struct NetEmission {
    /// The rehash node that produced it.
    pub node: NodeId,
    /// The rehash node's output port.
    pub port: usize,
    /// The payload.
    pub event: Event,
}

/// Executes one worker's copy of a plan graph.
pub struct Executor {
    nodes: Vec<Box<dyn Operator>>,
    network: Vec<Option<NetKey>>,
    edges: Vec<Vec<Vec<(NodeId, usize)>>>,
    queue: VecDeque<(NodeId, usize, Event)>,
    /// Worker-local metrics.
    pub metrics: ExecMetrics,
    stratum: u64,
    worker: usize,
    distributed: bool,
    /// Per-node telemetry records; `None` when tracing is off (the hot
    /// loop then pays one discriminant check per event).
    trace: Option<Vec<OpStats>>,
}

impl Executor {
    /// Build an executor over `graph`. `distributed` controls whether
    /// network-boundary emissions are diverted to the outbox.
    pub fn new(graph: PlanGraph, worker: usize, distributed: bool) -> Executor {
        Executor {
            nodes: graph.nodes,
            network: graph.network,
            edges: graph.edges,
            queue: VecDeque::new(),
            metrics: ExecMetrics::default(),
            stratum: 0,
            worker,
            distributed,
            trace: None,
        }
    }

    /// Set the stratum number reported to operators.
    pub fn set_stratum(&mut self, s: u64) {
        self.stratum = s;
    }

    /// Toggle per-operator telemetry. Enabling allocates the per-node
    /// stats vector once (names snapshotted now); disabling drops any
    /// collected counters.
    pub fn set_telemetry(&mut self, on: bool) {
        if on {
            if self.trace.is_none() {
                self.trace = Some(
                    self.nodes
                        .iter()
                        .map(|n| OpStats { name: n.name(), ..Default::default() })
                        .collect(),
                );
            }
        } else {
            self.trace = None;
        }
    }

    /// Whether telemetry is being collected.
    pub fn telemetry_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Take the collected trace, harvesting each operator's detail
    /// counters and the plan topology. `None` when telemetry is off.
    /// Tracing stays enabled (with fresh counters) only if re-enabled via
    /// [`set_telemetry`](Executor::set_telemetry).
    pub fn take_trace(&mut self) -> Option<ExecTrace> {
        let mut ops = self.trace.take()?;
        for (i, op) in ops.iter_mut().enumerate() {
            op.detail = self.nodes[i].stats_detail();
            // One executor = one thread of execution; merging worker or
            // thread traces sums these into the true thread count.
            op.threads = 1;
            // Morsel counts are first-class, not detail.
            if let Some(pos) = op.detail.iter().position(|(k, _)| k == "morsels") {
                op.morsels = op.detail.remove(pos).1;
            }
        }
        let edges = self
            .edges
            .iter()
            .map(|ports| {
                ports
                    .iter()
                    .enumerate()
                    .flat_map(|(port, dsts)| dsts.iter().map(move |&(d, dp)| (port, d, dp)))
                    .collect()
            })
            .collect();
        let network = self.network.iter().map(Option::is_some).collect();
        Some(ExecTrace { ops, edges, network, iteration_deltas: Vec::new(), wall_seconds: 0.0 })
    }

    /// Routing mode of a network node.
    pub fn network_key(&self, node: NodeId) -> Option<&NetKey> {
        self.network.get(node).and_then(|k| k.as_ref())
    }

    /// Ids of all network-boundary nodes.
    pub fn network_nodes(&self) -> Vec<NodeId> {
        self.network.iter().enumerate().filter_map(|(i, k)| k.as_ref().map(|_| i)).collect()
    }

    /// Run all source operators (scans), queueing their output. One
    /// [`OpCtx`] serves every source.
    pub fn start(&mut self, reg: &Registry, cost: &CostModel) -> Result<()> {
        let traced = self.trace.is_some();
        let mut ctx = OpCtx::new(self.stratum, self.worker, reg, cost, &mut self.metrics);
        for i in 0..self.nodes.len() {
            if self.nodes[i].is_source() {
                let t0 = traced.then(Instant::now);
                self.nodes[i].run_source(&mut ctx)?;
                if let (Some(t0), Some(tr)) = (t0, self.trace.as_mut()) {
                    tr[i].batches += 1;
                    tr[i].wall_ns += t0.elapsed().as_nanos() as u64;
                }
                for (port, event) in ctx.drain_output() {
                    if traced {
                        if let Some(tr) = self.trace.as_mut() {
                            tr[i].rows_out += event_rows(&event);
                        }
                    }
                    enqueue(
                        self.distributed,
                        &self.network,
                        &self.edges,
                        &mut self.queue,
                        &mut Vec::new(),
                        i,
                        port,
                        event,
                    );
                }
            }
        }
        Ok(())
    }

    /// Deliver an event directly to a node's input port (cluster receive
    /// path, test harnesses).
    pub fn inject(&mut self, node: NodeId, port: usize, event: Event) {
        self.queue.push_back((node, port, event));
    }

    /// Deliver an event to the downstream edges of `node`'s output `port`,
    /// as if the node had emitted it locally. Used by the cluster router to
    /// hand received network traffic to the rehash's consumers. The edge
    /// list is walked in place and the event cloned only for fan-out
    /// beyond the first destination.
    pub fn inject_downstream(&mut self, node: NodeId, port: usize, event: Event) {
        fan_out(&mut self.queue, &self.edges[node][port], event);
    }

    /// Process queued events until quiescence. Network emissions are
    /// appended to `outbox`.
    ///
    /// The hot loop constructs a single [`OpCtx`] whose emission buffer is
    /// drained — not reallocated — after every operator activation, and
    /// hands events downstream without cloning edge lists.
    pub fn drain(
        &mut self,
        reg: &Registry,
        cost: &CostModel,
        outbox: &mut Vec<NetEmission>,
    ) -> Result<()> {
        let traced = self.trace.is_some();
        let mut ctx = OpCtx::new(self.stratum, self.worker, reg, cost, &mut self.metrics);
        while let Some((node, port, event)) = self.queue.pop_front() {
            let t0 = traced.then(Instant::now);
            let (rows_in, lane, qdepth) = if traced {
                // Queue depth at pop time, counting the popped event.
                (
                    event_rows(&event),
                    matches!(event, Event::Rows(_) | Event::Cols(_)),
                    self.queue.len() as u64 + 1,
                )
            } else {
                (0, false, 0)
            };
            match event {
                Event::Data(deltas) => self.nodes[node].on_deltas(port, deltas, &mut ctx)?,
                Event::Rows(rows) => self.nodes[node].on_rows(port, rows, &mut ctx)?,
                Event::Cols(batch) => self.nodes[node].on_cols(port, batch, &mut ctx)?,
                Event::Punct(p) => self.nodes[node].on_punct(port, p, &mut ctx)?,
            }
            if let (Some(t0), Some(tr)) = (t0, self.trace.as_mut()) {
                let s = &mut tr[node];
                s.batches += 1;
                s.rows_in += rows_in;
                s.lane_hits += lane as u64;
                s.wall_ns += t0.elapsed().as_nanos() as u64;
                s.queue_depth = s.queue_depth.max(qdepth);
            }
            for (p, ev) in ctx.drain_output() {
                if traced {
                    if let Some(tr) = self.trace.as_mut() {
                        tr[node].rows_out += event_rows(&ev);
                    }
                }
                enqueue(
                    self.distributed,
                    &self.network,
                    &self.edges,
                    &mut self.queue,
                    outbox,
                    node,
                    p,
                    ev,
                );
            }
        }
        Ok(())
    }

    /// Whether there is any queued work.
    pub fn has_work(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Node ids of all fixpoint operators.
    pub fn fixpoint_ids(&mut self) -> Vec<NodeId> {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].as_fixpoint().is_some()).collect()
    }

    /// Access a fixpoint operator by node id.
    pub fn with_fixpoint<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut FixpointOp) -> R,
    ) -> Result<R> {
        let fp = self.nodes[id]
            .as_fixpoint()
            .ok_or_else(|| RexError::Exec(format!("node {id} is not a fixpoint")))?;
        Ok(f(fp))
    }

    /// Drive a fixpoint's advance (continue/finish), queueing its output.
    pub fn advance_fixpoint(
        &mut self,
        id: NodeId,
        cont: bool,
        reg: &Registry,
        cost: &CostModel,
        outbox: &mut Vec<NetEmission>,
    ) -> Result<()> {
        let traced = self.trace.is_some();
        let mut ctx = OpCtx::new(self.stratum, self.worker, reg, cost, &mut self.metrics);
        let fp = self.nodes[id]
            .as_fixpoint()
            .ok_or_else(|| RexError::Exec(format!("node {id} is not a fixpoint")))?;
        let t0 = traced.then(Instant::now);
        fp.advance(cont, &mut ctx)?;
        if let (Some(t0), Some(tr)) = (t0, self.trace.as_mut()) {
            tr[id].batches += 1;
            tr[id].wall_ns += t0.elapsed().as_nanos() as u64;
        }
        for (port, event) in ctx.drain_output() {
            if traced {
                if let Some(tr) = self.trace.as_mut() {
                    tr[id].rows_out += event_rows(&event);
                }
            }
            enqueue(
                self.distributed,
                &self.network,
                &self.edges,
                &mut self.queue,
                outbox,
                id,
                port,
                event,
            );
        }
        Ok(())
    }

    /// Collect results from the first sink node (cloning; the sink keeps
    /// its state).
    pub fn sink_results(&mut self) -> Result<Vec<Tuple>> {
        for n in &mut self.nodes {
            if let Some(s) = n.as_sink() {
                return Ok(s.results());
            }
        }
        Err(RexError::Exec("plan has no sink".into()))
    }

    /// Drain results out of the first sink node — the end-of-query path,
    /// which avoids cloning the whole result set just to throw the sink's
    /// copy away.
    pub fn take_sink_results(&mut self) -> Result<Vec<Tuple>> {
        for n in &mut self.nodes {
            if let Some(s) = n.as_sink() {
                return Ok(s.take_results());
            }
        }
        Err(RexError::Exec("plan has no sink".into()))
    }

    /// Checkpoint a node's recoverable state.
    pub fn checkpoint_node(&self, id: NodeId) -> Option<crate::operators::OperatorState> {
        self.nodes[id].checkpoint()
    }

    /// Restore a node's state from a checkpoint and queue its replay.
    pub fn restore_fixpoint(
        &mut self,
        id: NodeId,
        state: crate::operators::OperatorState,
        stratum: u64,
    ) -> Result<()> {
        self.with_fixpoint(id, |fp| fp.restore_and_resume(state, stratum))
    }

    /// Reset every operator (restart recovery).
    pub fn reset(&mut self) {
        for n in &mut self.nodes {
            n.reset();
        }
        self.queue.clear();
        self.stratum = 0;
    }
}

/// Queue an event for every `(dst, port)` edge, moving the event into the
/// last destination and cloning only for fan-out beyond the first.
fn fan_out(queue: &mut VecDeque<(NodeId, usize, Event)>, dsts: &[(NodeId, usize)], event: Event) {
    match dsts {
        [] => {} // dangling port: event is dropped
        [(dst, dport)] => queue.push_back((*dst, *dport, event)),
        [rest @ .., (last, lport)] => {
            for &(dst, dport) in rest {
                queue.push_back((dst, dport, event.clone()));
            }
            queue.push_back((*last, *lport, event));
        }
    }
}

/// Route one produced event: to the outbox when it leaves a network
/// boundary of a distributed executor, downstream otherwise. A free
/// function over the executor's fields so [`Executor::drain`] can call it
/// while its long-lived [`OpCtx`] still borrows the metrics.
#[allow(clippy::too_many_arguments)]
fn enqueue(
    distributed: bool,
    network: &[Option<NetKey>],
    edges: &[Vec<Vec<(NodeId, usize)>>],
    queue: &mut VecDeque<(NodeId, usize, Event)>,
    outbox: &mut Vec<NetEmission>,
    node: NodeId,
    port: usize,
    event: Event,
) {
    if distributed && network[node].is_some() {
        outbox.push(NetEmission { node, port, event });
    } else {
        fan_out(queue, &edges[node][port], event);
    }
}

/// Hard cap on strata, protecting against diverging recursions.
pub const MAX_STRATA: u64 = 100_000;

/// Single-node query runtime: executes a plan graph to completion,
/// coordinating strata exactly like the cluster requestor does.
pub struct LocalRuntime {
    /// UDF/UDA registry.
    pub reg: Registry,
    /// Cost model for metric accounting.
    pub cost: CostModel,
    /// Collect an [`ExecTrace`] during execution
    /// ([`run_traced`](LocalRuntime::run_traced) returns it).
    pub telemetry: bool,
}

impl Default for LocalRuntime {
    fn default() -> Self {
        LocalRuntime {
            reg: Registry::with_builtins(),
            cost: CostModel::default(),
            telemetry: false,
        }
    }
}

impl LocalRuntime {
    /// A runtime with built-ins registered.
    pub fn new() -> LocalRuntime {
        LocalRuntime::default()
    }

    /// With a custom registry.
    pub fn with_registry(reg: Registry) -> LocalRuntime {
        LocalRuntime { reg, cost: CostModel::default(), telemetry: false }
    }

    /// Enable or disable telemetry collection (builder style).
    pub fn with_telemetry(mut self, on: bool) -> LocalRuntime {
        self.telemetry = on;
        self
    }

    /// Execute the plan, returning materialized results and the execution
    /// report.
    pub fn run(&self, graph: PlanGraph) -> Result<(Vec<Tuple>, QueryReport)> {
        let (rows, report, _) = self.run_traced(graph)?;
        Ok((rows, report))
    }

    /// Execute thread-parallel plan copies, one per OS thread, and merge
    /// their results deterministically.
    ///
    /// Every graph in `graphs` is one thread's copy of the same lowered
    /// plan: either morsel mode (sibling scans share an atomic cursor over
    /// one snapshot) or shard mode (shard gates keep each thread's keyed
    /// state disjoint). Both constructions make the union of the threads'
    /// sink outputs exactly the single-threaded bag of results, so the
    /// merge is concatenation plus one final
    /// [`sort_rows`](crate::tuple::sort_rows) — bit-identical to a
    /// single-threaded run, which sorts at the same boundary.
    ///
    /// Only non-recursive plans are supported (parallel lowering rejects
    /// fixpoints); a graph containing a fixpoint is an error.
    pub fn run_partitioned(
        &self,
        graphs: Vec<PlanGraph>,
    ) -> Result<(Vec<Tuple>, QueryReport, Option<ExecTrace>)> {
        if graphs.len() <= 1 {
            let g = graphs
                .into_iter()
                .next()
                .ok_or_else(|| RexError::Exec("run_partitioned: no plan".into()))?;
            return self.run_traced(g);
        }
        let t0 = Instant::now();
        type WorkerOutcome = Result<(Vec<Tuple>, ExecMetrics, Option<ExecTrace>)>;
        let outcomes: Vec<WorkerOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = graphs
                .into_iter()
                .enumerate()
                .map(|(tid, g)| {
                    let reg = &self.reg;
                    let cost = &self.cost;
                    let telemetry = self.telemetry;
                    s.spawn(move || {
                        let mut ex = Executor::new(g, tid, false);
                        if !ex.fixpoint_ids().is_empty() {
                            return Err(RexError::Exec(
                                "run_partitioned cannot execute fixpoints".into(),
                            ));
                        }
                        ex.set_telemetry(telemetry);
                        let mut outbox = Vec::new(); // never used locally
                        ex.start(reg, cost)?;
                        ex.drain(reg, cost, &mut outbox)?;
                        let rows = ex.take_sink_results()?;
                        let trace = ex.take_trace();
                        Ok((rows, ex.metrics, trace))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("executor thread panicked")).collect()
        });
        let mut rows = Vec::new();
        let mut metrics = ExecMetrics::default();
        let mut trace: Option<ExecTrace> = None;
        for outcome in outcomes {
            let (mut part, m, tr) = outcome?;
            rows.append(&mut part);
            metrics.merge(&m);
            match (trace.as_mut(), tr) {
                (Some(mine), Some(theirs)) => mine.merge(&theirs),
                (None, Some(theirs)) => trace = Some(theirs),
                _ => {}
            }
        }
        crate::tuple::sort_rows(&mut rows);
        let wall = t0.elapsed().as_secs_f64();
        let mut report = QueryReport::default();
        report.strata.push(StratumReport {
            stratum: 0,
            delta_set_size: metrics.deltas_emitted,
            simulated_time: metrics.simulated_time(&self.cost),
            wall_seconds: wall,
            bytes_shipped: metrics.bytes_sent,
            metrics,
        });
        report.totals = metrics;
        report.simulated_time = metrics.simulated_time(&self.cost);
        report.wall_seconds = wall;
        if let Some(tr) = trace.as_mut() {
            tr.wall_seconds = wall;
        }
        Ok((rows, report, trace))
    }

    /// [`run`](LocalRuntime::run), additionally returning the collected
    /// [`ExecTrace`] when [`telemetry`](LocalRuntime::telemetry) is on.
    pub fn run_traced(
        &self,
        graph: PlanGraph,
    ) -> Result<(Vec<Tuple>, QueryReport, Option<ExecTrace>)> {
        let mut ex = Executor::new(graph, 0, false);
        ex.set_telemetry(self.telemetry);
        let mut report = QueryReport::default();
        let t0 = Instant::now();
        let mut outbox = Vec::new(); // never used in local mode

        let mut prev_metrics = ExecMetrics::default();
        let mut stratum_start = Instant::now();

        ex.start(&self.reg, &self.cost)?;
        ex.drain(&self.reg, &self.cost, &mut outbox)?;

        let fixpoints = ex.fixpoint_ids();
        if fixpoints.is_empty() {
            // Non-recursive query: one pass to quiescence.
            let wall = t0.elapsed().as_secs_f64();
            let m = ex.metrics;
            report.strata.push(StratumReport {
                stratum: 0,
                delta_set_size: m.deltas_emitted,
                simulated_time: m.simulated_time(&self.cost),
                wall_seconds: wall,
                bytes_shipped: m.bytes_sent,
                metrics: m,
            });
            report.totals = m;
            report.simulated_time = m.simulated_time(&self.cost);
            report.wall_seconds = wall;
            let mut trace = ex.take_trace();
            if let Some(tr) = trace.as_mut() {
                tr.wall_seconds = wall;
            }
            return Ok((ex.take_sink_results()?, report, trace));
        }

        // Recursive query: stratum loop.
        let mut completed = 0u64;
        loop {
            // All fixpoints must be ready for a vote; otherwise the plan is
            // miswired (recursive edge missing).
            let mut total_pending = 0usize;
            let mut any_continue = false;
            for &id in &fixpoints {
                let (ready, pending, stratum, term) = ex.with_fixpoint(id, |fp| {
                    (fp.ready_for_vote(), fp.pending_count(), fp.stratum(), fp.termination())
                })?;
                if !ready {
                    return Err(RexError::Exec(format!(
                        "fixpoint node {id} never punctuated stratum {completed}: \
                         is the recursive edge connected?"
                    )));
                }
                total_pending += pending;
                if term.wants_continue(pending, stratum) {
                    any_continue = true;
                }
            }
            // Re-evaluate with the *summed* pending count (the requestor's
            // global view): a fixpoint whose local Δ is empty continues if
            // any other partition produced deltas.
            if !any_continue {
                for &id in &fixpoints {
                    let (stratum, term) =
                        ex.with_fixpoint(id, |fp| (fp.stratum(), fp.termination()))?;
                    if term.wants_continue(total_pending, stratum) {
                        any_continue = true;
                    }
                }
            }

            // Record the completed stratum.
            let mut m = ex.metrics;
            let snap = m;
            m.tuples_processed -= prev_metrics.tuples_processed;
            m.deltas_emitted -= prev_metrics.deltas_emitted;
            m.udf_calls -= prev_metrics.udf_calls;
            m.cpu_units -= prev_metrics.cpu_units;
            m.bytes_sent -= prev_metrics.bytes_sent;
            m.bytes_received -= prev_metrics.bytes_received;
            m.disk_read -= prev_metrics.disk_read;
            m.disk_written -= prev_metrics.disk_written;
            m.punctuations -= prev_metrics.punctuations;
            prev_metrics = snap;
            report.strata.push(StratumReport {
                stratum: completed,
                delta_set_size: total_pending as u64,
                simulated_time: m.simulated_time(&self.cost),
                wall_seconds: stratum_start.elapsed().as_secs_f64(),
                bytes_shipped: m.bytes_sent,
                metrics: m,
            });
            stratum_start = Instant::now();

            for &id in &fixpoints {
                ex.advance_fixpoint(id, any_continue, &self.reg, &self.cost, &mut outbox)?;
            }
            ex.set_stratum(completed + 1);
            ex.drain(&self.reg, &self.cost, &mut outbox)?;
            if !any_continue {
                break;
            }
            completed += 1;
            if completed > MAX_STRATA {
                return Err(RexError::Exec(format!(
                    "recursion exceeded {MAX_STRATA} strata without converging"
                )));
            }
        }

        report.totals = ex.metrics;
        report.simulated_time = report.strata.iter().map(|s| s.simulated_time).sum();
        report.wall_seconds = t0.elapsed().as_secs_f64();
        let mut trace = ex.take_trace();
        if let Some(tr) = trace.as_mut() {
            tr.iteration_deltas = report.strata.iter().map(|s| s.delta_set_size).collect();
            tr.wall_seconds = report.wall_seconds;
        }
        Ok((ex.take_sink_results()?, report, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregates::SumAgg;
    use crate::delta::Delta;
    use crate::expr::Expr;
    use crate::operators::{
        AggSpec, ApplyFunctionOp, FilterOp, FnMapper, GroupByOp, ScanOp, SinkOp, Termination,
    };
    use crate::tuple;
    use crate::value::Value;
    use std::sync::Arc;

    #[test]
    fn non_recursive_pipeline_runs_to_completion() {
        // scan -> filter(x > 2) -> sink
        let mut g = PlanGraph::new();
        let scan =
            g.add(Box::new(ScanOp::new("t", vec![tuple![1i64], tuple![3i64], tuple![5i64]])));
        let filter = g.add(Box::new(FilterOp::new(Expr::col(0).gt(Expr::lit(2i64)))));
        let sink = g.add(Box::new(SinkOp::new()));
        g.pipe(scan, filter);
        g.pipe(filter, sink);

        let rt = LocalRuntime::new();
        let (results, report) = rt.run(g).unwrap();
        assert_eq!(results, vec![tuple![3i64], tuple![5i64]]);
        assert_eq!(report.iterations(), 1);
        assert!(report.totals.tuples_processed > 0);
    }

    #[test]
    fn aggregation_pipeline() {
        // scan -> group_by(sum) -> sink
        let mut g = PlanGraph::new();
        let scan = g.add(Box::new(ScanOp::new(
            "t",
            vec![tuple![1i64, 10.0f64], tuple![1i64, 5.0f64], tuple![2i64, 7.0f64]],
        )));
        let gb =
            g.add(Box::new(GroupByOp::new(vec![0], vec![AggSpec::new(Arc::new(SumAgg), vec![1])])));
        let sink = g.add(Box::new(SinkOp::new()));
        g.pipe(scan, gb);
        g.pipe(gb, sink);

        let rt = LocalRuntime::new();
        let (results, _) = rt.run(g).unwrap();
        assert_eq!(results, vec![tuple![1i64, 15.0f64], tuple![2i64, 7.0f64]]);
    }

    /// Transitive-closure-style recursion: start at 0, add 1 each stratum,
    /// stop at 5 via the recursive step's filter.
    #[test]
    fn recursive_counting_reaches_fixpoint() {
        let mut g = PlanGraph::new();
        let scan = g.add(Box::new(ScanOp::new("seed", vec![tuple![0i64]])));
        let fp = g.add(Box::new(FixpointOp::new(vec![0], Termination::Fixpoint)));
        // Recursive step: x -> x+1 if x < 5
        let step = g.add(Box::new(ApplyFunctionOp::new(Arc::new(FnMapper::new("inc", |d, _| {
            let x = d.tuple.get(0).as_int().unwrap();
            if x < 5 {
                Ok(vec![Delta::insert(tuple![x + 1])])
            } else {
                Ok(vec![])
            }
        })))));
        let sink = g.add(Box::new(SinkOp::new()));
        g.connect(scan, 0, fp, 0); // base case
        g.connect(fp, 0, step, 0); // feedback
        g.connect(step, 0, fp, 1); // recursive result
        g.connect(fp, 1, sink, 0); // final output

        let rt = LocalRuntime::new();
        let (results, report) = rt.run(g).unwrap();
        let expected: Vec<_> = (0..=5i64).map(|i| tuple![i]).collect();
        assert_eq!(results, expected);
        // 6 strata produced new tuples + 1 empty closing stratum.
        assert!(report.iterations() >= 6, "got {}", report.iterations());
        // Δ set sizes shrink to zero.
        assert_eq!(report.strata.last().unwrap().delta_set_size, 0);
    }

    #[test]
    fn exact_strata_termination_runs_fixed_iterations() {
        let mut g = PlanGraph::new();
        let scan = g.add(Box::new(ScanOp::new("seed", vec![tuple![0i64]])));
        let fp = g.add(Box::new(FixpointOp::new(vec![0], Termination::ExactStrata(4)).no_delta()));
        let step = g
            .add(Box::new(ApplyFunctionOp::new(Arc::new(FnMapper::new("same", |d, _| {
                Ok(vec![Delta::insert(d.tuple.clone())])
            })))));
        let sink = g.add(Box::new(SinkOp::new()));
        g.connect(scan, 0, fp, 0);
        g.connect(fp, 0, step, 0);
        g.connect(step, 0, fp, 1);
        g.connect(fp, 1, sink, 0);

        let rt = LocalRuntime::new();
        let (results, report) = rt.run(g).unwrap();
        assert_eq!(results, vec![tuple![0i64]]);
        assert_eq!(report.iterations(), 4);
    }

    #[test]
    fn miswired_recursion_is_reported() {
        let mut g = PlanGraph::new();
        let scan = g.add(Box::new(ScanOp::new("seed", vec![tuple![0i64]])));
        let fp = g.add(Box::new(FixpointOp::new(vec![0], Termination::Fixpoint)));
        let sink = g.add(Box::new(SinkOp::new()));
        g.connect(scan, 0, fp, 0);
        // Feedback edge goes nowhere and no recursive edge returns: the
        // fixpoint can never become ready.
        g.connect(fp, 1, sink, 0);

        let rt = LocalRuntime::new();
        let err = rt.run(g).unwrap_err();
        assert!(matches!(err, RexError::Exec(_)));
    }

    #[test]
    fn explain_renders_topology() {
        let mut g = PlanGraph::new();
        let scan = g.add(Box::new(ScanOp::new("t", vec![])));
        let rh = g.add_rehash(vec![0]);
        let sink = g.add(Box::new(SinkOp::new()));
        g.pipe(scan, rh);
        g.pipe(rh, sink);
        let txt = g.explain();
        assert!(txt.contains("Scan(t)"));
        assert!(txt.contains("[network]"));
        assert!(txt.contains("out0 -> #2.in0"));
    }

    #[test]
    fn traced_run_counts_operator_rows() {
        let mk = || {
            let mut g = PlanGraph::new();
            let scan =
                g.add(Box::new(ScanOp::new("t", vec![tuple![1i64], tuple![3i64], tuple![5i64]])));
            let filter = g.add(Box::new(FilterOp::new(Expr::col(0).gt(Expr::lit(2i64)))));
            let sink = g.add(Box::new(SinkOp::new()));
            g.pipe(scan, filter);
            g.pipe(filter, sink);
            g
        };
        let rt = LocalRuntime::new().with_telemetry(true);
        let (results, _report, trace) = rt.run_traced(mk()).unwrap();
        let trace = trace.expect("telemetry on");
        assert_eq!(results.len(), 2);
        assert_eq!(trace.ops[0].rows_out, 3, "scan emits every row");
        assert_eq!(trace.ops[1].rows_in, 3);
        assert_eq!(trace.ops[1].rows_out, 2, "filter retains 2 of 3");
        assert_eq!(trace.sink_rows(), results.len() as u64);
        assert!(trace.render().contains("Filter"));
        // Telemetry off: same rows, no trace.
        let (plain, _, no_trace) = LocalRuntime::new().run_traced(mk()).unwrap();
        assert_eq!(plain, results);
        assert!(no_trace.is_none());
    }

    #[test]
    fn traced_recursion_records_iteration_deltas() {
        let mut g = PlanGraph::new();
        let scan = g.add(Box::new(ScanOp::new("seed", vec![tuple![0i64]])));
        let fp = g.add(Box::new(FixpointOp::new(vec![0], Termination::Fixpoint)));
        let step = g.add(Box::new(ApplyFunctionOp::new(Arc::new(FnMapper::new("inc", |d, _| {
            let x = d.tuple.get(0).as_int().unwrap();
            if x < 5 {
                Ok(vec![Delta::insert(tuple![x + 1])])
            } else {
                Ok(vec![])
            }
        })))));
        let sink = g.add(Box::new(SinkOp::new()));
        g.connect(scan, 0, fp, 0);
        g.connect(fp, 0, step, 0);
        g.connect(step, 0, fp, 1);
        g.connect(fp, 1, sink, 0);

        let rt = LocalRuntime::new().with_telemetry(true);
        let (_, report, trace) = rt.run_traced(g).unwrap();
        let trace = trace.expect("telemetry on");
        assert_eq!(trace.iteration_deltas.len(), report.iterations());
        let from_report: Vec<u64> = report.strata.iter().map(|s| s.delta_set_size).collect();
        assert_eq!(trace.iteration_deltas, from_report);
        assert_eq!(*trace.iteration_deltas.last().unwrap(), 0, "closing stratum is empty");
    }

    #[test]
    fn update_annotation_via_apply_function_reaches_sink() {
        let mut g = PlanGraph::new();
        let scan = g.add(Box::new(ScanOp::new("t", vec![tuple![1i64]])));
        let to_update = g
            .add(Box::new(ApplyFunctionOp::new(Arc::new(FnMapper::new("tag", |d, _| {
                Ok(vec![Delta::update(d.tuple.clone(), Value::Int(42))])
            })))));
        let sink = g.add(Box::new(SinkOp::new()));
        g.pipe(scan, to_update);
        g.pipe(to_update, sink);
        let rt = LocalRuntime::new();
        let (results, _) = rt.run(g).unwrap();
        assert_eq!(results, vec![tuple![1i64]]);
    }
}
