//! Delta handlers — the four forms of user-defined state-update code (§3.3):
//!
//! * `AGGSTATE(state, delta) -> deltas` and `AGGRESULT(state) -> deltas`
//!   for group-by aggregates ([`AggHandler`]);
//! * `UPDATE(leftBucket, rightBucket, delta) -> deltas` for joins
//!   ([`JoinHandler`]);
//! * `UPDATE(whileRelation, delta) -> deltas` for while/fixpoint operators
//!   ([`WhileHandler`]).
//!
//! "If such a delta handler is not provided, REX will propagate the
//! annotation as if it were another (hidden) attribute of the tuple, with no
//! special semantics" — the operators implement exactly that fallback.

use crate::delta::Delta;
use crate::error::Result;
use crate::tuple::Tuple;
use crate::value::{DataType, Value};
use std::fmt;

/// A mutable bag of tuples — the paper's `TUPLESET`, used for join buckets
/// and while-relations. Provides both bag semantics (insert/remove) and the
/// keyed get/put convenience the paper's handler examples use
/// (`prBucket.get(nbrId)` / `prBucket.put(nbrId, pr)`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TupleSet {
    tuples: Vec<Tuple>,
}

impl TupleSet {
    /// An empty set.
    pub fn new() -> TupleSet {
        TupleSet::default()
    }

    /// Build from tuples.
    pub fn from_tuples(tuples: Vec<Tuple>) -> TupleSet {
        TupleSet { tuples }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterate over tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Append a tuple (bag semantics: duplicates allowed).
    pub fn insert(&mut self, t: Tuple) {
        self.tuples.push(t);
    }

    /// Remove one occurrence of `t`; returns whether anything was removed.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        if let Some(pos) = self.tuples.iter().position(|x| x == t) {
            self.tuples.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Replace one occurrence of `old` with `new`; returns whether a
    /// replacement happened (otherwise `new` is inserted — upsert semantics,
    /// matching the view-maintenance treatment of replacements as
    /// delete+insert).
    pub fn replace(&mut self, old: &Tuple, new: Tuple) -> bool {
        if let Some(pos) = self.tuples.iter().position(|x| x == old) {
            self.tuples[pos] = new;
            true
        } else {
            self.tuples.push(new);
            false
        }
    }

    /// Keyed lookup: find the first tuple whose column `key_col` equals
    /// `key` (the paper's `bucket.get(id)` idiom).
    pub fn get_by_key(&self, key_col: usize, key: &Value) -> Option<&Tuple> {
        self.tuples.iter().find(|t| t.get(key_col) == key)
    }

    /// Keyed upsert: replace the tuple whose `key_col` equals the new
    /// tuple's, or insert (the paper's `bucket.put(id, v)` idiom). Returns
    /// the previous tuple if one was replaced.
    pub fn put_by_key(&mut self, key_col: usize, t: Tuple) -> Option<Tuple> {
        let key = t.get(key_col).clone();
        if let Some(pos) = self.tuples.iter().position(|x| x.get(key_col) == &key) {
            Some(std::mem::replace(&mut self.tuples[pos], t))
        } else {
            self.tuples.push(t);
            None
        }
    }

    /// Remove all tuples.
    pub fn clear(&mut self) {
        self.tuples.clear();
    }

    /// Consume into the underlying vector.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    /// Snapshot the tuples (used by checkpointing).
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Approximate memory/wire size in bytes.
    pub fn byte_size(&self) -> usize {
        self.tuples.iter().map(Tuple::byte_size).sum()
    }
}

impl FromIterator<Tuple> for TupleSet {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> TupleSet {
        TupleSet { tuples: iter.into_iter().collect() }
    }
}

/// Per-group aggregate intermediate state.
///
/// The paper leaves state representation to the UDA ("some aggregate
/// function-specific form of intermediate state"); we provide a small closed
/// set of clonable shapes so that state can be checkpointed and replicated
/// for incremental recovery (§4.3). Custom handlers needing richer state can
/// encode it in `Value::List` via the [`AggState::Value`] arm.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    /// No input seen yet.
    Empty,
    /// A single integer (count).
    Int(i64),
    /// A single double (delta-sum).
    Double(f64),
    /// Sum and count (sum / avg and their pre-aggregates).
    SumCount(f64, i64),
    /// A buffered multiset of values (min/max need it to survive deletions).
    Bag(Vec<Value>),
    /// A bag of tuples (table-valued UDAs).
    Tuples(TupleSet),
    /// An arbitrary encoded value for custom UDAs.
    Value(Value),
}

impl AggState {
    /// Approximate in-memory size, used to account checkpoint volume.
    pub fn byte_size(&self) -> usize {
        match self {
            AggState::Empty => 1,
            AggState::Int(_) => 8,
            AggState::Double(_) => 8,
            AggState::SumCount(_, _) => 16,
            AggState::Bag(b) => b.iter().map(Value::byte_size).sum(),
            AggState::Tuples(t) => t.byte_size(),
            AggState::Value(v) => v.byte_size(),
        }
    }
}

/// How a group-by operator should render a handler's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOutputKind {
    /// The aggregate yields one scalar per group; group-by composes
    /// `key ++ value` output tuples and generates insert/replace deltas.
    Scalar,
    /// The aggregate emits arbitrary delta tuples itself (table-valued
    /// UDAs); group-by forwards them verbatim.
    TableValued,
}

/// Group-by aggregate handler: the AGGSTATE/AGGRESULT pair of §3.3 plus the
/// metadata the optimizer needs (composability, pre-aggregation, multiply
/// compensation — §5.2).
pub trait AggHandler: Send + Sync {
    /// Registered name.
    fn name(&self) -> &str;

    /// Fresh per-group state ("a default object if the key does not exist").
    fn init(&self) -> AggState;

    /// AGGSTATE: revise `state` according to the delta; may return
    /// intermediate deltas for streamed partial aggregation (usually empty).
    fn agg_state(&self, state: &mut AggState, d: &Delta) -> Result<Vec<Delta>>;

    /// Batched-rows fast path: fold one *inserted* row into `state`,
    /// reading the aggregate's input columns `cols` from `t` in place —
    /// no delta wrapper, no projected tuple, no allocation. Must behave
    /// exactly like `agg_state(state, &Delta::insert(project(t, cols)))`
    /// returning no intermediate deltas. Returns `Ok(false)` when the
    /// handler has no fast path; the caller then takes the general delta
    /// path (the default for custom UDAs and table-valued aggregates).
    fn fold_insert(&self, state: &mut AggState, t: &Tuple, cols: &[usize]) -> Result<bool> {
        let _ = (state, t, cols);
        Ok(false)
    }

    /// AGGRESULT: the current result(s) for a group, called at stratum end.
    /// For scalar aggregates this returns a single 1-ary tuple delta holding
    /// the aggregate value; for table-valued UDAs it may return anything.
    fn agg_result(&self, state: &AggState) -> Result<Vec<Delta>>;

    /// How group-by should interpret `agg_result` output.
    fn output_kind(&self) -> AggOutputKind {
        AggOutputKind::Scalar
    }

    /// Result type of the aggregate (scalar aggregates).
    fn return_type(&self) -> DataType {
        DataType::Double
    }

    /// Composable UDAs are "computable in parts, which can be unioned
    /// together and a final aggregation can be applied (e.g., sum and
    /// average but not median)" (§5.2).
    fn composable(&self) -> bool {
        false
    }

    /// The pre-aggregate handler, when one exists; the optimizer pushes it
    /// below rehash/join boundaries (§5.2).
    fn pre_aggregate(&self) -> Option<String> {
        None
    }

    /// Optional multiply compensation for pre-aggregation on both sides of a
    /// non-key join: scales a partial state by the cardinality of the
    /// opposite join group (§5.2 "Composability and multiplicative joins").
    fn multiply(&self, state: &AggState, cardinality: i64) -> Option<AggState> {
        let _ = (state, cardinality);
        None
    }

    /// Whether this is an engine built-in. Built-ins dispatch directly;
    /// user-defined aggregators pay the (batch-amortized) reflection-style
    /// call overhead that Figure 4 measures.
    fn is_builtin(&self) -> bool {
        false
    }
}

impl fmt::Debug for dyn AggHandler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AggHandler({})", self.name())
    }
}

/// Join delta handler (§3.3): "called by a join operator with the
/// corresponding joining tuple buckets. It can modify the buckets according
/// to the input delta, and generate resulting delta tuples."
///
/// `from_left` tells the handler which input the delta arrived on; the
/// buckets passed are those matching the delta's join key.
pub trait JoinHandler: Send + Sync {
    /// Registered name.
    fn name(&self) -> &str;

    /// Process a delta against the two buckets for its join key.
    fn update(
        &self,
        left_bucket: &mut TupleSet,
        right_bucket: &mut TupleSet,
        d: &Delta,
        from_left: bool,
    ) -> Result<Vec<Delta>>;
}

/// While/fixpoint delta handler (§3.3): "called by a while operator and
/// returns a new set of tuples, possibly the empty set."
pub trait WhileHandler: Send + Sync {
    /// Registered name.
    fn name(&self) -> &str;

    /// Process a delta against the while-relation state.
    fn update(&self, relation: &mut TupleSet, d: &Delta) -> Result<Vec<Delta>>;
}

/// Adapter that swaps a join handler's inputs: `FlippedJoin(h)` behaves
/// like `h` with left and right exchanged. Useful when a query's FROM
/// order puts the handler's "mutable" relation on the opposite side from
/// the handler's convention (e.g. Listing 1 writes `FROM graph, PR` while
/// `PRAgg` treats the PageRank bucket as its left state).
pub struct FlippedJoin(pub std::sync::Arc<dyn JoinHandler>);

impl JoinHandler for FlippedJoin {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn update(
        &self,
        left_bucket: &mut TupleSet,
        right_bucket: &mut TupleSet,
        d: &Delta,
        from_left: bool,
    ) -> Result<Vec<Delta>> {
        self.0.update(right_bucket, left_bucket, d, !from_left)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn tupleset_bag_semantics() {
        let mut s = TupleSet::new();
        s.insert(tuple![1i64]);
        s.insert(tuple![1i64]);
        assert_eq!(s.len(), 2);
        assert!(s.remove(&tuple![1i64]));
        assert_eq!(s.len(), 1);
        assert!(!s.remove(&tuple![2i64]));
    }

    #[test]
    fn tupleset_keyed_access() {
        let mut s = TupleSet::new();
        s.put_by_key(0, tuple![1i64, 0.5f64]);
        s.put_by_key(0, tuple![2i64, 0.7f64]);
        // Upsert on key 1.
        let prev = s.put_by_key(0, tuple![1i64, 0.9f64]);
        assert_eq!(prev, Some(tuple![1i64, 0.5f64]));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get_by_key(0, &Value::Int(1)).unwrap().get(1), &Value::Double(0.9));
        assert!(s.get_by_key(0, &Value::Int(9)).is_none());
    }

    #[test]
    fn tupleset_replace_upserts_when_missing() {
        let mut s = TupleSet::new();
        assert!(!s.replace(&tuple![1i64], tuple![2i64]));
        assert_eq!(s.len(), 1);
        assert!(s.replace(&tuple![2i64], tuple![3i64]));
        assert_eq!(s.len(), 1);
        assert_eq!(s.tuples()[0], tuple![3i64]);
    }

    #[test]
    fn aggstate_byte_sizes() {
        assert_eq!(AggState::Empty.byte_size(), 1);
        assert_eq!(AggState::SumCount(1.0, 2).byte_size(), 16);
        let bag = AggState::Bag(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(bag.byte_size(), 16);
    }

    #[test]
    fn tupleset_from_iterator_and_byte_size() {
        let s: TupleSet = vec![tuple![1i64], tuple![2i64]].into_iter().collect();
        assert_eq!(s.len(), 2);
        assert_eq!(s.byte_size(), 2 * (2 + 8));
    }
}
