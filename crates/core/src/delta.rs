//! Deltas: annotated tuples, the unit of dataflow in REX.
//!
//! Definition 1 of the paper: a delta is a pair `(α, t)` where `t` is a tuple
//! and `α` is one of:
//!
//! * `+()`       — insert `t` into operator state ([`Annotation::Insert`])
//! * `-()`       — delete `t` from operator state ([`Annotation::Delete`])
//! * `→(t')`     — `t` replaces existing tuple `t'` ([`Annotation::Replace`])
//! * `δ(E)`      — an arbitrary expression payload `E` interpreted by
//!   downstream stateful operators via user delta handlers
//!   ([`Annotation::Update`])
//!
//! Stateless operators propagate annotations untouched (the annotation
//! behaves like a hidden attribute); stateful operators apply the standard
//! view-maintenance rules of Gupta/Mumick/Subrahmanian for the first three
//! forms and dispatch `Update` to user code.

use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;

/// The operation part of a delta (Definition 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Annotation {
    /// `+()`: insert the tuple.
    Insert,
    /// `-()`: delete the tuple (if it exists).
    Delete,
    /// `→(t')`: the tuple replaces `t'`.
    Replace(Tuple),
    /// `δ(E)`: a programmable value-update; the payload is interpreted by a
    /// user delta handler at the next stateful operator.
    Update(Value),
}

impl Annotation {
    /// Whether this annotation requires a user delta handler to interpret.
    pub fn is_programmable(&self) -> bool {
        matches!(self, Annotation::Update(_))
    }

    /// Approximate serialized size of the annotation in bytes.
    pub fn byte_size(&self) -> usize {
        match self {
            Annotation::Insert | Annotation::Delete => 1,
            Annotation::Replace(t) => 1 + t.byte_size(),
            Annotation::Update(v) => 1 + v.byte_size(),
        }
    }
}

impl fmt::Display for Annotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Annotation::Insert => f.write_str("+()"),
            Annotation::Delete => f.write_str("-()"),
            Annotation::Replace(t) => write!(f, "->{t}"),
            Annotation::Update(v) => write!(f, "δ({v})"),
        }
    }
}

/// An annotated tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    /// The operation.
    pub ann: Annotation,
    /// The subject tuple.
    pub tuple: Tuple,
}

impl Delta {
    /// An insertion delta.
    pub fn insert(tuple: Tuple) -> Delta {
        Delta { ann: Annotation::Insert, tuple }
    }

    /// A deletion delta.
    pub fn delete(tuple: Tuple) -> Delta {
        Delta { ann: Annotation::Delete, tuple }
    }

    /// A replacement delta: `new_tuple` replaces `old`.
    pub fn replace(old: Tuple, new_tuple: Tuple) -> Delta {
        Delta { ann: Annotation::Replace(old), tuple: new_tuple }
    }

    /// A programmable value-update delta with payload `expr`.
    pub fn update(tuple: Tuple, expr: Value) -> Delta {
        Delta { ann: Annotation::Update(expr), tuple }
    }

    /// Keep the annotation, substitute the tuple. This is how stateless
    /// operators (filter, project, apply-function) propagate deltas: "any
    /// output tuples receive the same annotation as the input tuple".
    pub fn with_tuple(&self, tuple: Tuple) -> Delta {
        Delta { ann: self.ann.clone(), tuple }
    }

    /// Approximate wire size in bytes (for bandwidth accounting).
    pub fn byte_size(&self) -> usize {
        self.ann.byte_size() + self.tuple.byte_size()
    }

    /// The net multiplicity effect of this delta on a bag: +1 for insert,
    /// -1 for delete, 0 for replace/update (which modify in place).
    pub fn multiplicity(&self) -> i64 {
        match self.ann {
            Annotation::Insert => 1,
            Annotation::Delete => -1,
            Annotation::Replace(_) | Annotation::Update(_) => 0,
        }
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.ann, self.tuple)
    }
}

/// Punctuation markers (Tucker & Maier): special signals interleaved with
/// deltas that announce the end of a stratum or of the whole stream.
///
/// REX uses punctuation to coordinate strata: "at the end of a stratum, all
/// fixpoint operators send the number of processed tuples to the query
/// requestor, which informs the operators whether the query implicit
/// termination condition has been met" (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Punctuation {
    /// The current stratum (0-based) has finished on this edge.
    EndOfStratum(u64),
    /// No more data will ever arrive on this edge.
    EndOfStream,
}

impl Punctuation {
    /// The stratum number, if this is an end-of-stratum marker.
    pub fn stratum(&self) -> Option<u64> {
        match self {
            Punctuation::EndOfStratum(s) => Some(*s),
            Punctuation::EndOfStream => None,
        }
    }
}

impl fmt::Display for Punctuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Punctuation::EndOfStratum(s) => write!(f, "⟨eos:{s}⟩"),
            Punctuation::EndOfStream => f.write_str("⟨eof⟩"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn constructors_set_annotations() {
        let t = tuple![1i64];
        assert_eq!(Delta::insert(t.clone()).ann, Annotation::Insert);
        assert_eq!(Delta::delete(t.clone()).ann, Annotation::Delete);
        let r = Delta::replace(tuple![0i64], t.clone());
        assert!(matches!(r.ann, Annotation::Replace(_)));
        let u = Delta::update(t, Value::Double(0.25));
        assert!(u.ann.is_programmable());
    }

    #[test]
    fn with_tuple_preserves_annotation() {
        let d = Delta::update(tuple![1i64], Value::Int(9));
        let d2 = d.with_tuple(tuple![1i64, 2i64]);
        assert_eq!(d2.ann, d.ann);
        assert_eq!(d2.tuple.arity(), 2);
    }

    #[test]
    fn multiplicity_rules() {
        let t = tuple![1i64];
        assert_eq!(Delta::insert(t.clone()).multiplicity(), 1);
        assert_eq!(Delta::delete(t.clone()).multiplicity(), -1);
        assert_eq!(Delta::replace(t.clone(), t.clone()).multiplicity(), 0);
        assert_eq!(Delta::update(t, Value::Null).multiplicity(), 0);
    }

    #[test]
    fn byte_size_includes_annotation_payload() {
        let t = tuple![1i64]; // 2 + 8 = 10 bytes
        assert_eq!(Delta::insert(t.clone()).byte_size(), 11);
        assert_eq!(Delta::replace(t.clone(), t.clone()).byte_size(), 1 + 10 + 10);
        assert_eq!(Delta::update(t, Value::Double(1.0)).byte_size(), 1 + 8 + 10);
    }

    #[test]
    fn punctuation_stratum_accessor() {
        assert_eq!(Punctuation::EndOfStratum(3).stratum(), Some(3));
        assert_eq!(Punctuation::EndOfStream.stratum(), None);
    }

    #[test]
    fn display_formats() {
        let d = Delta::insert(tuple![1i64]);
        assert_eq!(d.to_string(), "+() (1)");
        assert_eq!(Punctuation::EndOfStream.to_string(), "⟨eof⟩");
    }
}
