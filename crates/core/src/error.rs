//! Error types shared across the REX engine.

use std::fmt;

/// The unified error type for REX engine operations.
///
/// REX distinguishes between errors that indicate a bug in a query or
/// user-defined code (`Type`, `Plan`, `Udf`) and errors that arise from the
/// runtime environment (`Exec`, `Storage`, `Network`). The cluster runtime
/// additionally reports `NodeFailed` when a worker is lost mid-query, which
/// triggers the recovery machinery rather than aborting the query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RexError {
    /// A type mismatch detected during planning or evaluation.
    Type(String),
    /// A malformed or internally-inconsistent query plan.
    Plan(String),
    /// User-defined code (UDF / UDA / delta handler) reported an error.
    Udf(String),
    /// A runtime execution error.
    Exec(String),
    /// A storage-layer error (missing table, bad partition, ...).
    Storage(String),
    /// A simulated network-layer error.
    Network(String),
    /// A worker node failed; carries the node id.
    NodeFailed(usize),
    /// An RQL parse error with position information.
    Parse { message: String, line: usize, col: usize },
}

impl fmt::Display for RexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RexError::Type(m) => write!(f, "type error: {m}"),
            RexError::Plan(m) => write!(f, "plan error: {m}"),
            RexError::Udf(m) => write!(f, "udf error: {m}"),
            RexError::Exec(m) => write!(f, "execution error: {m}"),
            RexError::Storage(m) => write!(f, "storage error: {m}"),
            RexError::Network(m) => write!(f, "network error: {m}"),
            RexError::NodeFailed(n) => write!(f, "node {n} failed"),
            RexError::Parse { message, line, col } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
        }
    }
}

impl std::error::Error for RexError {}

/// Convenience alias used throughout the engine.
pub type Result<T> = std::result::Result<T, RexError>;

/// Build a [`RexError::Type`] from format arguments.
#[macro_export]
macro_rules! type_err {
    ($($arg:tt)*) => { $crate::error::RexError::Type(format!($($arg)*)) };
}

/// Build a [`RexError::Exec`] from format arguments.
#[macro_export]
macro_rules! exec_err {
    ($($arg:tt)*) => { $crate::error::RexError::Exec(format!($($arg)*)) };
}

/// Build a [`RexError::Plan`] from format arguments.
#[macro_export]
macro_rules! plan_err {
    ($($arg:tt)*) => { $crate::error::RexError::Plan(format!($($arg)*)) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<(RexError, &str)> = vec![
            (RexError::Type("t".into()), "type error: t"),
            (RexError::Plan("p".into()), "plan error: p"),
            (RexError::Udf("u".into()), "udf error: u"),
            (RexError::Exec("e".into()), "execution error: e"),
            (RexError::Storage("s".into()), "storage error: s"),
            (RexError::Network("n".into()), "network error: n"),
            (RexError::NodeFailed(3), "node 3 failed"),
        ];
        for (e, s) in cases {
            assert_eq!(e.to_string(), s);
        }
    }

    #[test]
    fn parse_error_displays_position() {
        let e = RexError::Parse { message: "unexpected token".into(), line: 4, col: 7 };
        assert_eq!(e.to_string(), "parse error at 4:7: unexpected token");
    }

    #[test]
    fn macros_build_expected_variants() {
        let t = type_err!("bad {}", 1);
        assert!(matches!(t, RexError::Type(ref m) if m == "bad 1"));
        let e = exec_err!("oops");
        assert!(matches!(e, RexError::Exec(_)));
        let p = plan_err!("plan {}", "x");
        assert!(matches!(p, RexError::Plan(ref m) if m == "plan x"));
    }
}
