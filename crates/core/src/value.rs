//! Runtime values and the RQL type system.
//!
//! REX internally represents data as dynamically-typed [`Value`]s, mirroring
//! the paper's use of Java objects and scalar types (§3.3: "the base
//! datatypes map cleanly to Java types"). Collection-valued attributes —
//! which the paper calls out as missing from SQL-99 but essential for
//! user-defined aggregations — are supported via [`Value::List`].

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The static type of an RQL expression or column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer (covers the paper's `Integer`/`Long`).
    Int,
    /// 64-bit IEEE float (the paper's `Double`).
    Double,
    /// UTF-8 string.
    Str,
    /// Collection-valued attribute.
    List,
    /// Unknown/any; used for `Update` payloads interpreted by handlers.
    Any,
    /// The SQL NULL type, compatible with everything.
    Null,
}

impl DataType {
    /// Whether a value of type `self` can be used where `other` is expected.
    pub fn coercible_to(self, other: DataType) -> bool {
        use DataType::*;
        matches!(
            (self, other),
            (a, b) if a == b
        ) || matches!((self, other), (Null, _) | (_, Any) | (Any, _) | (Int, Double))
    }

    /// The common supertype of two types, if any (used by arithmetic and
    /// CASE/UNION type inference).
    pub fn unify(self, other: DataType) -> Option<DataType> {
        use DataType::*;
        match (self, other) {
            (a, b) if a == b => Some(a),
            (Null, t) | (t, Null) => Some(t),
            (Any, t) | (t, Any) => Some(t),
            (Int, Double) | (Double, Int) => Some(Double),
            _ => None,
        }
    }

    /// Parse an RQL/Java-style type name (`Integer`, `Double`, ...).
    pub fn parse(name: &str) -> Option<DataType> {
        match name.to_ascii_lowercase().as_str() {
            "bool" | "boolean" => Some(DataType::Bool),
            "int" | "integer" | "long" | "bigint" => Some(DataType::Int),
            "double" | "float" | "real" => Some(DataType::Double),
            "str" | "string" | "varchar" | "text" => Some(DataType::Str),
            "list" | "bag" | "collection" => Some(DataType::List),
            "any" | "object" => Some(DataType::Any),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOLEAN",
            DataType::Int => "INTEGER",
            DataType::Double => "DOUBLE",
            DataType::Str => "STRING",
            DataType::List => "LIST",
            DataType::Any => "ANY",
            DataType::Null => "NULL",
        };
        f.write_str(s)
    }
}

/// A dynamically-typed runtime value.
///
/// `Value` implements a *total* equality and ordering (NaN compares equal to
/// itself and sorts after all other doubles, via [`f64::total_cmp`]) so that
/// values can be used directly as grouping and join keys.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Double(f64),
    /// Shared immutable string.
    Str(Arc<str>),
    /// Shared immutable list (collection-valued attribute).
    List(Arc<Vec<Value>>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(Arc::from(s.into().into_boxed_str()))
    }

    /// Construct a list value.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Arc::new(items))
    }

    /// The runtime [`DataType`] of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Double(_) => DataType::Double,
            Value::Str(_) => DataType::Str,
            Value::List(_) => DataType::List,
        }
    }

    /// True iff this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as a boolean, if possible.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Interpret as an integer, if possible (no float truncation).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Interpret as a float, coercing integers.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(d) => Some(*d),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Interpret as a string slice, if possible.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Interpret as a list, if possible.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Approximate serialized size in bytes; used by the network byte
    /// accounting that backs the paper's Figure 11 bandwidth measurements.
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Double(_) => 8,
            Value::Str(s) => 4 + s.len(),
            Value::List(l) => 4 + l.iter().map(Value::byte_size).sum::<usize>(),
        }
    }

    /// A 64-bit *order prefix*: a cheaply comparable key that is monotone
    /// with respect to [`Value`]'s total order — `a < b` implies
    /// `a.order_prefix() <= b.order_prefix()`. Sorting large tuple sets
    /// compares prefixes first and falls back to the full comparison only
    /// on prefix ties (see [`sort_rows`](crate::tuple::sort_rows)).
    ///
    /// Layout: type rank in the top 3 bits (matching the rank order of
    /// `cmp`), then 61 bits of payload — the total-order encoding of the
    /// numeric value as f64 (ints and doubles share the numeric rank, as
    /// in `cmp`), the first 7 bytes of a string, a bool bit.
    pub fn order_prefix(&self) -> u64 {
        // Monotone encoding of f64 total order into u64 order.
        fn enc(d: f64) -> u64 {
            let b = d.to_bits();
            if b >> 63 == 1 {
                !b
            } else {
                b | (1 << 63)
            }
        }
        let (rank, payload) = match self {
            Value::Null => (0u64, 0u64),
            Value::Bool(b) => (1, *b as u64),
            Value::Int(i) => (2, enc(*i as f64) >> 3),
            Value::Double(d) => (2, enc(*d) >> 3),
            Value::Str(s) => {
                let mut buf = [0u8; 8];
                let n = s.len().min(7);
                buf[..n].copy_from_slice(&s.as_bytes()[..n]);
                (3, u64::from_be_bytes(buf) >> 3)
            }
            Value::List(_) => (4, 0),
        };
        (rank << 61) | payload
    }

    /// SQL-style addition; integers promote to doubles when mixed.
    pub fn add(&self, other: &Value) -> Option<Value> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Some(Value::Null),
            (Value::Int(a), Value::Int(b)) => Some(Value::Int(a.wrapping_add(*b))),
            _ => Some(Value::Double(self.as_double()? + other.as_double()?)),
        }
    }

    /// SQL-style subtraction.
    pub fn sub(&self, other: &Value) -> Option<Value> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Some(Value::Null),
            (Value::Int(a), Value::Int(b)) => Some(Value::Int(a.wrapping_sub(*b))),
            _ => Some(Value::Double(self.as_double()? - other.as_double()?)),
        }
    }

    /// SQL-style multiplication.
    pub fn mul(&self, other: &Value) -> Option<Value> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Some(Value::Null),
            (Value::Int(a), Value::Int(b)) => Some(Value::Int(a.wrapping_mul(*b))),
            _ => Some(Value::Double(self.as_double()? * other.as_double()?)),
        }
    }

    /// SQL-style division; always produces a double, NULL on divide-by-zero.
    pub fn div(&self, other: &Value) -> Option<Value> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Some(Value::Null),
            _ => {
                let d = other.as_double()?;
                if d == 0.0 {
                    Some(Value::Null)
                } else {
                    Some(Value::Double(self.as_double()? / d))
                }
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) => 2,
                Double(_) => 2, // numerics compare cross-type
                Str(_) => 3,
                List(_) => 4,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            // Cross-type numeric comparison: equality only when the integer
            // is exactly representable as f64 (keeps Eq consistent with Hash
            // for integers beyond 2^53); otherwise ints sort after the
            // rounded double they'd collide with.
            (Int(a), Double(b)) => match (*a as f64).total_cmp(b) {
                Ordering::Equal if (*a as f64) as i64 != *a => Ordering::Greater,
                o => o,
            },
            (Double(a), Int(b)) => match a.total_cmp(&(*b as f64)) {
                Ordering::Equal if (*b as f64) as i64 != *b => Ordering::Less,
                o => o,
            },
            (Str(a), Str(b)) => a.cmp(b),
            (List(a), List(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Integers and doubles that are numerically equal must hash the
            // same because they compare equal. Both hash through the *i64*
            // image when one exists: any `Double` equal to some `Int` is
            // integral and round-trips through `as i64` (saturating casts
            // make the i64::MAX/2^63 edge agree with `cmp`'s correction).
            // Hashing by i64 rather than f64 bits keeps the entropy of
            // small integers in the word's low bits — f64 bit patterns
            // carry it in the exponent/mantissa *high* bits, which a
            // multiply-based hash never folds back down, collapsing every
            // probe-table home slot for sequential keys.
            Value::Int(i) => {
                3u8.hash(state);
                i.hash(state);
            }
            Value::Double(d) => {
                let i = *d as i64;
                if i as f64 == *d {
                    // Integral and i64-representable: hash as the equal Int
                    // would (also unifies -0.0 with 0.0, a benign collision
                    // across a pair `cmp` keeps distinct).
                    3u8.hash(state);
                    i.hash(state);
                } else {
                    2u8.hash(state);
                    d.to_bits().hash(state);
                }
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
            Value::List(l) => {
                5u8.hash(state);
                for v in l.iter() {
                    v.hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::List(l) => {
                f.write_str("[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_double_cross_type_equality() {
        assert_eq!(Value::Int(3), Value::Double(3.0));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Double(3.0)));
        assert_ne!(Value::Int(3), Value::Double(3.5));
    }

    #[test]
    fn nan_is_self_equal_for_keying() {
        let nan = Value::Double(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert_eq!(hash_of(&nan), hash_of(&nan.clone()));
    }

    #[test]
    fn ordering_is_total_across_types() {
        let mut vals = [
            Value::str("z"),
            Value::Int(1),
            Value::Null,
            Value::Bool(true),
            Value::Double(0.5),
            Value::list(vec![Value::Int(1)]),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert!(matches!(vals[1], Value::Bool(_)));
        assert!(matches!(vals.last().unwrap(), Value::List(_)));
    }

    #[test]
    fn arithmetic_promotes_to_double() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(Value::Int(2).add(&Value::Double(0.5)).unwrap(), Value::Double(2.5));
        assert_eq!(Value::Double(1.0).div(&Value::Int(0)).unwrap(), Value::Null);
        assert_eq!(Value::Null.mul(&Value::Int(2)).unwrap(), Value::Null);
    }

    #[test]
    fn byte_size_accounts_contents() {
        assert_eq!(Value::Int(1).byte_size(), 8);
        assert_eq!(Value::str("abc").byte_size(), 7);
        let l = Value::list(vec![Value::Int(1), Value::Bool(true)]);
        assert_eq!(l.byte_size(), 4 + 8 + 1);
    }

    #[test]
    fn type_unification() {
        assert_eq!(DataType::Int.unify(DataType::Double), Some(DataType::Double));
        assert_eq!(DataType::Null.unify(DataType::Str), Some(DataType::Str));
        assert_eq!(DataType::Bool.unify(DataType::Int), None);
        assert!(DataType::Int.coercible_to(DataType::Double));
        assert!(!DataType::Double.coercible_to(DataType::Int));
        assert!(DataType::Null.coercible_to(DataType::Str));
    }

    #[test]
    fn parse_java_style_names() {
        assert_eq!(DataType::parse("Integer"), Some(DataType::Int));
        assert_eq!(DataType::parse("Double"), Some(DataType::Double));
        assert_eq!(DataType::parse("String"), Some(DataType::Str));
        assert_eq!(DataType::parse("widget"), None);
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::list(vec![Value::Int(1), Value::Int(2)]).to_string(), "[1, 2]");
    }
}
