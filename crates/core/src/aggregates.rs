//! Built-in aggregates with full delta support.
//!
//! "The standard operators (min, max, sum, average, count) automatically
//! handle insertion, deletion, and replacement deltas" (§3.3). Each built-in
//! here is an [`AggHandler`]; the delta rules follow the paper's discussion:
//!
//! * **sum** subtracts on deletion and adjusts on replacement; a `δ(E)`
//!   update with a numeric payload is treated as an *adjustment* to the sum
//!   (the generalized-delta behaviour PageRank relies on);
//! * **min/max** keep a buffered multiset so that deleting the current
//!   extremum can find the next-best value;
//! * **avg** is split into a composable sum+count pre-aggregate and a final
//!   division, mirroring the MapReduce combiner discussion.

use crate::delta::{Annotation, Delta};
use crate::error::{Result, RexError};
use crate::handlers::{AggHandler, AggState};
use crate::tuple::Tuple;
use crate::udf::Registry;
use crate::value::{DataType, Value};
use std::sync::Arc;

fn numeric(v: &Value) -> Result<f64> {
    v.as_double().ok_or_else(|| {
        RexError::Type(format!("aggregate input must be numeric, got {}", v.data_type()))
    })
}

/// First attribute of the delta's tuple — built-in aggregates are unary; the
/// group-by operator projects the aggregate's input column(s) before
/// dispatching.
fn arg(d: &Delta) -> &Value {
    d.tuple.get(0)
}

fn scalar_result(v: Value) -> Vec<Delta> {
    vec![Delta::insert(Tuple::new(vec![v]))]
}

/// The single input column of a unary aggregate's batched fast path, read
/// in place from the full (unprojected) row.
fn unary<'t>(t: &'t Tuple, cols: &[usize]) -> Result<&'t Value> {
    let c =
        *cols.first().ok_or_else(|| RexError::Exec("aggregate needs an input column".into()))?;
    t.try_get(c)
}

/// Sum/avg shared insert fold: `state += value, count += 1`.
fn fold_sum_count(state: &mut AggState, v: &Value, name: &str) -> Result<bool> {
    match state {
        AggState::SumCount(sum, n) => {
            *sum += numeric(v)?;
            *n += 1;
            Ok(true)
        }
        _ => Err(RexError::Exec(format!("{name}: bad state shape"))),
    }
}

/// SUM over a numeric column.
pub struct SumAgg;

impl AggHandler for SumAgg {
    fn is_builtin(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "sum"
    }

    fn init(&self) -> AggState {
        AggState::SumCount(0.0, 0)
    }

    fn agg_state(&self, state: &mut AggState, d: &Delta) -> Result<Vec<Delta>> {
        let (sum, n) = match state {
            AggState::SumCount(s, n) => (s, n),
            _ => return Err(RexError::Exec("sum: bad state shape".into())),
        };
        match &d.ann {
            Annotation::Insert => {
                *sum += numeric(arg(d))?;
                *n += 1;
            }
            Annotation::Delete => {
                *sum -= numeric(arg(d))?;
                *n -= 1;
            }
            Annotation::Replace(old) => {
                *sum += numeric(arg(d))? - numeric(old.get(0))?;
            }
            // Generalized delta: the tuple's value is an *adjustment*.
            Annotation::Update(_) => {
                *sum += numeric(arg(d))?;
            }
        }
        Ok(vec![])
    }

    fn fold_insert(&self, state: &mut AggState, t: &Tuple, cols: &[usize]) -> Result<bool> {
        fold_sum_count(state, unary(t, cols)?, "sum")
    }

    fn agg_result(&self, state: &AggState) -> Result<Vec<Delta>> {
        match state {
            AggState::SumCount(s, n) => {
                if *n == 0 && *s == 0.0 {
                    Ok(scalar_result(Value::Double(0.0)))
                } else {
                    Ok(scalar_result(Value::Double(*s)))
                }
            }
            _ => Err(RexError::Exec("sum: bad state shape".into())),
        }
    }

    fn composable(&self) -> bool {
        true
    }

    fn pre_aggregate(&self) -> Option<String> {
        Some("sum".into())
    }

    fn multiply(&self, state: &AggState, cardinality: i64) -> Option<AggState> {
        // sum scales linearly with the multiplicity of the opposite group.
        match state {
            AggState::SumCount(s, n) => {
                Some(AggState::SumCount(s * cardinality as f64, n * cardinality))
            }
            _ => None,
        }
    }
}

/// COUNT(*) / COUNT(col).
pub struct CountAgg;

impl AggHandler for CountAgg {
    fn is_builtin(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "count"
    }

    fn init(&self) -> AggState {
        AggState::Int(0)
    }

    fn agg_state(&self, state: &mut AggState, d: &Delta) -> Result<Vec<Delta>> {
        let n = match state {
            AggState::Int(n) => n,
            _ => return Err(RexError::Exec("count: bad state shape".into())),
        };
        match &d.ann {
            Annotation::Insert => *n += 1,
            Annotation::Delete => *n -= 1,
            Annotation::Replace(_) | Annotation::Update(_) => {}
        }
        Ok(vec![])
    }

    fn fold_insert(&self, state: &mut AggState, _t: &Tuple, _cols: &[usize]) -> Result<bool> {
        match state {
            AggState::Int(n) => {
                *n += 1;
                Ok(true)
            }
            _ => Err(RexError::Exec("count: bad state shape".into())),
        }
    }

    fn agg_result(&self, state: &AggState) -> Result<Vec<Delta>> {
        match state {
            AggState::Int(n) => Ok(scalar_result(Value::Int(*n))),
            _ => Err(RexError::Exec("count: bad state shape".into())),
        }
    }

    fn return_type(&self) -> DataType {
        DataType::Int
    }

    fn composable(&self) -> bool {
        true
    }

    fn pre_aggregate(&self) -> Option<String> {
        // A pushed-down COUNT becomes partial counts that are SUMmed.
        Some("count".into())
    }

    fn multiply(&self, state: &AggState, cardinality: i64) -> Option<AggState> {
        match state {
            AggState::Int(n) => Some(AggState::Int(n * cardinality)),
            _ => None,
        }
    }
}

/// MIN with buffered state: "a min aggregate will take a tuple deletion
/// delta, and first determine whether the deletion affects the existing
/// minimum value. If so, it must determine the next-smallest value (which
/// needs to be in its buffered state)" (§3.3).
pub struct MinAgg;

/// MAX, symmetric to [`MinAgg`].
pub struct MaxAgg;

/// Extremum insert fold: push the value into the buffered bag.
fn fold_extremum(state: &mut AggState, v: &Value, name: &str) -> Result<bool> {
    match state {
        AggState::Bag(bag) => {
            bag.push(v.clone());
            Ok(true)
        }
        _ => Err(RexError::Exec(format!("{name}: bad state shape"))),
    }
}

fn extremum_state(state: &mut AggState, d: &Delta, name: &str) -> Result<()> {
    let bag = match state {
        AggState::Bag(b) => b,
        _ => return Err(RexError::Exec(format!("{name}: bad state shape"))),
    };
    match &d.ann {
        Annotation::Insert | Annotation::Update(_) => bag.push(arg(d).clone()),
        Annotation::Delete => {
            if let Some(pos) = bag.iter().position(|v| v == arg(d)) {
                bag.swap_remove(pos);
            }
        }
        Annotation::Replace(old) => {
            if let Some(pos) = bag.iter().position(|v| v == old.get(0)) {
                bag[pos] = arg(d).clone();
            } else {
                bag.push(arg(d).clone());
            }
        }
    }
    Ok(())
}

impl AggHandler for MinAgg {
    fn is_builtin(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "min"
    }

    fn init(&self) -> AggState {
        AggState::Bag(vec![])
    }

    fn agg_state(&self, state: &mut AggState, d: &Delta) -> Result<Vec<Delta>> {
        extremum_state(state, d, "min")?;
        Ok(vec![])
    }

    fn fold_insert(&self, state: &mut AggState, t: &Tuple, cols: &[usize]) -> Result<bool> {
        fold_extremum(state, unary(t, cols)?, "min")
    }

    fn agg_result(&self, state: &AggState) -> Result<Vec<Delta>> {
        match state {
            AggState::Bag(b) => Ok(scalar_result(b.iter().min().cloned().unwrap_or(Value::Null))),
            _ => Err(RexError::Exec("min: bad state shape".into())),
        }
    }

    fn return_type(&self) -> DataType {
        DataType::Any
    }

    // min is composable for insert-only streams (min of mins) but the
    // buffered deletion path is not; REX treats it as non-composable so the
    // optimizer only pushes it below key-foreign-key joins.
    fn composable(&self) -> bool {
        false
    }
}

impl AggHandler for MaxAgg {
    fn is_builtin(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "max"
    }

    fn init(&self) -> AggState {
        AggState::Bag(vec![])
    }

    fn agg_state(&self, state: &mut AggState, d: &Delta) -> Result<Vec<Delta>> {
        extremum_state(state, d, "max")?;
        Ok(vec![])
    }

    fn fold_insert(&self, state: &mut AggState, t: &Tuple, cols: &[usize]) -> Result<bool> {
        fold_extremum(state, unary(t, cols)?, "max")
    }

    fn agg_result(&self, state: &AggState) -> Result<Vec<Delta>> {
        match state {
            AggState::Bag(b) => Ok(scalar_result(b.iter().max().cloned().unwrap_or(Value::Null))),
            _ => Err(RexError::Exec("max: bad state shape".into())),
        }
    }

    fn return_type(&self) -> DataType {
        DataType::Any
    }

    fn composable(&self) -> bool {
        false
    }
}

/// AVG, "often divided into two portions: a pre-aggregate operation that
/// associates both a sum and a count with each group (called combiner in
/// MapReduce), and a final aggregate" (§3.3).
pub struct AvgAgg;

impl AggHandler for AvgAgg {
    fn is_builtin(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "avg"
    }

    fn init(&self) -> AggState {
        AggState::SumCount(0.0, 0)
    }

    fn agg_state(&self, state: &mut AggState, d: &Delta) -> Result<Vec<Delta>> {
        let (sum, n) = match state {
            AggState::SumCount(s, n) => (s, n),
            _ => return Err(RexError::Exec("avg: bad state shape".into())),
        };
        match &d.ann {
            Annotation::Insert => {
                *sum += numeric(arg(d))?;
                *n += 1;
            }
            Annotation::Delete => {
                *sum -= numeric(arg(d))?;
                *n -= 1;
            }
            Annotation::Replace(old) => {
                *sum += numeric(arg(d))? - numeric(old.get(0))?;
            }
            Annotation::Update(_) => {
                *sum += numeric(arg(d))?;
            }
        }
        Ok(vec![])
    }

    fn fold_insert(&self, state: &mut AggState, t: &Tuple, cols: &[usize]) -> Result<bool> {
        fold_sum_count(state, unary(t, cols)?, "avg")
    }

    fn agg_result(&self, state: &AggState) -> Result<Vec<Delta>> {
        match state {
            AggState::SumCount(s, n) => {
                if *n == 0 {
                    Ok(scalar_result(Value::Null))
                } else {
                    Ok(scalar_result(Value::Double(s / *n as f64)))
                }
            }
            _ => Err(RexError::Exec("avg: bad state shape".into())),
        }
    }

    fn composable(&self) -> bool {
        true
    }

    fn pre_aggregate(&self) -> Option<String> {
        Some("avg_partial".into())
    }

    fn multiply(&self, state: &AggState, cardinality: i64) -> Option<AggState> {
        match state {
            AggState::SumCount(s, n) => {
                Some(AggState::SumCount(s * cardinality as f64, n * cardinality))
            }
            _ => None,
        }
    }
}

/// The avg pre-aggregate: produces `(sum, count)` list values that
/// `avg_final` folds. Used when the optimizer pushes avg below a rehash.
pub struct AvgPartialAgg;

impl AggHandler for AvgPartialAgg {
    fn is_builtin(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "avg_partial"
    }

    fn init(&self) -> AggState {
        AggState::SumCount(0.0, 0)
    }

    fn agg_state(&self, state: &mut AggState, d: &Delta) -> Result<Vec<Delta>> {
        AvgAgg.agg_state(state, d)
    }

    fn fold_insert(&self, state: &mut AggState, t: &Tuple, cols: &[usize]) -> Result<bool> {
        fold_sum_count(state, unary(t, cols)?, "avg_partial")
    }

    fn agg_result(&self, state: &AggState) -> Result<Vec<Delta>> {
        match state {
            AggState::SumCount(s, n) => {
                Ok(scalar_result(Value::list(vec![Value::Double(*s), Value::Int(*n)])))
            }
            _ => Err(RexError::Exec("avg_partial: bad state shape".into())),
        }
    }

    fn return_type(&self) -> DataType {
        DataType::List
    }

    fn composable(&self) -> bool {
        true
    }
}

/// Final stage for partial averages: input values are `(sum, count)` lists.
pub struct AvgFinalAgg;

impl AggHandler for AvgFinalAgg {
    fn is_builtin(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "avg_final"
    }

    fn init(&self) -> AggState {
        AggState::SumCount(0.0, 0)
    }

    fn agg_state(&self, state: &mut AggState, d: &Delta) -> Result<Vec<Delta>> {
        let (sum, n) = match state {
            AggState::SumCount(s, n) => (s, n),
            _ => return Err(RexError::Exec("avg_final: bad state shape".into())),
        };
        let l = arg(d)
            .as_list()
            .ok_or_else(|| RexError::Type("avg_final expects (sum,count) lists".into()))?;
        let (ds, dn) = (
            l.first().and_then(Value::as_double).unwrap_or(0.0),
            l.get(1).and_then(Value::as_int).unwrap_or(0),
        );
        match &d.ann {
            Annotation::Insert | Annotation::Update(_) => {
                *sum += ds;
                *n += dn;
            }
            Annotation::Delete => {
                *sum -= ds;
                *n -= dn;
            }
            Annotation::Replace(old) => {
                let ol = old.get(0).as_list().unwrap_or(&[]).to_vec();
                let (os, on) = (
                    ol.first().and_then(Value::as_double).unwrap_or(0.0),
                    ol.get(1).and_then(Value::as_int).unwrap_or(0),
                );
                *sum += ds - os;
                *n += dn - on;
            }
        }
        Ok(vec![])
    }

    fn agg_result(&self, state: &AggState) -> Result<Vec<Delta>> {
        AvgAgg.agg_result(state)
    }
}

/// ARGMIN(id, value): "a general-purpose aggregate returning the identifier
/// with minimum value" (appendix, used by the shortest-path query).
///
/// Input tuples are `(id, value)` pairs; buffered so deletions can recover.
pub struct ArgMinAgg;

impl AggHandler for ArgMinAgg {
    fn is_builtin(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "argmin"
    }

    fn init(&self) -> AggState {
        AggState::Tuples(crate::handlers::TupleSet::new())
    }

    fn agg_state(&self, state: &mut AggState, d: &Delta) -> Result<Vec<Delta>> {
        let set = match state {
            AggState::Tuples(s) => s,
            _ => return Err(RexError::Exec("argmin: bad state shape".into())),
        };
        match &d.ann {
            Annotation::Insert | Annotation::Update(_) => set.insert(d.tuple.clone()),
            Annotation::Delete => {
                set.remove(&d.tuple);
            }
            Annotation::Replace(old) => {
                set.replace(old, d.tuple.clone());
            }
        }
        Ok(vec![])
    }

    fn agg_result(&self, state: &AggState) -> Result<Vec<Delta>> {
        match state {
            AggState::Tuples(s) => {
                let best = s.iter().min_by(|a, b| a.get(1).cmp(b.get(1))).cloned();
                match best {
                    Some(t) => Ok(vec![Delta::insert(t)]),
                    None => Ok(vec![]),
                }
            }
            _ => Err(RexError::Exec("argmin: bad state shape".into())),
        }
    }

    fn output_kind(&self) -> crate::handlers::AggOutputKind {
        crate::handlers::AggOutputKind::TableValued
    }
}

/// Register every built-in aggregate into `reg`.
pub fn register_builtins(reg: &Registry) {
    reg.register_agg("sum", Arc::new(SumAgg));
    reg.register_agg("count", Arc::new(CountAgg));
    reg.register_agg("min", Arc::new(MinAgg));
    reg.register_agg("max", Arc::new(MaxAgg));
    reg.register_agg("avg", Arc::new(AvgAgg));
    reg.register_agg("avg_partial", Arc::new(AvgPartialAgg));
    reg.register_agg("avg_final", Arc::new(AvgFinalAgg));
    reg.register_agg("argmin", Arc::new(ArgMinAgg));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn result_value(h: &dyn AggHandler, s: &AggState) -> Value {
        h.agg_result(s).unwrap()[0].tuple.get(0).clone()
    }

    #[test]
    fn sum_handles_all_annotations() {
        let h = SumAgg;
        let mut s = h.init();
        h.agg_state(&mut s, &Delta::insert(tuple![10.0f64])).unwrap();
        h.agg_state(&mut s, &Delta::insert(tuple![5.0f64])).unwrap();
        assert_eq!(result_value(&h, &s), Value::Double(15.0));
        h.agg_state(&mut s, &Delta::delete(tuple![10.0f64])).unwrap();
        assert_eq!(result_value(&h, &s), Value::Double(5.0));
        h.agg_state(&mut s, &Delta::replace(tuple![5.0f64], tuple![7.0f64])).unwrap();
        assert_eq!(result_value(&h, &s), Value::Double(7.0));
        // Generalized delta: adjustment semantics.
        h.agg_state(&mut s, &Delta::update(tuple![0.5f64], Value::Null)).unwrap();
        assert_eq!(result_value(&h, &s), Value::Double(7.5));
    }

    #[test]
    fn count_ignores_replace_and_update() {
        let h = CountAgg;
        let mut s = h.init();
        for _ in 0..3 {
            h.agg_state(&mut s, &Delta::insert(tuple![1i64])).unwrap();
        }
        h.agg_state(&mut s, &Delta::replace(tuple![1i64], tuple![2i64])).unwrap();
        h.agg_state(&mut s, &Delta::update(tuple![1i64], Value::Null)).unwrap();
        assert_eq!(result_value(&h, &s), Value::Int(3));
        h.agg_state(&mut s, &Delta::delete(tuple![1i64])).unwrap();
        assert_eq!(result_value(&h, &s), Value::Int(2));
    }

    #[test]
    fn min_recovers_next_smallest_after_deleting_minimum() {
        let h = MinAgg;
        let mut s = h.init();
        for v in [5i64, 3, 8] {
            h.agg_state(&mut s, &Delta::insert(tuple![v])).unwrap();
        }
        assert_eq!(result_value(&h, &s), Value::Int(3));
        // Delete the current minimum: buffered state recovers 5.
        h.agg_state(&mut s, &Delta::delete(tuple![3i64])).unwrap();
        assert_eq!(result_value(&h, &s), Value::Int(5));
    }

    #[test]
    fn max_replacement() {
        let h = MaxAgg;
        let mut s = h.init();
        for v in [5i64, 3, 8] {
            h.agg_state(&mut s, &Delta::insert(tuple![v])).unwrap();
        }
        h.agg_state(&mut s, &Delta::replace(tuple![8i64], tuple![1i64])).unwrap();
        assert_eq!(result_value(&h, &s), Value::Int(5));
    }

    #[test]
    fn avg_and_partial_compose() {
        let h = AvgAgg;
        let mut s = h.init();
        for v in [2.0f64, 4.0] {
            h.agg_state(&mut s, &Delta::insert(tuple![v])).unwrap();
        }
        assert_eq!(result_value(&h, &s), Value::Double(3.0));

        // Two partial states merged by avg_final must equal direct avg.
        let p = AvgPartialAgg;
        let mut s1 = p.init();
        let mut s2 = p.init();
        p.agg_state(&mut s1, &Delta::insert(tuple![2.0f64])).unwrap();
        p.agg_state(&mut s2, &Delta::insert(tuple![4.0f64])).unwrap();
        let f = AvgFinalAgg;
        let mut fs = f.init();
        for part in [&s1, &s2] {
            let d = &p.agg_result(part).unwrap()[0];
            f.agg_state(&mut fs, d).unwrap();
        }
        assert_eq!(result_value(&f, &fs), Value::Double(3.0));
    }

    #[test]
    fn avg_empty_group_is_null() {
        let h = AvgAgg;
        let s = h.init();
        assert_eq!(result_value(&h, &s), Value::Null);
    }

    #[test]
    fn argmin_returns_tuple_with_smallest_value() {
        let h = ArgMinAgg;
        let mut s = h.init();
        h.agg_state(&mut s, &Delta::insert(tuple![7i64, 3.0f64])).unwrap();
        h.agg_state(&mut s, &Delta::insert(tuple![9i64, 1.0f64])).unwrap();
        let out = h.agg_result(&s).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tuple, tuple![9i64, 1.0f64]);
        // Deleting the winner falls back to the runner-up.
        h.agg_state(&mut s, &Delta::delete(tuple![9i64, 1.0f64])).unwrap();
        assert_eq!(h.agg_result(&s).unwrap()[0].tuple, tuple![7i64, 3.0f64]);
    }

    #[test]
    fn multiply_compensation_scales_sum_and_count() {
        let h = SumAgg;
        let s = AggState::SumCount(10.0, 2);
        let m = h.multiply(&s, 3).unwrap();
        assert_eq!(m, AggState::SumCount(30.0, 6));
        let c = CountAgg;
        assert_eq!(c.multiply(&AggState::Int(4), 3).unwrap(), AggState::Int(12));
        // min is not composable and has no multiply.
        assert!(MinAgg.multiply(&AggState::Bag(vec![]), 3).is_none());
    }

    #[test]
    fn composability_flags_match_paper() {
        assert!(SumAgg.composable());
        assert!(CountAgg.composable());
        assert!(AvgAgg.composable());
        assert!(!MinAgg.composable());
        assert!(!MaxAgg.composable());
    }
}
