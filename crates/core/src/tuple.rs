//! Tuples and schemas.

use crate::error::{Result, RexError};
use crate::value::{DataType, Value};
use std::fmt;
use std::sync::Arc;

/// An immutable, cheaply-cloneable tuple of values.
///
/// Tuples flow through the operator pipeline wrapped in deltas; sharing via
/// `Arc` keeps fan-out (e.g. a rehash broadcasting to replicas) allocation
/// free.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple(Arc::from(values.into_boxed_slice()))
    }

    /// Build a tuple by cloning a slice of values. One allocation: the
    /// values are cloned straight into the `Arc` buffer, unlike
    /// [`Tuple::new`], whose `Vec` is itself an allocation that `Arc`
    /// must copy out of. Hot paths evaluate into a reusable scratch
    /// buffer and construct the tuple from it.
    pub fn from_slice(values: &[Value]) -> Tuple {
        Tuple(Arc::from(values))
    }

    /// The empty tuple.
    pub fn empty() -> Tuple {
        Tuple(Arc::from(Vec::new().into_boxed_slice()))
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Access attribute `i`, or `Value::Null` when out of range is *not*
    /// silently tolerated: panics in debug, returns Null in release would
    /// hide bugs, so we always panic on out-of-range access.
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// Checked access.
    pub fn try_get(&self, i: usize) -> Result<&Value> {
        self.0.get(i).ok_or_else(|| {
            RexError::Exec(format!("column index {i} out of range (arity {})", self.0.len()))
        })
    }

    /// All values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Project the given column indices into a new tuple.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple::new(cols.iter().map(|&c| self.0[c].clone()).collect())
    }

    /// Concatenate two tuples (used by joins). Joined rows up to 16
    /// attributes are assembled on the stack and built with a single
    /// allocation — every probe match on the join hot path constructs one
    /// of these.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        const STACK: usize = 16;
        let n = self.arity() + other.arity();
        if n <= STACK {
            let mut buf: [Value; STACK] = [const { Value::Null }; STACK];
            for (slot, v) in buf.iter_mut().zip(self.0.iter().chain(other.0.iter())) {
                *slot = v.clone();
            }
            Tuple::from_slice(&buf[..n])
        } else {
            let mut v = Vec::with_capacity(n);
            v.extend_from_slice(&self.0);
            v.extend_from_slice(&other.0);
            Tuple::new(v)
        }
    }

    /// Approximate serialized size in bytes (network accounting).
    pub fn byte_size(&self) -> usize {
        2 + self.0.iter().map(Value::byte_size).sum::<usize>()
    }

    /// Extract a key (sub-tuple) for hashing/grouping.
    ///
    /// This *allocates* an owned key. Hot paths that only need to probe
    /// keyed state should use [`hash_key`](Tuple::hash_key) /
    /// [`key_eq`](Tuple::key_eq) (or a
    /// [`KeyedTable`](crate::hash::KeyedTable)) instead, which hash and
    /// compare the key columns in place.
    pub fn key(&self, cols: &[usize]) -> Vec<Value> {
        cols.iter().map(|&c| self.0[c].clone()).collect()
    }

    /// Deterministic [`FxHasher`](crate::hash::FxHasher) hash of the key
    /// columns, computed over the column references — no owned key is
    /// materialized. Agrees with
    /// [`hash_values`](crate::hash::hash_values)`(&self.key(cols))`.
    pub fn hash_key(&self, cols: &[usize]) -> u64 {
        crate::hash::hash_values(cols.iter().map(|&c| &self.0[c]))
    }

    /// Whether this tuple's key columns equal an owned key, compared in
    /// place (the lookup half of borrowed-key probing).
    pub fn key_eq(&self, cols: &[usize], key: &[Value]) -> bool {
        cols.len() == key.len() && cols.iter().zip(key).all(|(&c, v)| &self.0[c] == v)
    }
}

/// Sort rows into [`Tuple`]'s total order via 64-bit
/// [order prefixes](Value::order_prefix) of the first attribute: rows are
/// ordered by prefix first — one integer compare (or a radix pass)
/// instead of an `Arc` deref plus per-`Value` enum matching — and only
/// runs of equal prefixes fall back to the full tuple comparison. This is
/// what makes the sink's single end-of-query sort cheap.
///
/// Large inputs take an LSD radix sort over `(prefix, row index)` pairs
/// (16-bit digits, constant-digit passes skipped); small inputs use a
/// comparison sort on the same keys.
pub fn sort_rows(rows: &mut Vec<Tuple>) {
    let n = rows.len();
    if n < 2 {
        return;
    }
    let mut keyed: Vec<(u64, u32)> = rows
        .iter()
        .enumerate()
        .map(|(i, t)| (t.values().first().map_or(0, Value::order_prefix), i as u32))
        .collect();

    if n < 4096 {
        keyed.sort_unstable_by(|a, b| {
            a.0.cmp(&b.0).then_with(|| rows[a.1 as usize].cmp(&rows[b.1 as usize]))
        });
    } else {
        // One pass builds all four digit histograms; constant digits
        // (e.g. the nearly-fixed type-rank bits) skip their pass.
        let mut hist = vec![0u32; 4 * 65536];
        for &(k, _) in &keyed {
            for pass in 0..4 {
                hist[pass << 16 | ((k >> (pass * 16)) & 0xffff) as usize] += 1;
            }
        }
        let mut aux = vec![(0u64, 0u32); n];
        for pass in 0..4 {
            let h = &mut hist[pass << 16..(pass + 1) << 16];
            if h.iter().any(|&c| c as usize == n) {
                continue; // all keys share this digit
            }
            let mut sum = 0u32;
            for c in h.iter_mut() {
                let count = *c;
                *c = sum;
                sum += count;
            }
            let shift = pass * 16;
            for &kt in &keyed {
                let d = ((kt.0 >> shift) & 0xffff) as usize;
                aux[h[d] as usize] = kt;
                h[d] += 1;
            }
            std::mem::swap(&mut keyed, &mut aux);
        }
        // Break prefix ties with the full tuple order, run by run.
        let mut i = 0;
        while i < n {
            let mut j = i + 1;
            while j < n && keyed[j].0 == keyed[i].0 {
                j += 1;
            }
            if j - i > 1 {
                keyed[i..j].sort_unstable_by(|a, b| rows[a.1 as usize].cmp(&rows[b.1 as usize]));
            }
            i = j;
        }
    }

    // Apply the permutation without cloning any tuple.
    let mut slots: Vec<Option<Tuple>> = std::mem::take(rows).into_iter().map(Some).collect();
    *rows =
        keyed.into_iter().map(|(_, i)| slots[i as usize].take().expect("unique index")).collect();
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Tuple {
        Tuple::new(v)
    }
}

/// Build a tuple from a heterogeneous list of values.
///
/// ```
/// use rex_core::tuple;
/// let t = tuple![1i64, 2.5f64, "x"];
/// assert_eq!(t.arity(), 3);
/// ```
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

/// A named, typed attribute of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Attribute name.
    pub name: String,
    /// Attribute type.
    pub ty: DataType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, ty: DataType) -> Field {
        Field { name: name.into(), ty }
    }
}

/// An ordered list of fields describing a relation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Construct a schema from fields.
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema { fields }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn of(pairs: &[(&str, DataType)]) -> Schema {
        Schema::new(pairs.iter().map(|(n, t)| Field::new(*n, *t)).collect())
    }

    /// All fields.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Resolve a column name to its index. Names are case-insensitive, as in
    /// SQL. Qualified names (`rel.col`) match on the suffix.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        // Exact (case-insensitive) match first.
        if let Some(i) = self.fields.iter().position(|f| f.name.to_ascii_lowercase() == lower) {
            return Some(i);
        }
        // Qualified match: `x.y` matches field `y`; field `x.y` matches `y`.
        let suffix = lower.rsplit('.').next().unwrap_or(&lower);
        self.fields.iter().position(|f| {
            let fl = f.name.to_ascii_lowercase();
            fl == suffix || fl.rsplit('.').next() == Some(suffix)
        })
    }

    /// Field type by index.
    pub fn field_type(&self, i: usize) -> DataType {
        self.fields[i].ty
    }

    /// Concatenate two schemas (join output).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema::new(fields)
    }

    /// Validate a tuple against this schema.
    pub fn check(&self, t: &Tuple) -> Result<()> {
        if t.arity() != self.arity() {
            return Err(RexError::Type(format!(
                "tuple arity {} does not match schema arity {}",
                t.arity(),
                self.arity()
            )));
        }
        for (i, f) in self.fields.iter().enumerate() {
            let vt = t.get(i).data_type();
            if !vt.coercible_to(f.ty) {
                return Err(RexError::Type(format!(
                    "column {} ({}) expects {} but value is {}",
                    i, f.name, f.ty, vt
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, fld) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}: {}", fld.name, fld.ty)?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_projection_and_concat() {
        let t = tuple![1i64, "a", 2.5f64];
        let p = t.project(&[2, 0]);
        assert_eq!(p, tuple![2.5f64, 1i64]);
        let c = t.concat(&tuple![true]);
        assert_eq!(c.arity(), 4);
        assert_eq!(c.get(3), &Value::Bool(true));
    }

    #[test]
    fn try_get_out_of_range_errors() {
        let t = tuple![1i64];
        assert!(t.try_get(0).is_ok());
        assert!(t.try_get(1).is_err());
    }

    #[test]
    fn schema_name_resolution_case_insensitive_and_qualified() {
        let s = Schema::of(&[("srcId", DataType::Int), ("graph.destId", DataType::Int)]);
        assert_eq!(s.index_of("srcid"), Some(0));
        assert_eq!(s.index_of("PR.srcId"), Some(0));
        assert_eq!(s.index_of("destId"), Some(1));
        assert_eq!(s.index_of("graph.destId"), Some(1));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    fn schema_check_enforces_arity_and_types() {
        let s = Schema::of(&[("a", DataType::Int), ("b", DataType::Double)]);
        assert!(s.check(&tuple![1i64, 2.0f64]).is_ok());
        // Int coerces to Double.
        assert!(s.check(&tuple![1i64, 2i64]).is_ok());
        // Null is compatible with anything.
        assert!(s.check(&Tuple::new(vec![Value::Null, Value::Null])).is_ok());
        assert!(s.check(&tuple![1i64]).is_err());
        assert!(s.check(&tuple!["x", 2.0f64]).is_err());
    }

    #[test]
    fn tuple_byte_size() {
        let t = tuple![1i64, "ab"];
        assert_eq!(t.byte_size(), 2 + 8 + 6);
    }

    #[test]
    fn tuple_key_extraction() {
        let t = tuple![7i64, "k", 3i64];
        assert_eq!(t.key(&[1]), vec![Value::str("k")]);
        assert_eq!(t.key(&[0, 2]), vec![Value::Int(7), Value::Int(3)]);
    }
}
