//! Tuples and schemas.

use crate::error::{Result, RexError};
use crate::value::{DataType, Value};
use std::fmt;
use std::sync::Arc;

/// An immutable, cheaply-cloneable tuple of values.
///
/// Tuples flow through the operator pipeline wrapped in deltas; sharing via
/// `Arc` keeps fan-out (e.g. a rehash broadcasting to replicas) allocation
/// free.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple(Arc::from(values.into_boxed_slice()))
    }

    /// The empty tuple.
    pub fn empty() -> Tuple {
        Tuple(Arc::from(Vec::new().into_boxed_slice()))
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Access attribute `i`, or `Value::Null` when out of range is *not*
    /// silently tolerated: panics in debug, returns Null in release would
    /// hide bugs, so we always panic on out-of-range access.
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// Checked access.
    pub fn try_get(&self, i: usize) -> Result<&Value> {
        self.0.get(i).ok_or_else(|| {
            RexError::Exec(format!("column index {i} out of range (arity {})", self.0.len()))
        })
    }

    /// All values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Project the given column indices into a new tuple.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple::new(cols.iter().map(|&c| self.0[c].clone()).collect())
    }

    /// Concatenate two tuples (used by joins).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple::new(v)
    }

    /// Approximate serialized size in bytes (network accounting).
    pub fn byte_size(&self) -> usize {
        2 + self.0.iter().map(Value::byte_size).sum::<usize>()
    }

    /// Extract a key (sub-tuple) for hashing/grouping.
    pub fn key(&self, cols: &[usize]) -> Vec<Value> {
        cols.iter().map(|&c| self.0[c].clone()).collect()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Tuple {
        Tuple::new(v)
    }
}

/// Build a tuple from a heterogeneous list of values.
///
/// ```
/// use rex_core::tuple;
/// let t = tuple![1i64, 2.5f64, "x"];
/// assert_eq!(t.arity(), 3);
/// ```
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

/// A named, typed attribute of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Attribute name.
    pub name: String,
    /// Attribute type.
    pub ty: DataType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, ty: DataType) -> Field {
        Field { name: name.into(), ty }
    }
}

/// An ordered list of fields describing a relation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Construct a schema from fields.
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema { fields }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn of(pairs: &[(&str, DataType)]) -> Schema {
        Schema::new(pairs.iter().map(|(n, t)| Field::new(*n, *t)).collect())
    }

    /// All fields.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Resolve a column name to its index. Names are case-insensitive, as in
    /// SQL. Qualified names (`rel.col`) match on the suffix.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        // Exact (case-insensitive) match first.
        if let Some(i) = self.fields.iter().position(|f| f.name.to_ascii_lowercase() == lower) {
            return Some(i);
        }
        // Qualified match: `x.y` matches field `y`; field `x.y` matches `y`.
        let suffix = lower.rsplit('.').next().unwrap_or(&lower);
        self.fields.iter().position(|f| {
            let fl = f.name.to_ascii_lowercase();
            fl == suffix || fl.rsplit('.').next() == Some(suffix)
        })
    }

    /// Field type by index.
    pub fn field_type(&self, i: usize) -> DataType {
        self.fields[i].ty
    }

    /// Concatenate two schemas (join output).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema::new(fields)
    }

    /// Validate a tuple against this schema.
    pub fn check(&self, t: &Tuple) -> Result<()> {
        if t.arity() != self.arity() {
            return Err(RexError::Type(format!(
                "tuple arity {} does not match schema arity {}",
                t.arity(),
                self.arity()
            )));
        }
        for (i, f) in self.fields.iter().enumerate() {
            let vt = t.get(i).data_type();
            if !vt.coercible_to(f.ty) {
                return Err(RexError::Type(format!(
                    "column {} ({}) expects {} but value is {}",
                    i, f.name, f.ty, vt
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, fld) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}: {}", fld.name, fld.ty)?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_projection_and_concat() {
        let t = tuple![1i64, "a", 2.5f64];
        let p = t.project(&[2, 0]);
        assert_eq!(p, tuple![2.5f64, 1i64]);
        let c = t.concat(&tuple![true]);
        assert_eq!(c.arity(), 4);
        assert_eq!(c.get(3), &Value::Bool(true));
    }

    #[test]
    fn try_get_out_of_range_errors() {
        let t = tuple![1i64];
        assert!(t.try_get(0).is_ok());
        assert!(t.try_get(1).is_err());
    }

    #[test]
    fn schema_name_resolution_case_insensitive_and_qualified() {
        let s = Schema::of(&[("srcId", DataType::Int), ("graph.destId", DataType::Int)]);
        assert_eq!(s.index_of("srcid"), Some(0));
        assert_eq!(s.index_of("PR.srcId"), Some(0));
        assert_eq!(s.index_of("destId"), Some(1));
        assert_eq!(s.index_of("graph.destId"), Some(1));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    fn schema_check_enforces_arity_and_types() {
        let s = Schema::of(&[("a", DataType::Int), ("b", DataType::Double)]);
        assert!(s.check(&tuple![1i64, 2.0f64]).is_ok());
        // Int coerces to Double.
        assert!(s.check(&tuple![1i64, 2i64]).is_ok());
        // Null is compatible with anything.
        assert!(s.check(&Tuple::new(vec![Value::Null, Value::Null])).is_ok());
        assert!(s.check(&tuple![1i64]).is_err());
        assert!(s.check(&tuple!["x", 2.0f64]).is_err());
    }

    #[test]
    fn tuple_byte_size() {
        let t = tuple![1i64, "ab"];
        assert_eq!(t.byte_size(), 2 + 8 + 6);
    }

    #[test]
    fn tuple_key_extraction() {
        let t = tuple![7i64, "k", 3i64];
        assert_eq!(t.key(&[1]), vec![Value::str("k")]);
        assert_eq!(t.key(&[0, 2]), vec![Value::Int(7), Value::Int(3)]);
    }
}
