//! Built-in scalar functions registered alongside user code.

use crate::error::{Result, RexError};
use crate::udf::{ClosureUdf, Registry};
use crate::value::{DataType, Value};
use std::sync::Arc;

fn need_double(v: &Value, f: &str) -> Result<f64> {
    v.as_double().ok_or_else(|| {
        RexError::Udf(format!("{f}: numeric argument required, got {}", v.data_type()))
    })
}

/// Register the standard scalar function library.
pub fn register_scalar_builtins(reg: &Registry) {
    reg.register_scalar(Arc::new(ClosureUdf::new(
        "abs",
        vec![DataType::Double],
        DataType::Double,
        |a| match &a[0] {
            Value::Int(i) => Ok(Value::Int(i.abs())),
            Value::Null => Ok(Value::Null),
            v => Ok(Value::Double(need_double(v, "abs")?.abs())),
        },
    )));
    reg.register_scalar(Arc::new(ClosureUdf::new(
        "sqrt",
        vec![DataType::Double],
        DataType::Double,
        |a| match &a[0] {
            Value::Null => Ok(Value::Null),
            v => Ok(Value::Double(need_double(v, "sqrt")?.sqrt())),
        },
    )));
    reg.register_scalar(Arc::new(ClosureUdf::new(
        "sqr",
        vec![DataType::Double],
        DataType::Double,
        |a| match &a[0] {
            Value::Null => Ok(Value::Null),
            v => {
                let d = need_double(v, "sqr")?;
                Ok(Value::Double(d * d))
            }
        },
    )));
    reg.register_scalar(Arc::new(ClosureUdf::new(
        "floor",
        vec![DataType::Double],
        DataType::Double,
        |a| match &a[0] {
            Value::Null => Ok(Value::Null),
            v => Ok(Value::Double(need_double(v, "floor")?.floor())),
        },
    )));
    reg.register_scalar(Arc::new(ClosureUdf::new(
        "ceil",
        vec![DataType::Double],
        DataType::Double,
        |a| match &a[0] {
            Value::Null => Ok(Value::Null),
            v => Ok(Value::Double(need_double(v, "ceil")?.ceil())),
        },
    )));
    reg.register_scalar(Arc::new(ClosureUdf::new(
        "least",
        vec![DataType::Any, DataType::Any],
        DataType::Any,
        |a| Ok(a.iter().min().cloned().unwrap_or(Value::Null)),
    )));
    reg.register_scalar(Arc::new(ClosureUdf::new(
        "greatest",
        vec![DataType::Any, DataType::Any],
        DataType::Any,
        |a| Ok(a.iter().max().cloned().unwrap_or(Value::Null)),
    )));
    reg.register_scalar(Arc::new(ClosureUdf::new(
        "concat",
        vec![DataType::Str, DataType::Str],
        DataType::Str,
        |a| {
            let mut s = String::new();
            for v in a {
                if !v.is_null() {
                    s.push_str(&v.to_string());
                }
            }
            Ok(Value::str(s))
        },
    )));
    reg.register_scalar(Arc::new(ClosureUdf::new(
        "coalesce",
        vec![DataType::Any, DataType::Any],
        DataType::Any,
        |a| Ok(a.iter().find(|v| !v.is_null()).cloned().unwrap_or(Value::Null)),
    )));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> Registry {
        Registry::with_builtins()
    }

    #[test]
    fn abs_preserves_int_type() {
        let r = reg();
        let abs = r.scalar("abs").unwrap();
        assert_eq!(abs.eval(&[Value::Int(-3)]).unwrap(), Value::Int(3));
        assert_eq!(abs.eval(&[Value::Double(-2.5)]).unwrap(), Value::Double(2.5));
        assert_eq!(abs.eval(&[Value::Null]).unwrap(), Value::Null);
    }

    #[test]
    fn sqrt_and_sqr() {
        let r = reg();
        assert_eq!(
            r.scalar("sqrt").unwrap().eval(&[Value::Double(9.0)]).unwrap(),
            Value::Double(3.0)
        );
        assert_eq!(r.scalar("sqr").unwrap().eval(&[Value::Int(3)]).unwrap(), Value::Double(9.0));
    }

    #[test]
    fn least_greatest_coalesce() {
        let r = reg();
        assert_eq!(
            r.scalar("least").unwrap().eval(&[Value::Int(3), Value::Int(1)]).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            r.scalar("greatest").unwrap().eval(&[Value::Int(3), Value::Int(1)]).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            r.scalar("coalesce").unwrap().eval(&[Value::Null, Value::Int(5)]).unwrap(),
            Value::Int(5)
        );
    }

    #[test]
    fn non_numeric_argument_errors() {
        let r = reg();
        assert!(r.scalar("sqrt").unwrap().eval(&[Value::str("x")]).is_err());
    }
}
