//! A small deterministic hasher for keyed engine state.
//!
//! The standard library's default `HashMap` hasher (SipHash with a random
//! per-process key) is a poor fit for the engine's hot paths: it is slow on
//! the short `Value`/`Tuple` keys that dominate join and group-by state,
//! and its randomization makes iteration order differ between runs, which
//! breaks bit-for-bit reproducibility of anything that observes map order.
//!
//! [`FxHasher`] is an in-tree reimplementation of the FxHash function used
//! by rustc (a multiply-xor-rotate over 8-byte words). It is:
//!
//! * **fast** — a handful of ALU ops per word, no key setup;
//! * **deterministic** — no per-process seed, so the same inputs produce
//!   the same table layout (and therefore the same iteration order) on
//!   every run;
//! * **not DoS-resistant** — it must only key state derived from data the
//!   engine already holds, never attacker-controlled protocol input.
//!
//! Deterministic iteration order is *arbitrary* order: callers whose
//! output is observable (view contents, delta reports) must still sort at
//! the emission boundary, which is exactly what `rex-views` does.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// The multiplier from FxHash (the golden-ratio constant for 64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash streaming hasher: `hash = (hash rol 5 ^ word) * SEED` per
/// 8-byte word.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Length tag so "ab" and "ab\0" don't collide trivially.
            buf[7] = rest.len() as u8;
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// Zero-sized `BuildHasher` producing [`FxHasher`]s — the per-map state
/// `HashMap` needs, with no per-process randomness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` keyed by [`FxHasher`]. Construct with `FxHashMap::default()`.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by [`FxHasher`]. Construct with `FxHashSet::default()`.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        let a = hash_of(b"orderkey=42");
        let b = hash_of(b"orderkey=42");
        assert_eq!(a, b);
        assert_ne!(a, hash_of(b"orderkey=43"));
    }

    #[test]
    fn short_tails_with_shared_prefix_differ() {
        assert_ne!(hash_of(b"ab"), hash_of(b"ab\0"));
        assert_ne!(hash_of(b""), hash_of(b"\0"));
    }

    #[test]
    fn tuple_keys_work_in_fx_maps() {
        let mut m: FxHashMap<crate::tuple::Tuple, i64> = FxHashMap::default();
        m.insert(tuple![1i64, "a"], 2);
        m.insert(tuple![2i64, "b"], 3);
        assert_eq!(m.get(&tuple![1i64, "a"]), Some(&2));
        let mut s: FxHashSet<Vec<crate::value::Value>> = FxHashSet::default();
        s.insert(tuple![7i64].key(&[0]));
        assert!(s.contains(&tuple![7i64].key(&[0])));
    }

    #[test]
    fn equal_int_and_double_values_share_a_bucket() {
        // Value's Hash promises Int(2) and Double(2.0) hash alike; an Fx
        // map must therefore find either spelling of the key.
        let mut m: FxHashMap<crate::value::Value, i64> = FxHashMap::default();
        m.insert(crate::value::Value::Int(2), 1);
        assert_eq!(m.get(&crate::value::Value::Double(2.0)), Some(&1));
    }
}
