//! A small deterministic hasher for keyed engine state.
//!
//! The standard library's default `HashMap` hasher (SipHash with a random
//! per-process key) is a poor fit for the engine's hot paths: it is slow on
//! the short `Value`/`Tuple` keys that dominate join and group-by state,
//! and its randomization makes iteration order differ between runs, which
//! breaks bit-for-bit reproducibility of anything that observes map order.
//!
//! [`FxHasher`] is an in-tree reimplementation of the FxHash function used
//! by rustc (a multiply-xor-rotate over 8-byte words). It is:
//!
//! * **fast** — a handful of ALU ops per word, no key setup;
//! * **deterministic** — no per-process seed, so the same inputs produce
//!   the same table layout (and therefore the same iteration order) on
//!   every run;
//! * **not DoS-resistant** — it must only key state derived from data the
//!   engine already holds, never attacker-controlled protocol input.
//!
//! Deterministic iteration order is *arbitrary* order: callers whose
//! output is observable (view contents, delta reports) must still sort at
//! the emission boundary, which is exactly what `rex-views` does.

use crate::tuple::Tuple;
use crate::value::Value;
use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hash, Hasher};

/// The multiplier from FxHash (the golden-ratio constant for 64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash streaming hasher: `hash = (hash rol 5 ^ word) * SEED` per
/// 8-byte word.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Length tag so "ab" and "ab\0" don't collide trivially.
            buf[7] = rest.len() as u8;
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// Zero-sized `BuildHasher` producing [`FxHasher`]s — the per-map state
/// `HashMap` needs, with no per-process randomness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` keyed by [`FxHasher`]. Construct with `FxHashMap::default()`.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by [`FxHasher`]. Construct with `FxHashSet::default()`.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// [`FxHasher`] hash of a sequence of values, by reference. This is the
/// *one* key-hash function shared by owned keys (`&Vec<Value>`) and
/// borrowed keys (`Tuple` column refs via
/// [`Tuple::hash_key`](crate::tuple::Tuple::hash_key)) so the two probe
/// the same buckets.
pub fn hash_values<'a, I: IntoIterator<Item = &'a Value>>(vals: I) -> u64 {
    let mut h = FxHasher::default();
    for v in vals {
        v.hash(&mut h);
    }
    h.finish()
}

/// Sparse-slot states of [`KeyedTable`]'s open-addressing probe array.
const EMPTY: u32 = u32::MAX;
const TOMB: u32 = u32::MAX - 1;

/// An open-addressing hash table from `Vec<Value>` keys to `V`, built for
/// the engine's per-row hot paths: lookups *borrow* their key from a
/// [`Tuple`]'s key columns (hash via [`Tuple::hash_key`], equality via
/// [`Tuple::key_eq`]), so probing allocates nothing; an owned key is
/// materialized only when a probe misses and inserts
/// ([`probe_or_insert_with`](KeyedTable::probe_or_insert_with)).
///
/// Layout: dense `entries` in insertion order (perturbed by removals via
/// `swap_remove`) plus a sparse power-of-two probe array of entry indices
/// with tombstoned deletion. Like the rest of [`hash`](crate::hash) the
/// table is deterministic — same inputs, same layout, same iteration
/// order — and **not** DoS-resistant.
#[derive(Debug, Clone)]
pub struct KeyedTable<V> {
    /// Probe array: `EMPTY`, `TOMB`, or an index into `entries`.
    slots: Vec<u32>,
    /// `(key hash, owned key, value)`, dense.
    entries: Vec<(u64, Vec<Value>, V)>,
    /// Live tombstones in `slots` (counted against the load factor).
    tombs: usize,
    /// Probe-path walks started (one per lookup/insert/removal).
    /// `Cell` because read paths take `&self`; two register increments per
    /// probe, cheap enough to keep always-on.
    probes: Cell<u64>,
    /// Extra probe steps beyond the first slot — the clustering signal.
    collisions: Cell<u64>,
}

impl<V> Default for KeyedTable<V> {
    fn default() -> Self {
        KeyedTable::new()
    }
}

/// Where a key lives — or would live — in the probe array.
enum Slot {
    /// Occupied by the probed key.
    Found(usize),
    /// First reusable slot (tombstone or empty) on the key's probe path.
    Free(usize),
}

/// Fold a hash into a probe-array start index. FxHash finishes with a
/// multiply, so its *high* bits carry the avalanche while its low bits can
/// collapse for structured keys (e.g. the f64 bit patterns `Value::Int`
/// hashes as, whose mantissa low bits are all zero). XOR-folding the high
/// half down before masking keeps linear probing from clustering — the
/// same reason hashbrown indexes by the top bits.
#[inline]
fn fold(hash: u64, mask: usize) -> usize {
    ((hash >> 32) ^ hash) as usize & mask
}

impl<V> KeyedTable<V> {
    /// An empty table (no allocation until the first insert).
    pub fn new() -> KeyedTable<V> {
        KeyedTable {
            slots: Vec::new(),
            entries: Vec::new(),
            tombs: 0,
            probes: Cell::new(0),
            collisions: Cell::new(0),
        }
    }

    /// Lifetime probe statistics: `(probes, collisions)`. A probe is one
    /// key lookup; a collision is one extra slot visited beyond the key's
    /// home slot. Telemetry harvests these once per query via
    /// [`Operator::stats_detail`](crate::operators::Operator::stats_detail).
    pub fn probe_stats(&self) -> (u64, u64) {
        (self.probes.get(), self.collisions.get())
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Remove every entry, keeping capacity.
    pub fn clear(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = EMPTY);
        self.entries.clear();
        self.tombs = 0;
    }

    /// Walk the probe path of `hash`, comparing candidate keys with `eq`.
    /// The table always keeps at least one `EMPTY` slot, so the walk
    /// terminates.
    fn locate(&self, hash: u64, mut eq: impl FnMut(&[Value]) -> bool) -> Slot {
        debug_assert!(!self.slots.is_empty());
        self.probes.set(self.probes.get() + 1);
        let mask = self.slots.len() - 1;
        let mut i = fold(hash, mask);
        let mut free = None;
        loop {
            match self.slots[i] {
                EMPTY => return Slot::Free(free.unwrap_or(i)),
                TOMB => {
                    if free.is_none() {
                        free = Some(i);
                    }
                }
                idx => {
                    let (h, key, _) = &self.entries[idx as usize];
                    if *h == hash && eq(key) {
                        return Slot::Found(i);
                    }
                }
            }
            self.collisions.set(self.collisions.get() + 1);
            i = (i + 1) & mask;
        }
    }

    fn found(&self, hash: u64, eq: impl FnMut(&[Value]) -> bool) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        match self.locate(hash, eq) {
            Slot::Found(slot) => Some(self.slots[slot] as usize),
            Slot::Free(_) => None,
        }
    }

    /// Grow/rebuild the probe array so at least one empty slot remains
    /// below a 7/8 load factor (tombstones count as load until a rebuild
    /// reclaims them).
    fn reserve_one(&mut self) {
        if (self.entries.len() + self.tombs + 1) * 8 <= self.slots.len() * 7 {
            return;
        }
        let cap = ((self.entries.len() + 1) * 2).next_power_of_two().max(8);
        self.slots = vec![EMPTY; cap];
        self.tombs = 0;
        let mask = cap - 1;
        for (idx, (h, _, _)) in self.entries.iter().enumerate() {
            let mut i = fold(*h, mask);
            while self.slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = idx as u32;
        }
    }

    /// Hint the CPU to pull the probe-array cache line for `hash` — the
    /// first line a [`probe_hashed`](KeyedTable::probe_hashed) for the
    /// same hash will touch. Batch probes that have hashed all their keys
    /// up front issue this a few keys ahead of the probe cursor, so the
    /// (random-access) slot reads overlap the (sequential) key walk
    /// instead of serializing on cache misses. A pure hint: no-op on an
    /// empty table and on architectures without a prefetch intrinsic.
    #[inline]
    pub fn prefetch(&self, hash: u64) {
        if self.slots.is_empty() {
            return;
        }
        let i = fold(hash, self.slots.len() - 1);
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `i` is masked into bounds; _mm_prefetch has no
        // side effects beyond the cache hint and accepts any address.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(self.slots.as_ptr().add(i).cast::<i8>(), _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = i;
    }

    /// Borrowed-key lookup: the value stored under `t`'s key columns.
    pub fn probe(&self, t: &Tuple, cols: &[usize]) -> Option<&V> {
        self.probe_hashed(t.hash_key(cols), t, cols)
    }

    /// [`probe`](KeyedTable::probe) with the key hash already computed —
    /// callers probing several tables with the same key (a join's two
    /// sides) hash once and reuse it.
    pub fn probe_hashed(&self, hash: u64, t: &Tuple, cols: &[usize]) -> Option<&V> {
        self.found(hash, |k| t.key_eq(cols, k)).map(|i| &self.entries[i].2)
    }

    /// Borrowed-key mutable lookup.
    pub fn probe_mut(&mut self, t: &Tuple, cols: &[usize]) -> Option<&mut V> {
        self.found(t.hash_key(cols), |k| t.key_eq(cols, k)).map(|i| &mut self.entries[i].2)
    }

    /// Borrowed-key upsert: the value under `t`'s key columns, inserting
    /// `init()` first when absent. The owned key is materialized (one
    /// `Vec<Value>` allocation) only on that first insert.
    pub fn probe_or_insert_with(
        &mut self,
        t: &Tuple,
        cols: &[usize],
        init: impl FnOnce() -> V,
    ) -> &mut V {
        self.probe_or_insert_hashed(t.hash_key(cols), t, cols, init)
    }

    /// [`probe_or_insert_with`](KeyedTable::probe_or_insert_with) with
    /// the key hash already computed.
    pub fn probe_or_insert_hashed(
        &mut self,
        hash: u64,
        t: &Tuple,
        cols: &[usize],
        init: impl FnOnce() -> V,
    ) -> &mut V {
        self.reserve_one();
        match self.locate(hash, |k| t.key_eq(cols, k)) {
            Slot::Found(slot) => {
                let idx = self.slots[slot] as usize;
                &mut self.entries[idx].2
            }
            Slot::Free(slot) => {
                if self.slots[slot] == TOMB {
                    self.tombs -= 1;
                }
                self.slots[slot] = self.entries.len() as u32;
                self.entries.push((hash, t.key(cols), init()));
                &mut self.entries.last_mut().expect("just pushed").2
            }
        }
    }

    /// Borrowed-key removal: drop and return the value under `t`'s key
    /// columns.
    pub fn remove_probe(&mut self, t: &Tuple, cols: &[usize]) -> Option<V> {
        if self.slots.is_empty() {
            return None;
        }
        match self.locate(t.hash_key(cols), |k| t.key_eq(cols, k)) {
            Slot::Found(slot) => Some(self.remove_slot(slot)),
            Slot::Free(_) => None,
        }
    }

    /// Owned-key lookup.
    pub fn get(&self, key: &[Value]) -> Option<&V> {
        self.found(hash_values(key), |k| k == key).map(|i| &self.entries[i].2)
    }

    /// Owned-key mutable lookup.
    pub fn get_mut(&mut self, key: &[Value]) -> Option<&mut V> {
        self.found(hash_values(key), |k| k == key).map(|i| &mut self.entries[i].2)
    }

    /// Owned-key insert; returns the previous value when the key existed.
    pub fn insert(&mut self, key: Vec<Value>, value: V) -> Option<V> {
        let hash = hash_values(&key);
        self.reserve_one();
        match self.locate(hash, |k| k == key.as_slice()) {
            Slot::Found(slot) => {
                let idx = self.slots[slot] as usize;
                Some(std::mem::replace(&mut self.entries[idx].2, value))
            }
            Slot::Free(slot) => {
                if self.slots[slot] == TOMB {
                    self.tombs -= 1;
                }
                self.slots[slot] = self.entries.len() as u32;
                self.entries.push((hash, key, value));
                None
            }
        }
    }

    /// Owned-key removal.
    pub fn remove(&mut self, key: &[Value]) -> Option<V> {
        if self.slots.is_empty() {
            return None;
        }
        match self.locate(hash_values(key), |k| k == key) {
            Slot::Found(slot) => Some(self.remove_slot(slot)),
            Slot::Free(_) => None,
        }
    }

    /// Remove the entry an occupied slot points at, tombstoning the slot
    /// and re-pointing whichever slot referenced the entry that
    /// `swap_remove` moved into the hole.
    fn remove_slot(&mut self, slot: usize) -> V {
        let idx = self.slots[slot] as usize;
        self.slots[slot] = TOMB;
        self.tombs += 1;
        let (_, _, value) = self.entries.swap_remove(idx);
        if idx < self.entries.len() {
            let moved_old = self.entries.len() as u32;
            let mask = self.slots.len() - 1;
            let mut i = fold(self.entries[idx].0, mask);
            while self.slots[i] != moved_old {
                i = (i + 1) & mask;
            }
            self.slots[i] = idx as u32;
        }
        value
    }

    /// Iterate `(key, value)` in deterministic (insertion-modulo-removal)
    /// order. Arbitrary order: sort at emission boundaries.
    pub fn iter(&self) -> impl Iterator<Item = (&[Value], &V)> {
        self.entries.iter().map(|(_, k, v)| (k.as_slice(), v))
    }

    /// Iterate values.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, _, v)| v)
    }

    /// Iterate values mutably.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.entries.iter_mut().map(|(_, _, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        let a = hash_of(b"orderkey=42");
        let b = hash_of(b"orderkey=42");
        assert_eq!(a, b);
        assert_ne!(a, hash_of(b"orderkey=43"));
    }

    #[test]
    fn short_tails_with_shared_prefix_differ() {
        assert_ne!(hash_of(b"ab"), hash_of(b"ab\0"));
        assert_ne!(hash_of(b""), hash_of(b"\0"));
    }

    #[test]
    fn tuple_keys_work_in_fx_maps() {
        let mut m: FxHashMap<crate::tuple::Tuple, i64> = FxHashMap::default();
        m.insert(tuple![1i64, "a"], 2);
        m.insert(tuple![2i64, "b"], 3);
        assert_eq!(m.get(&tuple![1i64, "a"]), Some(&2));
        let mut s: FxHashSet<Vec<crate::value::Value>> = FxHashSet::default();
        s.insert(tuple![7i64].key(&[0]));
        assert!(s.contains(&tuple![7i64].key(&[0])));
    }

    #[test]
    fn borrowed_and_owned_key_hashes_agree() {
        let t = tuple![7i64, "k", 3.5f64];
        for cols in [vec![0usize], vec![1, 2], vec![2, 0, 1], vec![]] {
            assert_eq!(t.hash_key(&cols), hash_values(&t.key(&cols)), "{cols:?}");
            assert!(t.key_eq(&cols, &t.key(&cols)));
        }
        assert!(!tuple![1i64, 2i64].key_eq(&[0], &tuple![2i64].key(&[0])));
    }

    #[test]
    fn keyed_table_probes_without_owned_keys() {
        let mut kt: KeyedTable<i64> = KeyedTable::new();
        let t = tuple![1i64, "x", 9i64];
        assert!(kt.probe(&t, &[0, 1]).is_none());
        *kt.probe_or_insert_with(&t, &[0, 1], || 0) += 5;
        *kt.probe_or_insert_with(&t, &[0, 1], || 0) += 2;
        assert_eq!(kt.probe(&t, &[0, 1]), Some(&7));
        // The same key spelled as an owned Vec<Value> finds the entry.
        assert_eq!(kt.get(&t.key(&[0, 1])), Some(&7));
        // Int/Double cross-type keys probe the same bucket.
        let dbl = tuple![1.0f64, "x"];
        assert_eq!(kt.probe(&dbl, &[0, 1]), Some(&7));
        assert_eq!(kt.len(), 1);
    }

    #[test]
    fn keyed_table_matches_hashmap_under_random_ops() {
        use crate::value::Value;
        // SplitMix64 so the sweep is reproducible without rex-data.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let mut kt: KeyedTable<u64> = KeyedTable::new();
        let mut oracle: std::collections::HashMap<Vec<Value>, u64> =
            std::collections::HashMap::new();
        for op in 0..4000u64 {
            let r = next();
            let t = tuple![(r % 37) as i64, ((r >> 8) % 11) as i64];
            let cols = [0usize, 1];
            match r % 4 {
                0 | 1 => {
                    *kt.probe_or_insert_with(&t, &cols, || 0) += op;
                    *oracle.entry(t.key(&cols)).or_insert(0) += op;
                }
                2 => {
                    assert_eq!(kt.remove_probe(&t, &cols), oracle.remove(&t.key(&cols)), "op {op}");
                }
                _ => {
                    assert_eq!(kt.probe(&t, &cols), oracle.get(&t.key(&cols)), "op {op}");
                }
            }
            assert_eq!(kt.len(), oracle.len(), "op {op}");
        }
        let mut from_kt: Vec<(Vec<Value>, u64)> =
            kt.iter().map(|(k, v)| (k.to_vec(), *v)).collect();
        let mut from_oracle: Vec<(Vec<Value>, u64)> = oracle.into_iter().collect();
        from_kt.sort();
        from_oracle.sort();
        assert_eq!(from_kt, from_oracle);
    }

    #[test]
    fn keyed_table_owned_api_and_clear() {
        let mut kt: KeyedTable<&str> = KeyedTable::new();
        assert_eq!(kt.insert(vec![crate::value::Value::Int(1)], "a"), None);
        assert_eq!(kt.insert(vec![crate::value::Value::Int(1)], "b"), Some("a"));
        *kt.get_mut(&[crate::value::Value::Int(1)]).unwrap() = "c";
        assert_eq!(kt.remove(&[crate::value::Value::Int(1)]), Some("c"));
        assert_eq!(kt.remove(&[crate::value::Value::Int(1)]), None);
        kt.insert(vec![crate::value::Value::Int(2)], "d");
        assert_eq!(kt.values().count(), 1);
        kt.clear();
        assert!(kt.is_empty());
        assert!(kt.get(&[crate::value::Value::Int(2)]).is_none());
    }

    #[test]
    fn probe_stats_count_lookups() {
        let mut kt: KeyedTable<i64> = KeyedTable::new();
        assert_eq!(kt.probe_stats(), (0, 0));
        for i in 0..100i64 {
            kt.insert(vec![crate::value::Value::Int(i)], i);
        }
        for i in 0..100i64 {
            assert!(kt.probe(&tuple![i], &[0]).is_some());
        }
        let (probes, _collisions) = kt.probe_stats();
        // At least one probe per insert and per lookup (rebuilds don't
        // walk `locate`, so the exact count is stable to reason about).
        assert!(probes >= 200, "probes={probes}");
    }

    #[test]
    fn equal_int_and_double_values_share_a_bucket() {
        // Value's Hash promises Int(2) and Double(2.0) hash alike; an Fx
        // map must therefore find either spelling of the key.
        let mut m: FxHashMap<crate::value::Value, i64> = FxHashMap::default();
        m.insert(crate::value::Value::Int(2), 1);
        assert_eq!(m.get(&crate::value::Value::Double(2.0)), Some(&1));
    }
}
