//! Cost model and execution metrics.
//!
//! The experiments report both wall-clock time and a deterministic
//! *simulated* time derived from this cost model. The model mirrors the
//! optimizer's view of the world (§5): operators consume CPU, scans consume
//! disk, rehash consumes network, and pipelined subplans overlap resources.
//! The same constants drive the Hadoop/HaLoop simulator so that REX-vs-
//! Hadoop comparisons are apples-to-apples.

/// Tunable cost constants, in abstract "cost units" (1 unit ≈ 1 µs of the
/// paper's 2.4 GHz Xeon). Defaults are calibrated so that the figure
/// reproductions land in the paper's reported ratio ranges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// CPU cost for an operator to process one delta.
    pub cpu_per_tuple: f64,
    /// Extra dispatch cost per UDF/UDA invocation (the "Java reflection"
    /// overhead of §4; amortized by input batching).
    pub udf_call_overhead: f64,
    /// Number of tuples per UDF batch (input batching, §4.2).
    pub udf_batch_size: usize,
    /// Cost of one hash-table probe/insert.
    pub hash_cost: f64,
    /// Network bandwidth in bytes per cost unit per node.
    pub network_bandwidth: f64,
    /// Disk bandwidth in bytes per cost unit (scans, spills, checkpoints).
    pub disk_bandwidth: f64,
    /// Per-tuple cost of converting to/from Hadoop text format ("wrap").
    pub wrap_format_cost: f64,
    /// Fraction of network/disk time hidden behind CPU by pipelining
    /// (§5 "Accounting for CPU-I/O overlap").
    pub overlap: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            cpu_per_tuple: 1.0,
            udf_call_overhead: 0.4,
            udf_batch_size: 8,
            hash_cost: 0.5,
            network_bandwidth: 200.0,
            disk_bandwidth: 400.0,
            wrap_format_cost: 6.0,
            overlap: 0.7,
        }
    }
}

impl CostModel {
    /// Effective per-call UDF overhead after input batching.
    pub fn amortized_udf_overhead(&self) -> f64 {
        self.udf_call_overhead / self.udf_batch_size.max(1) as f64
    }

    /// Time to ship `bytes` over the network from one node.
    pub fn net_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.network_bandwidth
    }

    /// Time to read/write `bytes` from/to local disk.
    pub fn disk_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.disk_bandwidth
    }

    /// Combine CPU time with I/O time under pipelined overlap: the I/O that
    /// cannot be hidden behind CPU is added (§5's utilization-vector
    /// combination, collapsed to a scalar for runtime accounting).
    pub fn combine(&self, cpu: f64, io: f64) -> f64 {
        let hidden = (io * self.overlap).min(cpu);
        cpu + (io - hidden)
    }
}

/// Counters accumulated during execution, per worker.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecMetrics {
    /// Deltas processed by operators.
    pub tuples_processed: u64,
    /// Deltas emitted by operators.
    pub deltas_emitted: u64,
    /// UDF/UDA invocations.
    pub udf_calls: u64,
    /// CPU cost units consumed.
    pub cpu_units: f64,
    /// Bytes sent over (simulated) network links.
    pub bytes_sent: u64,
    /// Bytes received over network links.
    pub bytes_received: u64,
    /// Bytes read from local storage.
    pub disk_read: u64,
    /// Bytes written to local storage (spills, checkpoints).
    pub disk_written: u64,
    /// Number of punctuation markers handled.
    pub punctuations: u64,
}

impl ExecMetrics {
    /// Merge another metrics record into this one.
    pub fn merge(&mut self, other: &ExecMetrics) {
        self.tuples_processed += other.tuples_processed;
        self.deltas_emitted += other.deltas_emitted;
        self.udf_calls += other.udf_calls;
        self.cpu_units += other.cpu_units;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.disk_read += other.disk_read;
        self.disk_written += other.disk_written;
        self.punctuations += other.punctuations;
    }

    /// Simulated completion time for this worker's share of a stratum.
    pub fn simulated_time(&self, model: &CostModel) -> f64 {
        let io = model.net_time(self.bytes_sent + self.bytes_received)
            + model.disk_time(self.disk_read + self.disk_written);
        model.combine(self.cpu_units, io)
    }
}

/// A per-stratum record of work, used to reproduce the per-iteration plots
/// (Figures 6–9).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StratumReport {
    /// Stratum number (0 = base case).
    pub stratum: u64,
    /// Deltas that crossed the fixpoint in this stratum (the Δᵢ set size).
    pub delta_set_size: u64,
    /// Max-over-workers simulated time for the stratum.
    pub simulated_time: f64,
    /// Wall-clock seconds for the stratum.
    pub wall_seconds: f64,
    /// Total bytes shipped between workers during the stratum.
    pub bytes_shipped: u64,
    /// Merged metrics across workers.
    pub metrics: ExecMetrics,
}

/// A full query execution trace: per-stratum reports plus totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryReport {
    /// One report per stratum, in order.
    pub strata: Vec<StratumReport>,
    /// Aggregate metrics.
    pub totals: ExecMetrics,
    /// Total simulated time.
    pub simulated_time: f64,
    /// Total wall-clock seconds.
    pub wall_seconds: f64,
}

impl QueryReport {
    /// Number of strata executed (including the base case).
    pub fn iterations(&self) -> usize {
        self.strata.len()
    }

    /// Cumulative simulated time after each stratum — the series the
    /// paper's cumulative-runtime plots show.
    pub fn cumulative_times(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.strata
            .iter()
            .map(|s| {
                acc += s.simulated_time;
                acc
            })
            .collect()
    }

    /// Average bandwidth per node in bytes per simulated time unit
    /// (Figure 11's metric).
    pub fn avg_bandwidth_per_node(&self, nodes: usize) -> f64 {
        if self.simulated_time <= 0.0 || nodes == 0 {
            return 0.0;
        }
        self.totals.bytes_sent as f64 / nodes as f64 / self.simulated_time
    }
}

/// The common read surface of an execution report, implemented by both the
/// single-node [`QueryReport`] and the cluster's `ClusterReport`, so that
/// callers (the `rex::Session` facade in particular) can consume results
/// from any engine through one interface.
pub trait ReportSummary {
    /// Number of strata executed (including the base case).
    fn iterations(&self) -> usize;
    /// Total simulated time in cost-model units.
    fn simulated_time(&self) -> f64;
    /// Total wall-clock seconds.
    fn wall_seconds(&self) -> f64;
    /// Aggregate metrics over the whole query (all workers).
    fn totals(&self) -> &ExecMetrics;
    /// The per-stratum trace.
    fn strata(&self) -> &[StratumReport];
}

impl ReportSummary for QueryReport {
    fn iterations(&self) -> usize {
        self.strata.len()
    }
    fn simulated_time(&self) -> f64 {
        self.simulated_time
    }
    fn wall_seconds(&self) -> f64 {
        self.wall_seconds
    }
    fn totals(&self) -> &ExecMetrics {
        &self.totals
    }
    fn strata(&self) -> &[StratumReport] {
        &self.strata
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_overlaps_io_with_cpu() {
        let m = CostModel { overlap: 1.0, ..CostModel::default() };
        // Fully-overlappable IO smaller than CPU disappears.
        assert_eq!(m.combine(10.0, 5.0), 10.0);
        // IO beyond CPU cannot be hidden.
        assert_eq!(m.combine(10.0, 25.0), 25.0);
        let none = CostModel { overlap: 0.0, ..CostModel::default() };
        assert_eq!(none.combine(10.0, 5.0), 15.0);
    }

    #[test]
    fn amortized_udf_overhead_divides_by_batch() {
        let m = CostModel { udf_call_overhead: 64.0, udf_batch_size: 64, ..CostModel::default() };
        assert_eq!(m.amortized_udf_overhead(), 1.0);
        let m0 = CostModel { udf_batch_size: 0, udf_call_overhead: 3.0, ..CostModel::default() };
        assert_eq!(m0.amortized_udf_overhead(), 3.0);
    }

    #[test]
    fn metrics_merge_adds_fields() {
        let mut a = ExecMetrics { tuples_processed: 1, cpu_units: 2.0, ..Default::default() };
        let b = ExecMetrics {
            tuples_processed: 3,
            cpu_units: 4.0,
            bytes_sent: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.tuples_processed, 4);
        assert_eq!(a.cpu_units, 6.0);
        assert_eq!(a.bytes_sent, 7);
    }

    #[test]
    fn cumulative_times_accumulate() {
        let mut q = QueryReport::default();
        for (i, t) in [1.0, 2.0, 3.0].into_iter().enumerate() {
            q.strata.push(StratumReport {
                stratum: i as u64,
                simulated_time: t,
                ..Default::default()
            });
        }
        assert_eq!(q.cumulative_times(), vec![1.0, 3.0, 6.0]);
        assert_eq!(q.iterations(), 3);
    }

    #[test]
    fn bandwidth_per_node() {
        let q = QueryReport {
            totals: ExecMetrics { bytes_sent: 1000, ..Default::default() },
            simulated_time: 10.0,
            ..Default::default()
        };
        assert_eq!(q.avg_bandwidth_per_node(10), 10.0);
        assert_eq!(q.avg_bandwidth_per_node(0), 0.0);
    }
}
