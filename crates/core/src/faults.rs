//! Process-wide failure/recovery telemetry — the counters behind the
//! paper's Figure 12 experiment (§4.3), surfaced on the same metrics
//! plane as query execution.
//!
//! Failures are injected in two layers that do not know about each other:
//! the BSP cluster runtime (a worker dies at a stratum boundary and the
//! query recovers by restart or incremental resume) and sharded view
//! maintenance (a worker's view shards die and survivors adopt them).
//! Both layers report here, and the server's Prometheus `METRICS`
//! endpoint renders the totals — so one scrape shows every recovery the
//! process has performed, whichever layer it happened in.
//!
//! Everything is a lock-free atomic: recording costs a handful of
//! `fetch_add`s, and reading never blocks a recovery in progress. The
//! counters are monotonic and process-global (tests assert deltas, not
//! absolutes). Latencies land in a fixed-bucket histogram with the
//! cumulative (`le`) semantics Prometheus expects.

use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (µs) of the recovery-latency histogram buckets; a final
/// `+Inf` bucket is implied. Recoveries span everything from adopting an
/// in-memory replica (µs) to replaying a base table (ms).
pub const RECOVERY_BUCKETS_US: [u64; 8] = [50, 100, 500, 1_000, 5_000, 25_000, 100_000, 500_000];

static EVENTS_TOTAL: AtomicU64 = AtomicU64::new(0);
static RESTARTS_TOTAL: AtomicU64 = AtomicU64::new(0);
static INCREMENTALS_TOTAL: AtomicU64 = AtomicU64::new(0);
static RECOVERED_BYTES: AtomicU64 = AtomicU64::new(0);
static LATENCY_SUM_US: AtomicU64 = AtomicU64::new(0);
static LATENCY_COUNT: AtomicU64 = AtomicU64::new(0);
static LATENCY_BUCKETS: [AtomicU64; RECOVERY_BUCKETS_US.len()] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Record one completed recovery: `incremental` says which strategy ran,
/// `latency_us` is wall time from detecting the death to the survivor
/// being ready to resume, `bytes` is the state volume moved (replica
/// adopted or base data replayed).
pub fn record_recovery(incremental: bool, latency_us: u64, bytes: u64) {
    EVENTS_TOTAL.fetch_add(1, Ordering::Relaxed);
    if incremental {
        INCREMENTALS_TOTAL.fetch_add(1, Ordering::Relaxed);
    } else {
        RESTARTS_TOTAL.fetch_add(1, Ordering::Relaxed);
    }
    RECOVERED_BYTES.fetch_add(bytes, Ordering::Relaxed);
    LATENCY_SUM_US.fetch_add(latency_us, Ordering::Relaxed);
    LATENCY_COUNT.fetch_add(1, Ordering::Relaxed);
    for (i, bound) in RECOVERY_BUCKETS_US.iter().enumerate() {
        if latency_us <= *bound {
            LATENCY_BUCKETS[i].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of the failure counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultCounters {
    /// Worker deaths observed (one per recovery, whatever the strategy).
    pub events_total: u64,
    /// Recoveries that discarded state and re-ran from scratch.
    pub restarts_total: u64,
    /// Recoveries that resumed from replicated state.
    pub incrementals_total: u64,
    /// Bytes of state moved to recover (replicas adopted + data replayed).
    pub recovered_bytes: u64,
}

/// Read the failure counters.
pub fn counters() -> FaultCounters {
    FaultCounters {
        events_total: EVENTS_TOTAL.load(Ordering::Relaxed),
        restarts_total: RESTARTS_TOTAL.load(Ordering::Relaxed),
        incrementals_total: INCREMENTALS_TOTAL.load(Ordering::Relaxed),
        recovered_bytes: RECOVERED_BYTES.load(Ordering::Relaxed),
    }
}

/// Read the recovery-latency histogram: per-bucket cumulative counts
/// (aligned with [`RECOVERY_BUCKETS_US`]), total µs, and observation
/// count. The `+Inf` bucket equals the count.
pub fn latency_histogram() -> ([u64; RECOVERY_BUCKETS_US.len()], u64, u64) {
    let mut buckets = [0u64; RECOVERY_BUCKETS_US.len()];
    for (b, a) in buckets.iter_mut().zip(&LATENCY_BUCKETS) {
        *b = a.load(Ordering::Relaxed);
    }
    (buckets, LATENCY_SUM_US.load(Ordering::Relaxed), LATENCY_COUNT.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_moves_every_counter() {
        let before = counters();
        let (hb, _, hc) = latency_histogram();
        record_recovery(true, 75, 1024);
        record_recovery(false, 600_000, 2048);
        let after = counters();
        assert_eq!(after.events_total - before.events_total, 2);
        assert_eq!(after.incrementals_total - before.incrementals_total, 1);
        assert_eq!(after.restarts_total - before.restarts_total, 1);
        assert_eq!(after.recovered_bytes - before.recovered_bytes, 3072);
        let (hb2, _, hc2) = latency_histogram();
        assert_eq!(hc2 - hc, 2);
        // 75µs lands in every bucket from le=100 up; 600ms only in +Inf.
        assert_eq!(hb2[1] - hb[1], 1);
        assert_eq!(hb2[hb2.len() - 1] - hb[hb.len() - 1], 1);
    }
}
