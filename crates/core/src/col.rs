//! Columnar batches for the vectorized hot path.
//!
//! A [`ColumnBatch`] is the column-major counterpart of the run-length
//! `Event::Rows` lane: per-column typed storage (no `Vec<Value>` of
//! enums on the common all-`Int`/all-`Double` columns), a per-column
//! validity vector for NULLs, and a batch-level *selection vector* so
//! filters never move data — they only narrow the selection.
//!
//! The invariant that makes the lane safe to enable by default is
//! **exact round-tripping**: `ColumnBatch::try_from_rows(rows)` followed
//! by [`ColumnBatch::to_rows`] reproduces the input tuples bit-for-bit.
//! Because `Value`'s total order makes `Int(3) == Double(3.0)` while the
//! two display (and type) differently, a column is given typed storage
//! only when *every* value is the same variant (or NULL); any mixing —
//! including an `Int`/`Double` mix — falls back to a [`ColumnData::Generic`]
//! column that stores the original `Value`s verbatim.
//!
//! The vectorized kernels ([`ColumnBatch::filter`],
//! [`ColumnBatch::project`]) specialize the hot typed shapes
//! (`Int OP Int`, `Double OP Double`) with loops that are equal to
//! `Value::cmp` / `Value` arithmetic by inspection, and evaluate every
//! other shape through the *same* `eval_bin` the row interpreter uses on
//! stack-constructed `Value`s — identical semantics by construction.

use crate::error::Result;
use crate::expr::{cmp_bool, eval_bin, BinOp, CompiledExpr};
use crate::tuple::Tuple;
use crate::udf::Registry;
use crate::value::Value;
use std::sync::Arc;

/// Typed storage of one column. Invalid (NULL) positions hold an
/// arbitrary placeholder in the typed vectors; [`ColumnData::Generic`]
/// stores NULLs inline and never carries a validity vector.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// All values are `Value::Int` (or NULL).
    Int(Vec<i64>),
    /// All values are `Value::Double` (or NULL).
    Double(Vec<f64>),
    /// All values are `Value::Bool` (or NULL).
    Bool(Vec<bool>),
    /// All values are `Value::Str` (or NULL).
    Str(Vec<Arc<str>>),
    /// Mixed variants, lists, or an all-NULL column: original values.
    Generic(Vec<Value>),
}

/// One column: typed data plus an optional validity vector (`None` means
/// every position is valid; `false` marks NULL).
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
    validity: Option<Vec<bool>>,
}

impl Column {
    /// Build a column from owned values, choosing typed storage when the
    /// column is variant-homogeneous (NULLs allowed) and falling back to
    /// [`ColumnData::Generic`] otherwise.
    pub fn from_values(values: Vec<Value>) -> Column {
        #[derive(PartialEq, Clone, Copy)]
        enum Kind {
            Int,
            Double,
            Bool,
            Str,
        }
        let mut kind: Option<Kind> = None;
        let mut any_null = false;
        for v in &values {
            let k = match v {
                Value::Null => {
                    any_null = true;
                    continue;
                }
                Value::Int(_) => Kind::Int,
                Value::Double(_) => Kind::Double,
                Value::Bool(_) => Kind::Bool,
                Value::Str(_) => Kind::Str,
                Value::List(_) => {
                    return Column { data: ColumnData::Generic(values), validity: None }
                }
            };
            match kind {
                None => kind = Some(k),
                Some(prev) if prev == k => {}
                Some(_) => return Column { data: ColumnData::Generic(values), validity: None },
            }
        }
        let Some(kind) = kind else {
            // Empty or all-NULL: keep the originals.
            return Column { data: ColumnData::Generic(values), validity: None };
        };
        let validity = any_null.then(|| values.iter().map(|v| !v.is_null()).collect());
        let data = match kind {
            Kind::Int => ColumnData::Int(
                values.iter().map(|v| if let Value::Int(i) = v { *i } else { 0 }).collect(),
            ),
            Kind::Double => ColumnData::Double(
                values.iter().map(|v| if let Value::Double(d) = v { *d } else { 0.0 }).collect(),
            ),
            Kind::Bool => ColumnData::Bool(
                values.iter().map(|v| if let Value::Bool(b) = v { *b } else { false }).collect(),
            ),
            Kind::Str => {
                let empty: Arc<str> = Arc::from("");
                ColumnData::Str(
                    values
                        .into_iter()
                        .map(|v| if let Value::Str(s) = v { s } else { empty.clone() })
                        .collect(),
                )
            }
        };
        Column { data, validity }
    }

    /// Physical length.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.len(),
            ColumnData::Double(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Generic(v) => v.len(),
        }
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The typed payload.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Whether position `row` is valid (non-NULL).
    #[inline]
    pub fn is_valid(&self, row: usize) -> bool {
        match (&self.validity, &self.data) {
            (Some(v), _) => v[row],
            (None, ColumnData::Generic(g)) => !g[row].is_null(),
            (None, _) => true,
        }
    }

    /// Reconstruct the [`Value`] at `row` (exact: NULLs and variants are
    /// preserved).
    #[inline]
    pub fn value_at(&self, row: usize) -> Value {
        if let Some(v) = &self.validity {
            if !v[row] {
                return Value::Null;
            }
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Double(v) => Value::Double(v[row]),
            ColumnData::Bool(v) => Value::Bool(v[row]),
            ColumnData::Str(v) => Value::Str(v[row].clone()),
            ColumnData::Generic(v) => v[row].clone(),
        }
    }

    /// Byte size of the value at `row` under the row lane's accounting.
    #[inline]
    fn value_byte_size(&self, row: usize) -> usize {
        if let Some(v) = &self.validity {
            if !v[row] {
                return 1; // NULL
            }
        }
        match &self.data {
            ColumnData::Int(_) | ColumnData::Double(_) => 8,
            ColumnData::Bool(_) => 1,
            ColumnData::Str(v) => 4 + v[row].len(),
            ColumnData::Generic(v) => v[row].byte_size(),
        }
    }

    /// Gather `rows` (physical indices) into a new compacted column.
    fn gather(&self, rows: &[u32]) -> Column {
        let validity = self
            .validity
            .as_ref()
            .map(|v| rows.iter().map(|&r| v[r as usize]).collect::<Vec<bool>>());
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(rows.iter().map(|&r| v[r as usize]).collect()),
            ColumnData::Double(v) => {
                ColumnData::Double(rows.iter().map(|&r| v[r as usize]).collect())
            }
            ColumnData::Bool(v) => ColumnData::Bool(rows.iter().map(|&r| v[r as usize]).collect()),
            ColumnData::Str(v) => {
                ColumnData::Str(rows.iter().map(|&r| v[r as usize].clone()).collect())
            }
            ColumnData::Generic(v) => {
                ColumnData::Generic(rows.iter().map(|&r| v[r as usize].clone()).collect())
            }
        };
        Column { data, validity }
    }
}

/// A column-major batch with a selection vector. The unit of traffic on
/// the columnar lane (`Event::Cols`).
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    cols: Vec<Column>,
    /// Physical row count (every column has this length).
    rows: usize,
    /// Selected physical row indices, in row order; `None` = all rows.
    sel: Option<Vec<u32>>,
}

impl ColumnBatch {
    /// Transpose row-major tuples into a columnar batch. Returns the rows
    /// back (`Err`) when they cannot be columnarized — a ragged batch
    /// (mixed arities) stays on the row lane.
    pub fn try_from_rows(rows: Vec<Tuple>) -> std::result::Result<ColumnBatch, Vec<Tuple>> {
        let Some(first) = rows.first() else {
            return Ok(ColumnBatch { cols: Vec::new(), rows: 0, sel: None });
        };
        let width = first.arity();
        if rows.iter().any(|t| t.arity() != width) {
            return Err(rows);
        }
        let n = rows.len();
        let cols = (0..width)
            .map(|c| {
                let mut vals = Vec::with_capacity(n);
                for t in &rows {
                    vals.push(t.get(c).clone());
                }
                Column::from_values(vals)
            })
            .collect();
        Ok(ColumnBatch { cols, rows: n, sel: None })
    }

    /// Build directly from compacted columns (projection output). All
    /// columns must share one length.
    pub fn from_columns(cols: Vec<Column>, rows: usize) -> ColumnBatch {
        debug_assert!(cols.iter().all(|c| c.len() == rows));
        ColumnBatch { cols, rows, sel: None }
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Number of *selected* rows.
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.rows,
        }
    }

    /// True when no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The columns.
    pub fn columns(&self) -> &[Column] {
        &self.cols
    }

    /// Selected physical row indices, materialized.
    fn selection(&self) -> Vec<u32> {
        match &self.sel {
            Some(s) => s.clone(),
            None => (0..self.rows as u32).collect(),
        }
    }

    /// Materialize the selected rows as tuples, in row order — the exact
    /// inverse of [`try_from_rows`](ColumnBatch::try_from_rows) when the
    /// selection is untouched.
    pub fn to_rows(&self) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(self.len());
        let mut scratch: Vec<Value> = Vec::with_capacity(self.cols.len());
        let mut emit = |row: usize, scratch: &mut Vec<Value>| {
            scratch.clear();
            for c in &self.cols {
                scratch.push(c.value_at(row));
            }
            out.push(Tuple::from_slice(scratch));
        };
        match &self.sel {
            Some(s) => {
                for &r in s {
                    emit(r as usize, &mut scratch);
                }
            }
            None => {
                for r in 0..self.rows {
                    emit(r, &mut scratch);
                }
            }
        }
        out
    }

    /// Wire size at parity with the row lane: each selected row accounts
    /// as one `+()` delta would.
    pub fn byte_size(&self) -> usize {
        let row_size =
            |r: usize| 1 + 2 + self.cols.iter().map(|c| c.value_byte_size(r)).sum::<usize>();
        8 + match &self.sel {
            Some(s) => s.iter().map(|&r| row_size(r as usize)).sum::<usize>(),
            None => (0..self.rows).map(row_size).sum::<usize>(),
        }
    }

    /// Vectorized filter: narrow the selection to rows where `pred` is
    /// true (SQL WHERE semantics — NULL is false). The typed kernels and
    /// the `eval_bin` fallback agree with the row path by construction;
    /// predicate shapes the kernels cannot handle (UDFs, AND/OR chains)
    /// are evaluated row-at-a-time on gathered tuples.
    pub fn filter(&mut self, pred: &CompiledExpr, reg: &Registry) -> Result<()> {
        let sel = self.selection();
        let mut keep = Vec::with_capacity(sel.len());
        match pred {
            CompiledExpr::BinColLit(op, i, lit) if op.is_predicate() && *i < self.cols.len() => {
                filter_col_lit(&self.cols[*i], *op, lit, &sel, &mut keep)?;
            }
            CompiledExpr::BinColCol(op, i, j)
                if op.is_predicate() && *i < self.cols.len() && *j < self.cols.len() =>
            {
                filter_col_col(&self.cols[*i], &self.cols[*j], *op, &sel, &mut keep)?;
            }
            _ => {
                // Row fallback: gather each candidate and run the row
                // predicate (identical to the row lane, including UDFs).
                let mut scratch: Vec<Value> = Vec::with_capacity(self.cols.len());
                for &r in &sel {
                    scratch.clear();
                    for c in &self.cols {
                        scratch.push(c.value_at(r as usize));
                    }
                    let t = Tuple::from_slice(&scratch);
                    if pred.eval_predicate(&t, reg)? {
                        keep.push(r);
                    }
                }
            }
        }
        self.sel = Some(keep);
        Ok(())
    }

    /// Vectorized projection: evaluate `exprs` column-at-a-time over the
    /// selected rows into a new compacted batch (selection reset).
    pub fn project(&self, exprs: &[CompiledExpr], reg: &Registry) -> Result<ColumnBatch> {
        let sel = self.selection();
        let n = sel.len();
        let mut out = Vec::with_capacity(exprs.len());
        for e in exprs {
            let col = match e {
                CompiledExpr::Col(i) if *i < self.cols.len() => self.cols[*i].gather(&sel),
                CompiledExpr::Lit(v) => Column::from_values(vec![v.clone(); n]),
                CompiledExpr::BinColLit(op, i, lit) if *i < self.cols.len() => {
                    let c = &self.cols[*i];
                    let mut vals = Vec::with_capacity(n);
                    for &r in &sel {
                        vals.push(eval_bin(*op, &c.value_at(r as usize), lit)?);
                    }
                    Column::from_values(vals)
                }
                CompiledExpr::BinColCol(op, i, j)
                    if *i < self.cols.len() && *j < self.cols.len() =>
                {
                    let (ci, cj) = (&self.cols[*i], &self.cols[*j]);
                    let mut vals = Vec::with_capacity(n);
                    for &r in &sel {
                        vals.push(eval_bin(
                            *op,
                            &ci.value_at(r as usize),
                            &cj.value_at(r as usize),
                        )?);
                    }
                    Column::from_values(vals)
                }
                // Anything else (UDFs, CASE, nested arithmetic, and
                // out-of-range columns, which must error like the row
                // path): gather the row and run the interpreter.
                _ => {
                    let mut vals = Vec::with_capacity(n);
                    let mut scratch: Vec<Value> = Vec::with_capacity(self.cols.len());
                    for &r in &sel {
                        scratch.clear();
                        for c in &self.cols {
                            scratch.push(c.value_at(r as usize));
                        }
                        let t = Tuple::from_slice(&scratch);
                        vals.push(e.eval(&t, reg)?);
                    }
                    Column::from_values(vals)
                }
            };
            out.push(col);
        }
        Ok(ColumnBatch { cols: out, rows: n, sel: None })
    }
}

/// `column OP literal` comparison kernel. Pushes passing physical indices
/// onto `keep`.
fn filter_col_lit(
    c: &Column,
    op: BinOp,
    lit: &Value,
    sel: &[u32],
    keep: &mut Vec<u32>,
) -> Result<()> {
    if lit.is_null() {
        return Ok(()); // comparison with NULL is NULL → false for every row
    }
    match (c.data(), lit) {
        // Int vs Int: Value::cmp on two Ints is i64::cmp.
        (ColumnData::Int(v), Value::Int(l)) => {
            let pass = int_cmp_fn(op);
            match &c.validity {
                None => {
                    for &r in sel {
                        if pass(v[r as usize], *l) {
                            keep.push(r);
                        }
                    }
                }
                Some(valid) => {
                    for &r in sel {
                        if valid[r as usize] && pass(v[r as usize], *l) {
                            keep.push(r);
                        }
                    }
                }
            }
        }
        // Double vs Double: Value::cmp on two Doubles is f64::total_cmp.
        (ColumnData::Double(v), Value::Double(l)) => {
            for &r in sel {
                if c.is_valid(r as usize) && ord_passes(op, v[r as usize].total_cmp(l)) {
                    keep.push(r);
                }
            }
        }
        // Everything else (cross-type numerics with their exact-
        // representability tiebreak, strings, generic columns): stack
        // values through the shared comparison.
        _ => {
            for &r in sel {
                if cmp_bool(op, &c.value_at(r as usize), lit)? {
                    keep.push(r);
                }
            }
        }
    }
    Ok(())
}

/// `column OP column` comparison kernel.
fn filter_col_col(
    ci: &Column,
    cj: &Column,
    op: BinOp,
    sel: &[u32],
    keep: &mut Vec<u32>,
) -> Result<()> {
    match (ci.data(), cj.data()) {
        (ColumnData::Int(a), ColumnData::Int(b)) => {
            let pass = int_cmp_fn(op);
            for &r in sel {
                let r = r as usize;
                if ci.is_valid(r) && cj.is_valid(r) && pass(a[r], b[r]) {
                    keep.push(r as u32);
                }
            }
        }
        (ColumnData::Double(a), ColumnData::Double(b)) => {
            for &r in sel {
                let r = r as usize;
                if ci.is_valid(r) && cj.is_valid(r) && ord_passes(op, a[r].total_cmp(&b[r])) {
                    keep.push(r as u32);
                }
            }
        }
        _ => {
            for &r in sel {
                let r = r as usize;
                if cmp_bool(op, &ci.value_at(r), &cj.value_at(r))? {
                    keep.push(r as u32);
                }
            }
        }
    }
    Ok(())
}

/// The i64 comparison for a predicate op.
#[inline]
fn int_cmp_fn(op: BinOp) -> fn(i64, i64) -> bool {
    match op {
        BinOp::Eq => |a, b| a == b,
        BinOp::Ne => |a, b| a != b,
        BinOp::Lt => |a, b| a < b,
        BinOp::Le => |a, b| a <= b,
        BinOp::Gt => |a, b| a > b,
        BinOp::Ge => |a, b| a >= b,
        _ => unreachable!("kernel only handles comparison predicates"),
    }
}

/// Whether an ordering satisfies a comparison op.
#[inline]
fn ord_passes(op: BinOp, o: std::cmp::Ordering) -> bool {
    match op {
        BinOp::Eq => o.is_eq(),
        BinOp::Ne => o.is_ne(),
        BinOp::Lt => o.is_lt(),
        BinOp::Le => o.is_le(),
        BinOp::Gt => o.is_gt(),
        BinOp::Ge => o.is_ge(),
        _ => unreachable!("kernel only handles comparison predicates"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::tuple;

    fn reg() -> Registry {
        Registry::with_builtins()
    }

    #[test]
    fn round_trip_is_exact() {
        let rows = vec![
            tuple![1i64, 2.5f64, "a"],
            Tuple::new(vec![Value::Null, Value::Double(f64::NAN), Value::str("b")]),
            tuple![3i64, -0.0f64, "c"],
        ];
        let b = ColumnBatch::try_from_rows(rows.clone()).unwrap();
        let back = b.to_rows();
        assert_eq!(back.len(), rows.len());
        for (a, b) in rows.iter().zip(&back) {
            // Bit-exactness, not just Eq (NaN == NaN under total order,
            // but we want the very same bits and variants).
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn mixed_int_double_column_stays_generic() {
        // Int(2) == Double(2.0) under Value's order; typed storage would
        // lose which variant each row had.
        let rows = vec![tuple![2i64], Tuple::new(vec![Value::Double(2.0)])];
        let b = ColumnBatch::try_from_rows(rows.clone()).unwrap();
        assert!(matches!(b.columns()[0].data(), ColumnData::Generic(_)));
        let back = b.to_rows();
        assert!(matches!(back[0].get(0), Value::Int(2)));
        assert!(matches!(back[1].get(0), Value::Double(_)));
    }

    #[test]
    fn ragged_batch_is_refused() {
        let rows = vec![tuple![1i64], tuple![1i64, 2i64]];
        assert!(ColumnBatch::try_from_rows(rows).is_err());
    }

    #[test]
    fn vectorized_filter_matches_row_path() {
        let r = reg();
        let rows: Vec<Tuple> = (0..100i64)
            .map(|i| {
                if i % 7 == 0 {
                    Tuple::new(vec![Value::Null, Value::Double(i as f64)])
                } else {
                    tuple![i, (i as f64) / 2.0]
                }
            })
            .collect();
        for pred in [
            Expr::col(0).gt(Expr::lit(40i64)),
            Expr::col(1).bin(BinOp::Le, Expr::lit(25.0f64)),
            Expr::col(0).bin(BinOp::Ne, Expr::col(0)),
            Expr::col(0).gt(Expr::lit(10.5f64)), // cross-type numeric
        ] {
            let compiled = CompiledExpr::compile(&pred);
            let mut b = ColumnBatch::try_from_rows(rows.clone()).unwrap();
            b.filter(&compiled, &r).unwrap();
            let got = b.to_rows();
            let want: Vec<Tuple> =
                rows.iter().filter(|t| compiled.eval_predicate(t, &r).unwrap()).cloned().collect();
            assert_eq!(got, want, "predicate {pred:?}");
        }
    }

    #[test]
    fn chained_filters_narrow_selection() {
        let r = reg();
        let rows: Vec<Tuple> = (0..50i64).map(|i| tuple![i, i * 2]).collect();
        let mut b = ColumnBatch::try_from_rows(rows).unwrap();
        b.filter(&CompiledExpr::compile(&Expr::col(0).gt(Expr::lit(10i64))), &r).unwrap();
        b.filter(&CompiledExpr::compile(&Expr::col(1).bin(BinOp::Lt, Expr::lit(60i64))), &r)
            .unwrap();
        let got = b.to_rows();
        let want: Vec<Tuple> = (11..30i64).map(|i| tuple![i, i * 2]).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn vectorized_project_matches_row_path() {
        let r = reg();
        let rows: Vec<Tuple> = (0..40i64)
            .map(|i| {
                if i == 13 {
                    Tuple::new(vec![Value::Null, Value::Int(i)])
                } else {
                    tuple![i, i + 1]
                }
            })
            .collect();
        let exprs = [
            Expr::col(1),
            Expr::col(0).bin(BinOp::Add, Expr::lit(100i64)),
            Expr::col(0).bin(BinOp::Mul, Expr::col(1)),
            Expr::col(0).bin(BinOp::Div, Expr::lit(0i64)), // division by zero → NULL
            Expr::lit("tag"),
        ];
        let compiled: Vec<CompiledExpr> = exprs.iter().map(CompiledExpr::compile).collect();
        let b = ColumnBatch::try_from_rows(rows.clone()).unwrap();
        let projected = b.project(&compiled, &r).unwrap();
        let got = projected.to_rows();
        let want: Vec<Tuple> = rows
            .iter()
            .map(|t| {
                let vals: Vec<Value> = exprs.iter().map(|e| e.eval(t, &r).unwrap()).collect();
                Tuple::from_slice(&vals)
            })
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn byte_size_matches_rows_parity() {
        let rows = vec![tuple![1i64, "ab"], tuple![2i64, "cdef"]];
        let expect = 8 + rows.iter().map(|t| 1 + t.byte_size()).sum::<usize>();
        let b = ColumnBatch::try_from_rows(rows).unwrap();
        assert_eq!(b.byte_size(), expect);
    }

    #[test]
    fn filter_by_null_literal_selects_nothing() {
        let r = reg();
        let rows = vec![tuple![1i64], tuple![2i64]];
        let mut b = ColumnBatch::try_from_rows(rows).unwrap();
        let pred = CompiledExpr::BinColLit(BinOp::Eq, 0, Value::Null);
        b.filter(&pred, &r).unwrap();
        assert!(b.is_empty());
    }
}
