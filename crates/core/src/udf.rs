//! User-defined code: scalar UDFs, user-defined aggregators (UDAs), and the
//! registry that resolves them by name.
//!
//! REX "can directly use Java class and jar files without requiring them to
//! be registered using SQL DDL" and invokes them via reflection (§4). The
//! Rust analogue is a name-keyed registry of trait objects; the per-call
//! reflection overhead that the paper measures (Figure 4: UDFs within 10% of
//! built-ins) is modelled by a configurable dispatch cost in the
//! [`CostModel`](crate::metrics::CostModel).

use crate::error::{Result, RexError};
use crate::handlers::{AggHandler, JoinHandler, WhileHandler};
use crate::value::{DataType, Value};
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::RwLock;

/// Programmer-supplied cost hints (§5.1): "functions describing the 'big-O'
/// relationship between the main input parameters and the resulting costs."
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostHint {
    /// Estimated CPU cost per input tuple, in abstract cost units.
    pub per_tuple_cost: f64,
    /// For predicates: the fraction of tuples that pass. For table-valued
    /// functions: the output/input cardinality ratio (productivity).
    pub selectivity: f64,
}

impl CostHint {
    /// A cheap, moderately-selective default used when calibration has not
    /// yet run.
    pub fn default_hint() -> CostHint {
        CostHint { per_tuple_cost: 1.0, selectivity: 0.5 }
    }

    /// The rank of a predicate per Hellerstein & Stonebraker's predicate
    /// migration: cost / (1 - selectivity). Cheaper and more selective
    /// predicates have lower rank and should be applied first (§5.1).
    pub fn rank(&self) -> f64 {
        let drop_rate = (1.0 - self.selectivity).max(1e-9);
        self.per_tuple_cost / drop_rate
    }
}

/// A scalar user-defined function.
pub trait ScalarUdf: Send + Sync {
    /// The name the function is registered (and referenced in RQL) under.
    fn name(&self) -> &str;
    /// Input parameter types (`inTypes` in the paper's Java convention).
    fn arg_types(&self) -> Vec<DataType>;
    /// Result type (`outTypes`).
    fn return_type(&self) -> DataType;
    /// Evaluate the function.
    fn eval(&self, args: &[Value]) -> Result<Value>;
    /// Deterministic functions may be cached by the engine (§5.1
    /// "Caching"). Volatile functions must return `false`.
    fn deterministic(&self) -> bool {
        true
    }
    /// Optional programmer-supplied cost hint (§5.1).
    fn cost_hint(&self) -> Option<CostHint> {
        None
    }
}

/// The boxed evaluation closure of a [`ClosureUdf`].
pub type ScalarFn = Arc<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// A scalar UDF built from a closure; convenient for tests and examples.
pub struct ClosureUdf {
    name: String,
    args: Vec<DataType>,
    ret: DataType,
    deterministic: bool,
    hint: Option<CostHint>,
    f: ScalarFn,
}

impl ClosureUdf {
    /// Create a deterministic closure UDF.
    pub fn new(
        name: impl Into<String>,
        args: Vec<DataType>,
        ret: DataType,
        f: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) -> ClosureUdf {
        ClosureUdf { name: name.into(), args, ret, deterministic: true, hint: None, f: Arc::new(f) }
    }

    /// Mark the function volatile (uncacheable).
    pub fn volatile(mut self) -> Self {
        self.deterministic = false;
        self
    }

    /// Attach a cost hint.
    pub fn with_hint(mut self, hint: CostHint) -> Self {
        self.hint = Some(hint);
        self
    }
}

impl ScalarUdf for ClosureUdf {
    fn name(&self) -> &str {
        &self.name
    }
    fn arg_types(&self) -> Vec<DataType> {
        self.args.clone()
    }
    fn return_type(&self) -> DataType {
        self.ret
    }
    fn eval(&self, args: &[Value]) -> Result<Value> {
        if args.len() != self.args.len() {
            return Err(RexError::Udf(format!(
                "{} expects {} args, got {}",
                self.name,
                self.args.len(),
                args.len()
            )));
        }
        (self.f)(args)
    }
    fn deterministic(&self) -> bool {
        self.deterministic
    }
    fn cost_hint(&self) -> Option<CostHint> {
        self.hint
    }
}

/// The registry of user-defined code, shared across the engine.
///
/// Strong typing is enforced at plan time by the analyzer; handlers are
/// looked up by name the way REX resolves Java classes by reflection.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RwLock<RegistryInner>>,
}

#[derive(Default)]
struct RegistryInner {
    scalars: HashMap<String, Arc<dyn ScalarUdf>>,
    aggs: HashMap<String, Arc<dyn AggHandler>>,
    joins: HashMap<String, Arc<dyn JoinHandler>>,
    whiles: HashMap<String, Arc<dyn WhileHandler>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A registry pre-populated with the built-in aggregates (sum, count,
    /// min, max, avg) and standard scalar functions (abs, sqrt, ...).
    pub fn with_builtins() -> Registry {
        let reg = Registry::new();
        crate::aggregates::register_builtins(&reg);
        crate::builtins::register_scalar_builtins(&reg);
        reg
    }

    /// Register a scalar UDF. Overwrites any existing binding of that name.
    pub fn register_scalar(&self, udf: Arc<dyn ScalarUdf>) {
        let name = udf.name().to_ascii_lowercase();
        self.inner.write().unwrap().scalars.insert(name, udf);
    }

    /// Register an aggregate handler (UDA).
    pub fn register_agg(&self, name: impl Into<String>, h: Arc<dyn AggHandler>) {
        self.inner.write().unwrap().aggs.insert(name.into().to_ascii_lowercase(), h);
    }

    /// Register a join delta handler.
    pub fn register_join(&self, name: impl Into<String>, h: Arc<dyn JoinHandler>) {
        self.inner.write().unwrap().joins.insert(name.into().to_ascii_lowercase(), h);
    }

    /// Register a while/fixpoint delta handler.
    pub fn register_while(&self, name: impl Into<String>, h: Arc<dyn WhileHandler>) {
        self.inner.write().unwrap().whiles.insert(name.into().to_ascii_lowercase(), h);
    }

    /// Resolve a scalar UDF.
    pub fn scalar(&self, name: &str) -> Result<Arc<dyn ScalarUdf>> {
        self.inner
            .read()
            .unwrap()
            .scalars
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| RexError::Udf(format!("unknown scalar function: {name}")))
    }

    /// Resolve an aggregate handler.
    pub fn agg(&self, name: &str) -> Result<Arc<dyn AggHandler>> {
        self.inner
            .read()
            .unwrap()
            .aggs
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| RexError::Udf(format!("unknown aggregate: {name}")))
    }

    /// Resolve a join delta handler.
    pub fn join(&self, name: &str) -> Result<Arc<dyn JoinHandler>> {
        self.inner
            .read()
            .unwrap()
            .joins
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| RexError::Udf(format!("unknown join handler: {name}")))
    }

    /// Resolve a while delta handler.
    pub fn while_handler(&self, name: &str) -> Result<Arc<dyn WhileHandler>> {
        self.inner
            .read()
            .unwrap()
            .whiles
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| RexError::Udf(format!("unknown while handler: {name}")))
    }

    /// Whether a scalar function of this name exists.
    pub fn has_scalar(&self, name: &str) -> bool {
        self.inner.read().unwrap().scalars.contains_key(&name.to_ascii_lowercase())
    }

    /// Whether an aggregate of this name exists.
    pub fn has_agg(&self, name: &str) -> bool {
        self.inner.read().unwrap().aggs.contains_key(&name.to_ascii_lowercase())
    }

    /// Names of all registered aggregates (for diagnostics).
    pub fn agg_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.read().unwrap().aggs.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_udf_checks_arity() {
        let u = ClosureUdf::new("double_it", vec![DataType::Int], DataType::Int, |a| {
            Ok(Value::Int(a[0].as_int().unwrap_or(0) * 2))
        });
        assert_eq!(u.eval(&[Value::Int(21)]).unwrap(), Value::Int(42));
        assert!(u.eval(&[]).is_err());
        assert!(u.deterministic());
    }

    #[test]
    fn registry_resolution_is_case_insensitive() {
        let reg = Registry::new();
        reg.register_scalar(Arc::new(ClosureUdf::new("MyFn", vec![], DataType::Int, |_| {
            Ok(Value::Int(7))
        })));
        assert!(reg.scalar("myfn").is_ok());
        assert!(reg.scalar("MYFN").is_ok());
        assert!(reg.scalar("other").is_err());
        assert!(reg.has_scalar("myfn"));
    }

    #[test]
    fn builtins_are_registered() {
        let reg = Registry::with_builtins();
        assert!(reg.agg("sum").is_ok());
        assert!(reg.agg("count").is_ok());
        assert!(reg.agg("min").is_ok());
        assert!(reg.agg("max").is_ok());
        assert!(reg.agg("avg").is_ok());
        assert!(reg.scalar("abs").is_ok());
        assert!(reg.scalar("sqrt").is_ok());
    }

    #[test]
    fn rank_orders_cheap_selective_first() {
        // Predicate migration: cheap + selective => low rank.
        let cheap_selective = CostHint { per_tuple_cost: 1.0, selectivity: 0.1 };
        let pricey_permissive = CostHint { per_tuple_cost: 100.0, selectivity: 0.9 };
        assert!(cheap_selective.rank() < pricey_permissive.rank());
        // selectivity 1.0 must not divide by zero
        let s1 = CostHint { per_tuple_cost: 1.0, selectivity: 1.0 };
        assert!(s1.rank().is_finite());
    }

    #[test]
    fn volatile_flag() {
        let u =
            ClosureUdf::new("r", vec![], DataType::Double, |_| Ok(Value::Double(0.5))).volatile();
        assert!(!u.deterministic());
    }
}
