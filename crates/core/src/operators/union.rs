//! N-ary union: merges delta streams, aligning punctuation.

use crate::delta::{Delta, Punctuation};
use crate::error::Result;
use crate::operators::{OpCtx, Operator, PunctTracker};

/// Bag union of `n` inputs. Deltas are forwarded unchanged; punctuation is
/// forwarded once all inputs have punctuated the same stratum (§4.2).
pub struct UnionOp {
    n: usize,
    punct: PunctTracker,
}

impl UnionOp {
    /// Union over `n` input ports.
    pub fn new(n: usize) -> UnionOp {
        UnionOp { n, punct: PunctTracker::new(n) }
    }
}

impl Operator for UnionOp {
    fn name(&self) -> String {
        format!("Union[{}]", self.n)
    }

    fn n_inputs(&self) -> usize {
        self.n
    }

    fn on_deltas(&mut self, _port: usize, deltas: Vec<Delta>, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.charge_input(deltas.len());
        ctx.emit(0, deltas);
        Ok(())
    }

    fn on_punct(&mut self, port: usize, p: Punctuation, ctx: &mut OpCtx<'_>) -> Result<()> {
        if let Some(fwd) = self.punct.arrive(port, p) {
            ctx.punct(0, fwd);
            self.punct.next_stratum();
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.punct.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{CostModel, ExecMetrics};
    use crate::operators::Event;
    use crate::tuple;
    use crate::udf::Registry;

    #[test]
    fn forwards_data_and_aligns_punct() {
        let mut u = UnionOp::new(2);
        let reg = Registry::new();
        let cost = CostModel::default();
        let mut m = ExecMetrics::default();
        let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
        u.on_deltas(0, vec![Delta::insert(tuple![1i64])], &mut ctx).unwrap();
        u.on_punct(0, Punctuation::EndOfStream, &mut ctx).unwrap();
        // Only one input punctuated so far: no forwarded punct yet.
        let out = ctx.take_output();
        assert_eq!(out.len(), 1);
        u.on_punct(1, Punctuation::EndOfStream, &mut ctx).unwrap();
        let out = ctx.take_output();
        assert!(matches!(out[0].1, Event::Punct(Punctuation::EndOfStream)));
    }
}
