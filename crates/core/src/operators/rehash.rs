//! Rehash: the network boundary.
//!
//! "Whenever needed, a rehash operator re-partitions data among worker
//! nodes based on the partitioning snapshot for the current query" (§4.2).
//! Within a single-node executor rehash is a pass-through that accounts
//! hashing cost; in cluster execution the runtime intercepts the output of
//! rehash nodes and routes each delta to the worker owning its key under
//! the query's partition snapshot.

use crate::delta::{Delta, Punctuation};
use crate::error::Result;
use crate::hash::FxHasher;
use crate::operators::{OpCtx, Operator};
use crate::tuple::Tuple;
use crate::value::Value;
use std::hash::{Hash, Hasher};

/// Hash a partition key to a u64 (shared by rehash and the consistent-hash
/// ring so that routing decisions agree everywhere). Keyed by the
/// deterministic in-tree [`FxHasher`]: partitioning hashes every routed
/// row — and every stored row, once per worker, at lowering time — so the
/// per-key cost matters, and none of the hashed data is
/// attacker-controlled protocol input.
pub fn hash_key(key: &[Value]) -> u64 {
    let mut h = FxHasher::default();
    for v in key {
        v.hash(&mut h);
    }
    h.finish()
}

/// [`hash_key`] computed over a tuple's key columns *in place* — no owned
/// key is materialized. Identical to `hash_key(&t.key(cols))` (the hash
/// consumes the same value stream), so router and ring agree whichever
/// spelling produced the hash.
pub fn hash_key_cols(t: &Tuple, cols: &[usize]) -> u64 {
    let mut h = FxHasher::default();
    for &c in cols {
        t.get(c).hash(&mut h);
    }
    h.finish()
}

/// The rehash operator.
pub struct RehashOp {
    key_cols: Vec<usize>,
}

impl RehashOp {
    /// Re-partition on `key_cols`.
    pub fn new(key_cols: Vec<usize>) -> RehashOp {
        RehashOp { key_cols }
    }

    /// The partition key columns (used by the cluster router).
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Partition key of a tuple.
    pub fn key_of(&self, t: &Tuple) -> Vec<Value> {
        t.key(&self.key_cols)
    }

    /// Hash of a tuple's partition key (computed in place).
    pub fn hash_of(&self, t: &Tuple) -> u64 {
        hash_key_cols(t, &self.key_cols)
    }
}

/// The thread-shard gate: the single-process analogue of [`RehashOp`].
///
/// In morsel-parallel local execution every thread runs a copy of the same
/// plan over the same shared scan snapshot. Wherever cluster lowering would
/// insert a rehash boundary, parallel local lowering inserts a shard gate:
/// each thread keeps exactly the tuples whose key hashes to its shard and
/// drops the rest, so downstream keyed state (join/group tables) is
/// disjoint across threads and the merged result is a plain concatenation.
/// The same [`hash_key_cols`] keys both, so gate and router agree on
/// ownership.
pub struct ShardGateOp {
    key_cols: Vec<usize>,
    shard: usize,
    shards: usize,
}

impl ShardGateOp {
    /// A gate keeping shard `shard` of `shards` under `key_cols`.
    pub fn new(key_cols: Vec<usize>, shard: usize, shards: usize) -> ShardGateOp {
        debug_assert!(shards > 0 && shard < shards);
        ShardGateOp { key_cols, shard, shards }
    }

    #[inline]
    fn owns(&self, t: &Tuple) -> bool {
        shard_of(hash_key_cols(t, &self.key_cols), self.shards) == self.shard
    }
}

/// Map a key hash to one of `shards` shards. The raw [`hash_key_cols`]
/// low bits are biased for numeric keys (integers hash via their f64
/// canonical form, whose mantissa low bits are constant for small
/// values), so a plain `% shards` can put *every* key in one shard; a
/// splitmix64 finalizer spreads the entropy over all bits first.
#[inline]
pub fn shard_of(hash: u64, shards: usize) -> usize {
    let mut z = hash.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

impl Operator for ShardGateOp {
    fn name(&self) -> String {
        format!("ShardGate{:?}[{}/{}]", self.key_cols, self.shard, self.shards)
    }

    fn on_deltas(&mut self, _port: usize, deltas: Vec<Delta>, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.charge_input(deltas.len());
        ctx.charge_cpu(deltas.len() as f64 * ctx.cost.hash_cost);
        let mut kept = Vec::new();
        for d in deltas {
            match &d.ann {
                // A replacement whose old and new tuples hash to different
                // shards must split, mirroring the router's cross-partition
                // Replace handling: the old owner retires the old tuple,
                // the new owner adopts the new one.
                crate::delta::Annotation::Replace(old) => {
                    let owns_old = self.owns(old);
                    let owns_new = self.owns(&d.tuple);
                    match (owns_old, owns_new) {
                        (true, true) => kept.push(d),
                        (true, false) => kept.push(Delta::delete(old.clone())),
                        (false, true) => kept.push(Delta::insert(d.tuple)),
                        (false, false) => {}
                    }
                }
                _ => {
                    if self.owns(&d.tuple) {
                        kept.push(d);
                    }
                }
            }
        }
        ctx.emit(0, kept);
        Ok(())
    }

    fn on_rows(&mut self, _port: usize, mut rows: Vec<Tuple>, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.charge_input(rows.len());
        ctx.charge_cpu(rows.len() as f64 * ctx.cost.hash_cost);
        rows.retain(|t| self.owns(t));
        ctx.emit_rows(0, rows);
        Ok(())
    }

    fn on_punct(&mut self, _port: usize, p: Punctuation, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.punct(0, p);
        Ok(())
    }

    fn reset(&mut self) {}
}

impl Operator for RehashOp {
    fn name(&self) -> String {
        format!("Rehash{:?}", self.key_cols)
    }

    fn on_deltas(&mut self, _port: usize, deltas: Vec<Delta>, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.charge_input(deltas.len());
        ctx.charge_cpu(deltas.len() as f64 * ctx.cost.hash_cost);
        ctx.emit(0, deltas);
        Ok(())
    }

    fn on_punct(&mut self, _port: usize, p: Punctuation, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.punct(0, p);
        Ok(())
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{CostModel, ExecMetrics};
    use crate::operators::Event;
    use crate::tuple;
    use crate::udf::Registry;

    #[test]
    fn rehash_is_passthrough_locally() {
        let mut r = RehashOp::new(vec![0]);
        let reg = Registry::new();
        let cost = CostModel::default();
        let mut m = ExecMetrics::default();
        let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
        let d = Delta::insert(tuple![1i64, "x"]);
        r.on_deltas(0, vec![d.clone()], &mut ctx).unwrap();
        let out = ctx.take_output();
        assert!(matches!(&out[0].1, Event::Data(ds) if ds[0] == d));
        assert!(m.cpu_units > 0.0);
    }

    #[test]
    fn hash_is_stable_per_key() {
        let r = RehashOp::new(vec![0]);
        let a = r.hash_of(&tuple![5i64, "x"]);
        let b = r.hash_of(&tuple![5i64, "completely different payload"]);
        assert_eq!(a, b, "hash depends only on the key columns");
        let c = r.hash_of(&tuple![6i64, "x"]);
        assert_ne!(a, c);
    }

    #[test]
    fn cross_type_numeric_keys_hash_identically() {
        // Int(3) and Double(3.0) are equal values and must route together.
        assert_eq!(hash_key(&[Value::Int(3)]), hash_key(&[Value::Double(3.0)]));
    }

    #[test]
    fn shard_gates_partition_exactly() {
        // Every tuple is owned by exactly one of the shards, on both lanes.
        let reg = Registry::new();
        let cost = CostModel::default();
        let rows: Vec<_> = (0..100i64).map(|i| tuple![i, i * 2]).collect();
        let mut kept_deltas = 0;
        let mut kept_rows = 0;
        for shard in 0..4 {
            let mut g = ShardGateOp::new(vec![0], shard, 4);
            let mut m = ExecMetrics::default();
            let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
            g.on_deltas(0, rows.iter().cloned().map(Delta::insert).collect(), &mut ctx).unwrap();
            g.on_rows(0, rows.clone(), &mut ctx).unwrap();
            for (_, ev) in ctx.take_output() {
                match ev {
                    Event::Data(ds) => kept_deltas += ds.len(),
                    Event::Rows(ts) => kept_rows += ts.len(),
                    Event::Cols(b) => kept_rows += b.len(),
                    Event::Punct(_) => {}
                }
            }
        }
        assert_eq!(kept_deltas, rows.len());
        assert_eq!(kept_rows, rows.len());
    }

    #[test]
    fn shard_gate_splits_cross_shard_replace() {
        // Find two keys owned by different shards of 2, then check the
        // replace splits into a delete at the old owner and an insert at
        // the new owner, and survives intact when both land on one shard.
        let owner = |k: i64| shard_of(hash_key_cols(&tuple![k], &[0]), 2);
        let a = 1i64;
        let b = (2..100).find(|&k| owner(k) != owner(a)).unwrap();
        let reg = Registry::new();
        let cost = CostModel::default();
        let mut outputs = Vec::new();
        for shard in 0..2usize {
            let mut g = ShardGateOp::new(vec![0], shard, 2);
            let mut m = ExecMetrics::default();
            let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
            g.on_deltas(0, vec![Delta::replace(tuple![a], tuple![b])], &mut ctx).unwrap();
            let mut got = Vec::new();
            for (_, ev) in ctx.take_output() {
                if let Event::Data(ds) = ev {
                    got.extend(ds);
                }
            }
            outputs.push(got);
        }
        let old_owner = owner(a);
        let new_owner = owner(b);
        assert_eq!(outputs[old_owner], vec![Delta::delete(tuple![a])]);
        assert_eq!(outputs[new_owner], vec![Delta::insert(tuple![b])]);
    }

    #[test]
    fn in_place_key_hash_agrees_with_owned() {
        let t = tuple![5i64, "x", 2.5f64];
        for cols in [vec![0usize], vec![2, 1], vec![]] {
            assert_eq!(hash_key_cols(&t, &cols), hash_key(&t.key(&cols)), "{cols:?}");
        }
    }
}
