//! Rehash: the network boundary.
//!
//! "Whenever needed, a rehash operator re-partitions data among worker
//! nodes based on the partitioning snapshot for the current query" (§4.2).
//! Within a single-node executor rehash is a pass-through that accounts
//! hashing cost; in cluster execution the runtime intercepts the output of
//! rehash nodes and routes each delta to the worker owning its key under
//! the query's partition snapshot.

use crate::delta::{Delta, Punctuation};
use crate::error::Result;
use crate::hash::FxHasher;
use crate::operators::{OpCtx, Operator};
use crate::tuple::Tuple;
use crate::value::Value;
use std::hash::{Hash, Hasher};

/// Hash a partition key to a u64 (shared by rehash and the consistent-hash
/// ring so that routing decisions agree everywhere). Keyed by the
/// deterministic in-tree [`FxHasher`]: partitioning hashes every routed
/// row — and every stored row, once per worker, at lowering time — so the
/// per-key cost matters, and none of the hashed data is
/// attacker-controlled protocol input.
pub fn hash_key(key: &[Value]) -> u64 {
    let mut h = FxHasher::default();
    for v in key {
        v.hash(&mut h);
    }
    h.finish()
}

/// [`hash_key`] computed over a tuple's key columns *in place* — no owned
/// key is materialized. Identical to `hash_key(&t.key(cols))` (the hash
/// consumes the same value stream), so router and ring agree whichever
/// spelling produced the hash.
pub fn hash_key_cols(t: &Tuple, cols: &[usize]) -> u64 {
    let mut h = FxHasher::default();
    for &c in cols {
        t.get(c).hash(&mut h);
    }
    h.finish()
}

/// The rehash operator.
pub struct RehashOp {
    key_cols: Vec<usize>,
}

impl RehashOp {
    /// Re-partition on `key_cols`.
    pub fn new(key_cols: Vec<usize>) -> RehashOp {
        RehashOp { key_cols }
    }

    /// The partition key columns (used by the cluster router).
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Partition key of a tuple.
    pub fn key_of(&self, t: &Tuple) -> Vec<Value> {
        t.key(&self.key_cols)
    }

    /// Hash of a tuple's partition key (computed in place).
    pub fn hash_of(&self, t: &Tuple) -> u64 {
        hash_key_cols(t, &self.key_cols)
    }
}

impl Operator for RehashOp {
    fn name(&self) -> String {
        format!("Rehash{:?}", self.key_cols)
    }

    fn on_deltas(&mut self, _port: usize, deltas: Vec<Delta>, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.charge_input(deltas.len());
        ctx.charge_cpu(deltas.len() as f64 * ctx.cost.hash_cost);
        ctx.emit(0, deltas);
        Ok(())
    }

    fn on_punct(&mut self, _port: usize, p: Punctuation, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.punct(0, p);
        Ok(())
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{CostModel, ExecMetrics};
    use crate::operators::Event;
    use crate::tuple;
    use crate::udf::Registry;

    #[test]
    fn rehash_is_passthrough_locally() {
        let mut r = RehashOp::new(vec![0]);
        let reg = Registry::new();
        let cost = CostModel::default();
        let mut m = ExecMetrics::default();
        let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
        let d = Delta::insert(tuple![1i64, "x"]);
        r.on_deltas(0, vec![d.clone()], &mut ctx).unwrap();
        let out = ctx.take_output();
        assert!(matches!(&out[0].1, Event::Data(ds) if ds[0] == d));
        assert!(m.cpu_units > 0.0);
    }

    #[test]
    fn hash_is_stable_per_key() {
        let r = RehashOp::new(vec![0]);
        let a = r.hash_of(&tuple![5i64, "x"]);
        let b = r.hash_of(&tuple![5i64, "completely different payload"]);
        assert_eq!(a, b, "hash depends only on the key columns");
        let c = r.hash_of(&tuple![6i64, "x"]);
        assert_ne!(a, c);
    }

    #[test]
    fn cross_type_numeric_keys_hash_identically() {
        // Int(3) and Double(3.0) are equal values and must route together.
        assert_eq!(hash_key(&[Value::Int(3)]), hash_key(&[Value::Double(3.0)]));
    }

    #[test]
    fn in_place_key_hash_agrees_with_owned() {
        let t = tuple![5i64, "x", 2.5f64];
        for cols in [vec![0usize], vec![2, 1], vec![]] {
            assert_eq!(hash_key_cols(&t, &cols), hash_key(&t.key(&cols)), "{cols:?}");
        }
    }
}
