//! Pipelined symmetric hash join with delta propagation.
//!
//! "The join operator, in its pipelined form, will accumulate each tuple it
//! receives and immediately probe it against any tuples accumulated from the
//! opposite relation" (§3.2). Delta rules follow Gupta/Mumick/Subrahmanian:
//! insertions and deletions are applied to the build state, probed, and
//! propagated as insertions/deletions of joined tuples; replacements are
//! treated as delete+insert pairs and re-fused into replacements where both
//! sides produce output for the same opposite tuple. `δ(E)` updates are
//! dispatched to a user [`JoinHandler`] when one is installed; otherwise
//! the annotation is propagated as a hidden attribute (§3.3).

use crate::delta::{Annotation, Delta, Punctuation};
use crate::error::Result;
use crate::handlers::{JoinHandler, TupleSet};
use crate::hash::KeyedTable;
use crate::operators::{OpCtx, Operator, OperatorState, PunctTracker};
use crate::tuple::Tuple;
use std::sync::Arc;

/// Below this batch size the per-delta path is used unconditionally: the
/// group-by-key pass only pays once duplicate keys are plausible.
const INSERT_BATCH_MIN: usize = 8;

/// How many sorted keys ahead of the probe cursor the opposite table's
/// probe slot is prefetched on the batched rows path. Far enough that the
/// line arrives before the probe (a probe is a fold + slot read + key
/// compare, a few nanoseconds each); near enough that L1 does not evict
/// it again before use.
const PREFETCH_DIST: usize = 8;

/// Pipelined hash join. Port 0 is the left input, port 1 the right.
///
/// Both build sides live in [`KeyedTable`]s so the per-row operations —
/// probing the opposite side, locating this side's bucket — hash and
/// compare the join-key *columns in place*; an owned `Vec<Value>` key is
/// allocated only the first time a key is seen.
pub struct HashJoinOp {
    left_key: Vec<usize>,
    right_key: Vec<usize>,
    handler: Option<Arc<dyn JoinHandler>>,
    left: KeyedTable<TupleSet>,
    right: KeyedTable<TupleSet>,
    punct: PunctTracker,
    /// Probes issued with a software prefetch ahead of them (telemetry).
    prefetch_probes: u64,
}

impl HashJoinOp {
    /// Equi-join on `left_key` = `right_key`.
    pub fn new(left_key: Vec<usize>, right_key: Vec<usize>) -> HashJoinOp {
        HashJoinOp {
            left_key,
            right_key,
            handler: None,
            left: KeyedTable::new(),
            right: KeyedTable::new(),
            punct: PunctTracker::new(2),
            prefetch_probes: 0,
        }
    }

    /// Install a user join delta handler for `δ(E)` updates.
    pub fn with_handler(mut self, h: Arc<dyn JoinHandler>) -> Self {
        self.handler = Some(h);
        self
    }

    /// Total tuples buffered in both hash tables (diagnostics/memory).
    pub fn state_size(&self) -> usize {
        self.left.values().map(TupleSet::len).sum::<usize>()
            + self.right.values().map(TupleSet::len).sum::<usize>()
    }

    /// This side's build table and key columns (split borrow, so callers
    /// can keep using `&self`-derived key columns while mutating state).
    fn side_mut(&mut self, from_left: bool) -> (&mut KeyedTable<TupleSet>, &[usize]) {
        if from_left {
            (&mut self.left, &self.left_key)
        } else {
            (&mut self.right, &self.right_key)
        }
    }

    /// Join output tuple: always left ++ right regardless of probe side.
    fn fuse(&self, probe: &Tuple, matched: &Tuple, from_left: bool) -> Tuple {
        if from_left {
            probe.concat(matched)
        } else {
            matched.concat(probe)
        }
    }

    /// The probing tuple's join-key hash, on its arrival side.
    fn key_hash(&self, t: &Tuple, from_left: bool) -> u64 {
        t.hash_key(if from_left { &self.left_key } else { &self.right_key })
    }

    /// Probe the opposite side with a pre-computed key hash (the caller
    /// already hashed the key to maintain its own side) and emit a delta
    /// per match.
    fn probe_emit(
        &self,
        hash: u64,
        t: &Tuple,
        from_left: bool,
        make: impl Fn(Tuple) -> Delta,
        out: &mut Vec<Delta>,
        ctx: &mut OpCtx<'_>,
    ) {
        let (opposite, cols) =
            if from_left { (&self.right, &self.left_key) } else { (&self.left, &self.right_key) };
        if let Some(bucket) = opposite.probe_hashed(hash, t, cols) {
            for m in bucket.iter() {
                ctx.charge_cpu(ctx.cost.hash_cost);
                out.push(make(self.fuse(t, m, from_left)));
            }
        }
    }

    /// Batch path for handler-free all-insert batches: group the batch by
    /// join key (stable hash sort) so each run of duplicate keys costs
    /// one build-side upsert and one opposite-side probe instead of one
    /// of each *per delta*. The emitted multiset is identical to the
    /// per-delta path; only intra-batch emission order changes, which no
    /// downstream operator observes (sinks sort, aggregates commute).
    fn apply_insert_batch(
        &mut self,
        deltas: Vec<Delta>,
        from_left: bool,
        out: &mut Vec<Delta>,
        ctx: &mut OpCtx<'_>,
    ) {
        let mut keyed: Vec<(u64, Tuple)> =
            deltas.into_iter().map(|d| (self.key_hash(&d.tuple, from_left), d.tuple)).collect();
        // Stable: arrival order survives within a key run.
        keyed.sort_by_key(|(h, _)| *h);
        let mut i = 0;
        while i < keyed.len() {
            let hash = keyed[i].0;
            let run_cols: &[usize] = if from_left { &self.left_key } else { &self.right_key };
            let mut j = i + 1;
            while j < keyed.len()
                && keyed[j].0 == hash
                && run_cols.iter().all(|&c| keyed[j].1.get(c) == keyed[i].1.get(c))
            {
                j += 1;
            }
            ctx.charge_cpu(ctx.cost.hash_cost);
            {
                let (state, cols) = self.side_mut(from_left);
                let bucket = state.probe_or_insert_hashed(hash, &keyed[i].1, cols, TupleSet::new);
                for (_, t) in &keyed[i..j] {
                    bucket.insert(t.clone());
                }
            }
            let (opposite, cols) = if from_left {
                (&self.right, &self.left_key)
            } else {
                (&self.left, &self.right_key)
            };
            if let Some(bucket) = opposite.probe_hashed(hash, &keyed[i].1, cols) {
                for m in bucket.iter() {
                    for (_, t) in &keyed[i..j] {
                        ctx.charge_cpu(ctx.cost.hash_cost);
                        out.push(Delta::insert(self.fuse(t, m, from_left)));
                    }
                }
            }
            i = j;
        }
    }

    /// Probe the opposite side and push bare fused tuples (rows-lane
    /// mirror of [`probe_emit`](HashJoinOp::probe_emit)).
    fn probe_rows(
        &self,
        hash: u64,
        t: &Tuple,
        from_left: bool,
        out: &mut Vec<Tuple>,
        ctx: &mut OpCtx<'_>,
    ) {
        let (opposite, cols) =
            if from_left { (&self.right, &self.left_key) } else { (&self.left, &self.right_key) };
        if let Some(bucket) = opposite.probe_hashed(hash, t, cols) {
            for m in bucket.iter() {
                ctx.charge_cpu(ctx.cost.hash_cost);
                out.push(self.fuse(t, m, from_left));
            }
        }
    }

    /// Rows-lane twin of [`apply_insert_batch`](HashJoinOp::apply_insert_batch)
    /// with the cache-conscious probe loop: every key in the batch is
    /// hashed up front, the batch is stably sorted by hash (so duplicate
    /// keys cost one upsert + one probe per *run*, and the emission order
    /// is identical to the delta batch path bit for bit), and the probe
    /// slot for the key [`PREFETCH_DIST`] runs ahead is prefetched before
    /// each probe so the table's random cache-line reads overlap the
    /// sequential key walk. When `store` is false (the opposite input has
    /// already delivered end-of-stream, so nothing can probe this side
    /// again) the build-side upsert is skipped entirely — the batch runs
    /// probe-only.
    fn apply_rows_batch(
        &mut self,
        rows: Vec<Tuple>,
        from_left: bool,
        store: bool,
        out: &mut Vec<Tuple>,
        ctx: &mut OpCtx<'_>,
    ) {
        let own_cols: &[usize] = if from_left { &self.left_key } else { &self.right_key };
        let mut keyed: Vec<(u64, Tuple)> =
            rows.into_iter().map(|t| (t.hash_key(own_cols), t)).collect();
        // Stable: arrival order survives within a key run.
        keyed.sort_by_key(|(h, _)| *h);
        let mut i = 0;
        while i < keyed.len() {
            let hash = keyed[i].0;
            let run_cols: &[usize] = if from_left { &self.left_key } else { &self.right_key };
            let mut j = i + 1;
            while j < keyed.len()
                && keyed[j].0 == hash
                && run_cols.iter().all(|&c| keyed[j].1.get(c) == keyed[i].1.get(c))
            {
                j += 1;
            }
            {
                let ahead = (i + PREFETCH_DIST).min(keyed.len() - 1);
                let opposite = if from_left { &self.right } else { &self.left };
                opposite.prefetch(keyed[ahead].0);
            }
            self.prefetch_probes += 1;
            ctx.charge_cpu(ctx.cost.hash_cost);
            if store {
                let (state, cols) = self.side_mut(from_left);
                let bucket = state.probe_or_insert_hashed(hash, &keyed[i].1, cols, TupleSet::new);
                for (_, t) in &keyed[i..j] {
                    bucket.insert(t.clone());
                }
            }
            let (opposite, cols) = if from_left {
                (&self.right, &self.left_key)
            } else {
                (&self.left, &self.right_key)
            };
            if let Some(bucket) = opposite.probe_hashed(hash, &keyed[i].1, cols) {
                for m in bucket.iter() {
                    for (_, t) in &keyed[i..j] {
                        ctx.charge_cpu(ctx.cost.hash_cost);
                        out.push(self.fuse(t, m, from_left));
                    }
                }
            }
            i = j;
        }
    }

    fn apply_default(
        &mut self,
        d: Delta,
        from_left: bool,
        out: &mut Vec<Delta>,
        ctx: &mut OpCtx<'_>,
    ) -> Result<()> {
        // When a user join handler is installed it owns bucket maintenance
        // for *all* deltas (the paper's Listing 1 PRAgg manages prBucket and
        // nbrBucket entirely); without one, the standard view-maintenance
        // rules apply and δ(E) degrades to a hidden attribute.
        if let Some(h) = self.handler.clone() {
            ctx.charge_udf_call();
            // Hand the handler both buckets for the delta's key in place,
            // then prune whichever it left (or created) empty — keyed
            // state must stay proportional to *live* keys, not every key
            // ever seen.
            let HashJoinOp { left, right, left_key, right_key, .. } = self;
            let cols: &[usize] = if from_left { left_key } else { right_key };
            let lb = left.probe_or_insert_with(&d.tuple, cols, TupleSet::new);
            let rb = right.probe_or_insert_with(&d.tuple, cols, TupleSet::new);
            let produced = h.update(lb, rb, &d, from_left)?;
            let (left_empty, right_empty) = (lb.is_empty(), rb.is_empty());
            if left_empty {
                left.remove_probe(&d.tuple, cols);
            }
            if right_empty {
                right.remove_probe(&d.tuple, cols);
            }
            out.extend(produced);
            return Ok(());
        }
        match d.ann.clone() {
            Annotation::Insert => {
                ctx.charge_cpu(ctx.cost.hash_cost);
                // One key hash serves both the build-side upsert and the
                // opposite-side probe.
                let hash = self.key_hash(&d.tuple, from_left);
                let (state, cols) = self.side_mut(from_left);
                state
                    .probe_or_insert_hashed(hash, &d.tuple, cols, TupleSet::new)
                    .insert(d.tuple.clone());
                self.probe_emit(hash, &d.tuple, from_left, Delta::insert, out, ctx);
            }
            Annotation::Delete => {
                let hash = self.key_hash(&d.tuple, from_left);
                let (state, cols) = self.side_mut(from_left);
                let removed =
                    state.probe_mut(&d.tuple, cols).map(|b| b.remove(&d.tuple)).unwrap_or(false);
                if removed {
                    self.probe_emit(hash, &d.tuple, from_left, Delta::delete, out, ctx);
                }
            }
            Annotation::Replace(old) => {
                // Delete+insert, fused back into replacements when both the
                // old and new tuple share the join key (the common case of a
                // value update that does not move the tuple across keys).
                let (state, cols) = self.side_mut(from_left);
                let same_key = cols.iter().all(|&c| old.get(c) == d.tuple.get(c));
                let existed = state.probe_mut(&old, cols).map(|b| b.remove(&old)).unwrap_or(false);
                state.probe_or_insert_with(&d.tuple, cols, TupleSet::new).insert(d.tuple.clone());
                if existed && same_key {
                    let (opposite, probe_cols) = if from_left {
                        (&self.right, &self.left_key)
                    } else {
                        (&self.left, &self.right_key)
                    };
                    if let Some(bucket) = opposite.probe(&d.tuple, probe_cols) {
                        for m in bucket.iter() {
                            ctx.charge_cpu(ctx.cost.hash_cost);
                            out.push(Delta::replace(
                                self.fuse(&old, m, from_left),
                                self.fuse(&d.tuple, m, from_left),
                            ));
                        }
                    }
                } else {
                    if existed {
                        let old_hash = self.key_hash(&old, from_left);
                        self.probe_emit(old_hash, &old, from_left, Delta::delete, out, ctx);
                    }
                    let new_hash = self.key_hash(&d.tuple, from_left);
                    self.probe_emit(new_hash, &d.tuple, from_left, Delta::insert, out, ctx);
                }
            }
            Annotation::Update(_) => {
                // No handler: "propagate the annotation as if it were
                // another (hidden) attribute" — treat the tuple normally
                // (store + probe) and tag outputs with the annotation.
                let hash = self.key_hash(&d.tuple, from_left);
                let (state, cols) = self.side_mut(from_left);
                state
                    .probe_or_insert_hashed(hash, &d.tuple, cols, TupleSet::new)
                    .put_by_key(0, d.tuple.clone());
                let ann = d.ann.clone();
                self.probe_emit(
                    hash,
                    &d.tuple,
                    from_left,
                    |t| Delta { ann: ann.clone(), tuple: t },
                    out,
                    ctx,
                );
            }
        }
        Ok(())
    }
}

impl Operator for HashJoinOp {
    fn name(&self) -> String {
        match &self.handler {
            Some(h) => format!("HashJoin[{}]", h.name()),
            None => "HashJoin".into(),
        }
    }

    fn n_inputs(&self) -> usize {
        2
    }

    fn on_deltas(&mut self, port: usize, deltas: Vec<Delta>, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.charge_input(deltas.len());
        let from_left = port == 0;
        let mut out = Vec::new();
        if self.handler.is_none()
            && deltas.len() >= INSERT_BATCH_MIN
            && deltas.iter().all(|d| d.ann == Annotation::Insert)
        {
            self.apply_insert_batch(deltas, from_left, &mut out, ctx);
        } else {
            for d in deltas {
                self.apply_default(d, from_left, &mut out, ctx)?;
            }
        }
        ctx.emit(0, out);
        Ok(())
    }

    /// Fast lane: bare tuples are insertions by construction, so the join
    /// stores and probes without delta wrapping and emits bare fused rows.
    /// Once the *opposite* input has delivered end-of-stream nothing can
    /// probe this side's table again, so arriving rows skip the build-side
    /// store entirely and run probe-only — a bulk build-then-probe join
    /// stores only its build side instead of both.
    fn on_rows(&mut self, port: usize, rows: Vec<Tuple>, ctx: &mut OpCtx<'_>) -> Result<()> {
        if self.handler.is_some() {
            // Handler joins never ride the rows lane (lowering keeps them
            // off); degrade to the delta path if one is mis-plumbed.
            return self.on_deltas(port, rows.into_iter().map(Delta::insert).collect(), ctx);
        }
        ctx.charge_input(rows.len());
        let from_left = port == 0;
        let store = !self.punct.is_eos(1 - port);
        // Equi-joins emit at least one row per matching input row; start
        // at the batch size instead of doubling up from empty.
        let mut out: Vec<Tuple> = Vec::with_capacity(rows.len());
        if rows.len() >= INSERT_BATCH_MIN {
            self.apply_rows_batch(rows, from_left, store, &mut out, ctx);
        } else {
            // Tiny batch: per-row in arrival order, mirroring the
            // per-delta path (including its emission order).
            for t in rows {
                ctx.charge_cpu(ctx.cost.hash_cost);
                let hash = self.key_hash(&t, from_left);
                if store {
                    let (state, cols) = self.side_mut(from_left);
                    state.probe_or_insert_hashed(hash, &t, cols, TupleSet::new).insert(t.clone());
                }
                self.probe_rows(hash, &t, from_left, &mut out, ctx);
            }
        }
        ctx.emit_rows(0, out);
        Ok(())
    }

    fn on_punct(&mut self, port: usize, p: Punctuation, ctx: &mut OpCtx<'_>) -> Result<()> {
        if let Some(fwd) = self.punct.arrive(port, p) {
            ctx.punct(0, fwd);
            self.punct.next_stratum();
        }
        Ok(())
    }

    fn checkpoint(&self) -> Option<OperatorState> {
        // Join state is rebuilt from its inputs during recovery; only the
        // fixpoint's mutable set is checkpointed (§4.3). Returning None here
        // keeps checkpoint volume to the Δᵢ set as the paper describes.
        None
    }

    fn reset(&mut self) {
        self.left.clear();
        self.right.clear();
        self.punct.reset();
        self.prefetch_probes = 0;
    }

    fn stats_detail(&self) -> Vec<(String, u64)> {
        let (lp, lc) = self.left.probe_stats();
        let (rp, rc) = self.right.probe_stats();
        vec![
            ("hash_probes".into(), lp + rp),
            ("hash_collisions".into(), lc + rc),
            ("state_rows".into(), self.state_size() as u64),
            ("prefetch_probes".into(), self.prefetch_probes),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RexError;
    use crate::metrics::{CostModel, ExecMetrics};
    use crate::operators::Event;
    use crate::tuple;
    use crate::udf::Registry;
    use crate::value::Value;

    fn drive(op: &mut HashJoinOp, port: usize, deltas: Vec<Delta>) -> Vec<Delta> {
        let reg = Registry::new();
        let cost = CostModel::default();
        let mut m = ExecMetrics::default();
        let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
        op.on_deltas(port, deltas, &mut ctx).unwrap();
        ctx.take_output()
            .into_iter()
            .flat_map(|(_, e)| match e {
                Event::Data(d) => d,
                _ => vec![],
            })
            .collect()
    }

    #[test]
    fn insert_insert_produces_joined_tuple() {
        let mut j = HashJoinOp::new(vec![0], vec![0]);
        assert!(drive(&mut j, 0, vec![Delta::insert(tuple![1i64, "l"])]).is_empty());
        let out = drive(&mut j, 1, vec![Delta::insert(tuple![1i64, "r"])]);
        assert_eq!(out, vec![Delta::insert(tuple![1i64, "l", 1i64, "r"])]);
    }

    #[test]
    fn insert_batch_with_duplicate_keys_matches_per_delta_path() {
        // The same all-insert traffic through the batch path (one big
        // batch) and the per-delta path (singleton batches) must produce
        // the same output multiset and the same build state.
        let build: Vec<Delta> = (0..5i64).map(|k| Delta::insert(tuple![k, "r"])).collect();
        let probe: Vec<Delta> = (0..40i64).map(|i| Delta::insert(tuple![i % 5, i])).collect();
        let mut batched = HashJoinOp::new(vec![0], vec![0]);
        drive(&mut batched, 1, build.clone());
        let mut out_batched = drive(&mut batched, 0, probe.clone());
        let mut single = HashJoinOp::new(vec![0], vec![0]);
        for d in build {
            drive(&mut single, 1, vec![d]);
        }
        let mut out_single = Vec::new();
        for d in probe {
            out_single.extend(drive(&mut single, 0, vec![d]));
        }
        let key = |d: &Delta| d.to_string();
        out_batched.sort_by_key(key);
        out_single.sort_by_key(key);
        assert_eq!(out_batched, out_single);
        assert_eq!(batched.state_size(), single.state_size());
    }

    #[test]
    fn delete_retracts_joined_tuples() {
        let mut j = HashJoinOp::new(vec![0], vec![0]);
        drive(&mut j, 0, vec![Delta::insert(tuple![1i64, "l"])]);
        drive(&mut j, 1, vec![Delta::insert(tuple![1i64, "r"])]);
        let out = drive(&mut j, 0, vec![Delta::delete(tuple![1i64, "l"])]);
        assert_eq!(out, vec![Delta::delete(tuple![1i64, "l", 1i64, "r"])]);
        // Deleting a non-existent tuple emits nothing.
        let out = drive(&mut j, 0, vec![Delta::delete(tuple![1i64, "l"])]);
        assert!(out.is_empty());
    }

    #[test]
    fn replacement_same_key_stays_replacement() {
        let mut j = HashJoinOp::new(vec![0], vec![0]);
        drive(&mut j, 1, vec![Delta::insert(tuple![1i64, "r"])]);
        drive(&mut j, 0, vec![Delta::insert(tuple![1i64, 10i64])]);
        let out = drive(&mut j, 0, vec![Delta::replace(tuple![1i64, 10i64], tuple![1i64, 20i64])]);
        assert_eq!(
            out,
            vec![Delta::replace(tuple![1i64, 10i64, 1i64, "r"], tuple![1i64, 20i64, 1i64, "r"])]
        );
    }

    #[test]
    fn replacement_crossing_keys_splits_into_delete_insert() {
        let mut j = HashJoinOp::new(vec![0], vec![0]);
        drive(&mut j, 1, vec![Delta::insert(tuple![1i64, "a"]), Delta::insert(tuple![2i64, "b"])]);
        drive(&mut j, 0, vec![Delta::insert(tuple![1i64, 10i64])]);
        let out = drive(&mut j, 0, vec![Delta::replace(tuple![1i64, 10i64], tuple![2i64, 10i64])]);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&Delta::delete(tuple![1i64, 10i64, 1i64, "a"])));
        assert!(out.contains(&Delta::insert(tuple![2i64, 10i64, 2i64, "b"])));
    }

    #[test]
    fn right_probe_output_keeps_left_right_order() {
        let mut j = HashJoinOp::new(vec![0], vec![0]);
        drive(&mut j, 1, vec![Delta::insert(tuple![7i64, "r"])]);
        let out = drive(&mut j, 0, vec![Delta::insert(tuple![7i64, "l"])]);
        assert_eq!(out, vec![Delta::insert(tuple![7i64, "l", 7i64, "r"])]);
    }

    #[test]
    fn update_without_handler_propagates_annotation() {
        let mut j = HashJoinOp::new(vec![0], vec![0]);
        drive(&mut j, 1, vec![Delta::insert(tuple![1i64, "r"])]);
        let out = drive(&mut j, 0, vec![Delta::update(tuple![1i64, 5i64], Value::Double(0.5))]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ann, Annotation::Update(Value::Double(0.5)));
        assert_eq!(out[0].tuple, tuple![1i64, 5i64, 1i64, "r"]);
    }

    /// A PageRank-style handler: maintains the rank in the left bucket and
    /// emits per-neighbor diffs from the right bucket.
    struct DiffHandler;
    impl JoinHandler for DiffHandler {
        fn name(&self) -> &str {
            "diff"
        }
        fn update(
            &self,
            left: &mut TupleSet,
            right: &mut TupleSet,
            d: &Delta,
            from_left: bool,
        ) -> Result<Vec<Delta>> {
            if !from_left {
                right.insert(d.tuple.clone());
                return Ok(vec![]);
            }
            let id = d.tuple.get(0).clone();
            let new = d.tuple.get(1).as_double().ok_or_else(|| RexError::Udf("num".into()))?;
            let old = left.get_by_key(0, &id).and_then(|t| t.get(1).as_double()).unwrap_or(0.0);
            left.put_by_key(0, d.tuple.clone());
            let diff = new - old;
            Ok(right
                .iter()
                .map(|e| Delta::update(tuple![e.get(1).as_int().unwrap(), diff], Value::Null))
                .collect())
        }
    }

    #[test]
    fn update_with_handler_dispatches_buckets() {
        let mut j = HashJoinOp::new(vec![0], vec![0]).with_handler(Arc::new(DiffHandler));
        // Edges 1->2, 1->3 arrive on the right with Update annotation so the
        // handler owns bucket maintenance.
        drive(
            &mut j,
            1,
            vec![
                Delta::update(tuple![1i64, 2i64], Value::Null),
                Delta::update(tuple![1i64, 3i64], Value::Null),
            ],
        );
        // Rank update for node 1 from 0 to 1.0 → diffs of 1.0 to 2 and 3.
        let out = drive(&mut j, 0, vec![Delta::update(tuple![1i64, 1.0f64], Value::Null)]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.tuple.get(1) == &Value::Double(1.0)));
        // Second update 1.0 → 1.5 sends only the 0.5 diff.
        let out = drive(&mut j, 0, vec![Delta::update(tuple![1i64, 1.5f64], Value::Null)]);
        assert!(out.iter().all(|d| d.tuple.get(1) == &Value::Double(0.5)));
    }

    /// A handler that consumes everything it is handed: both buckets end
    /// every update empty.
    struct DrainHandler;
    impl JoinHandler for DrainHandler {
        fn name(&self) -> &str {
            "drain"
        }
        fn update(
            &self,
            left: &mut TupleSet,
            right: &mut TupleSet,
            _d: &Delta,
            _from_left: bool,
        ) -> Result<Vec<Delta>> {
            left.clear();
            right.clear();
            Ok(vec![])
        }
    }

    #[test]
    fn handler_join_prunes_emptied_buckets() {
        let mut j = HashJoinOp::new(vec![0], vec![0]).with_handler(Arc::new(DrainHandler));
        drive(&mut j, 0, (0..50i64).map(|i| Delta::insert(tuple![i])).collect());
        drive(&mut j, 1, (0..50i64).map(|i| Delta::insert(tuple![i])).collect());
        assert_eq!(j.state_size(), 0);
        // Keyed state holds no entries for keys whose buckets the handler
        // emptied — not one (hash, owned key, empty bucket) per key seen.
        assert!(j.left.is_empty(), "left retains {} emptied buckets", j.left.len());
        assert!(j.right.is_empty(), "right retains {} emptied buckets", j.right.len());
    }

    #[test]
    fn punctuation_aligns_across_ports() {
        let mut j = HashJoinOp::new(vec![0], vec![0]);
        let reg = Registry::new();
        let cost = CostModel::default();
        let mut m = ExecMetrics::default();
        let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
        j.on_punct(0, Punctuation::EndOfStream, &mut ctx).unwrap();
        assert!(ctx.take_output().is_empty());
        j.on_punct(1, Punctuation::EndOfStratum(0), &mut ctx).unwrap();
        let out = ctx.take_output();
        assert!(matches!(out[0].1, Event::Punct(Punctuation::EndOfStratum(0))));
    }

    #[test]
    fn reset_clears_state() {
        let mut j = HashJoinOp::new(vec![0], vec![0]);
        drive(&mut j, 0, vec![Delta::insert(tuple![1i64, "l"])]);
        assert_eq!(j.state_size(), 1);
        j.reset();
        assert_eq!(j.state_size(), 0);
    }
}
