//! Pipelined symmetric hash join with delta propagation.
//!
//! "The join operator, in its pipelined form, will accumulate each tuple it
//! receives and immediately probe it against any tuples accumulated from the
//! opposite relation" (§3.2). Delta rules follow Gupta/Mumick/Subrahmanian:
//! insertions and deletions are applied to the build state, probed, and
//! propagated as insertions/deletions of joined tuples; replacements are
//! treated as delete+insert pairs and re-fused into replacements where both
//! sides produce output for the same opposite tuple. `δ(E)` updates are
//! dispatched to a user [`JoinHandler`] when one is installed; otherwise
//! the annotation is propagated as a hidden attribute (§3.3).

use crate::delta::{Annotation, Delta, Punctuation};
use crate::error::Result;
use crate::handlers::{JoinHandler, TupleSet};
use crate::operators::{OpCtx, Operator, OperatorState, PunctTracker};
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

type Key = Vec<Value>;

/// Pipelined hash join. Port 0 is the left input, port 1 the right.
pub struct HashJoinOp {
    left_key: Vec<usize>,
    right_key: Vec<usize>,
    handler: Option<Arc<dyn JoinHandler>>,
    left: HashMap<Key, TupleSet>,
    right: HashMap<Key, TupleSet>,
    punct: PunctTracker,
}

impl HashJoinOp {
    /// Equi-join on `left_key` = `right_key`.
    pub fn new(left_key: Vec<usize>, right_key: Vec<usize>) -> HashJoinOp {
        HashJoinOp {
            left_key,
            right_key,
            handler: None,
            left: HashMap::new(),
            right: HashMap::new(),
            punct: PunctTracker::new(2),
        }
    }

    /// Install a user join delta handler for `δ(E)` updates.
    pub fn with_handler(mut self, h: Arc<dyn JoinHandler>) -> Self {
        self.handler = Some(h);
        self
    }

    /// Total tuples buffered in both hash tables (diagnostics/memory).
    pub fn state_size(&self) -> usize {
        self.left.values().map(TupleSet::len).sum::<usize>()
            + self.right.values().map(TupleSet::len).sum::<usize>()
    }

    fn key_of(&self, t: &Tuple, from_left: bool) -> Key {
        if from_left {
            t.key(&self.left_key)
        } else {
            t.key(&self.right_key)
        }
    }

    /// Join output tuple: always left ++ right regardless of probe side.
    fn fuse(&self, probe: &Tuple, matched: &Tuple, from_left: bool) -> Tuple {
        if from_left {
            probe.concat(matched)
        } else {
            matched.concat(probe)
        }
    }

    fn probe_emit(
        &self,
        t: &Tuple,
        from_left: bool,
        make: impl Fn(Tuple) -> Delta,
        out: &mut Vec<Delta>,
        ctx: &mut OpCtx<'_>,
    ) {
        let key = self.key_of(t, from_left);
        let opposite = if from_left { &self.right } else { &self.left };
        if let Some(bucket) = opposite.get(&key) {
            for m in bucket.iter() {
                ctx.charge_cpu(ctx.cost.hash_cost);
                out.push(make(self.fuse(t, m, from_left)));
            }
        }
    }

    fn apply_default(
        &mut self,
        d: Delta,
        from_left: bool,
        out: &mut Vec<Delta>,
        ctx: &mut OpCtx<'_>,
    ) -> Result<()> {
        // When a user join handler is installed it owns bucket maintenance
        // for *all* deltas (the paper's Listing 1 PRAgg manages prBucket and
        // nbrBucket entirely); without one, the standard view-maintenance
        // rules apply and δ(E) degrades to a hidden attribute.
        if let Some(h) = self.handler.clone() {
            let key = self.key_of(&d.tuple, from_left);
            ctx.charge_udf_call();
            let mut lb = self.left.remove(&key).unwrap_or_default();
            let mut rb = self.right.remove(&key).unwrap_or_default();
            let produced = h.update(&mut lb, &mut rb, &d, from_left)?;
            if !lb.is_empty() {
                self.left.insert(key.clone(), lb);
            }
            if !rb.is_empty() {
                self.right.insert(key, rb);
            }
            out.extend(produced);
            return Ok(());
        }
        match d.ann.clone() {
            Annotation::Insert => {
                let key = self.key_of(&d.tuple, from_left);
                ctx.charge_cpu(ctx.cost.hash_cost);
                self.state_mut(from_left).entry(key).or_default().insert(d.tuple.clone());
                self.probe_emit(&d.tuple, from_left, Delta::insert, out, ctx);
            }
            Annotation::Delete => {
                let key = self.key_of(&d.tuple, from_left);
                let removed = self
                    .state_mut(from_left)
                    .get_mut(&key)
                    .map(|b| b.remove(&d.tuple))
                    .unwrap_or(false);
                if removed {
                    self.probe_emit(&d.tuple, from_left, Delta::delete, out, ctx);
                }
            }
            Annotation::Replace(old) => {
                // Delete+insert, fused back into replacements when both the
                // old and new tuple share the join key (the common case of a
                // value update that does not move the tuple across keys).
                let old_key = self.key_of(&old, from_left);
                let new_key = self.key_of(&d.tuple, from_left);
                let existed = self
                    .state_mut(from_left)
                    .get_mut(&old_key)
                    .map(|b| b.remove(&old))
                    .unwrap_or(false);
                self.state_mut(from_left)
                    .entry(new_key.clone())
                    .or_default()
                    .insert(d.tuple.clone());
                if existed && old_key == new_key {
                    let opposite = if from_left { &self.right } else { &self.left };
                    if let Some(bucket) = opposite.get(&new_key) {
                        for m in bucket.iter() {
                            ctx.charge_cpu(ctx.cost.hash_cost);
                            out.push(Delta::replace(
                                self.fuse(&old, m, from_left),
                                self.fuse(&d.tuple, m, from_left),
                            ));
                        }
                    }
                } else {
                    if existed {
                        self.probe_emit(&old, from_left, Delta::delete, out, ctx);
                    }
                    self.probe_emit(&d.tuple, from_left, Delta::insert, out, ctx);
                }
            }
            Annotation::Update(_) => {
                // No handler: "propagate the annotation as if it were
                // another (hidden) attribute" — treat the tuple normally
                // (store + probe) and tag outputs with the annotation.
                let key = self.key_of(&d.tuple, from_left);
                self.state_mut(from_left).entry(key).or_default().put_by_key(0, d.tuple.clone());
                let ann = d.ann.clone();
                self.probe_emit(
                    &d.tuple,
                    from_left,
                    |t| Delta { ann: ann.clone(), tuple: t },
                    out,
                    ctx,
                );
            }
        }
        Ok(())
    }

    fn state_mut(&mut self, from_left: bool) -> &mut HashMap<Key, TupleSet> {
        if from_left {
            &mut self.left
        } else {
            &mut self.right
        }
    }
}

impl Operator for HashJoinOp {
    fn name(&self) -> String {
        match &self.handler {
            Some(h) => format!("HashJoin[{}]", h.name()),
            None => "HashJoin".into(),
        }
    }

    fn n_inputs(&self) -> usize {
        2
    }

    fn on_deltas(&mut self, port: usize, deltas: Vec<Delta>, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.charge_input(deltas.len());
        let from_left = port == 0;
        let mut out = Vec::new();
        for d in deltas {
            self.apply_default(d, from_left, &mut out, ctx)?;
        }
        ctx.emit(0, out);
        Ok(())
    }

    fn on_punct(&mut self, port: usize, p: Punctuation, ctx: &mut OpCtx<'_>) -> Result<()> {
        if let Some(fwd) = self.punct.arrive(port, p) {
            ctx.punct(0, fwd);
            self.punct.next_stratum();
        }
        Ok(())
    }

    fn checkpoint(&self) -> Option<OperatorState> {
        // Join state is rebuilt from its inputs during recovery; only the
        // fixpoint's mutable set is checkpointed (§4.3). Returning None here
        // keeps checkpoint volume to the Δᵢ set as the paper describes.
        None
    }

    fn reset(&mut self) {
        self.left.clear();
        self.right.clear();
        self.punct.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RexError;
    use crate::metrics::{CostModel, ExecMetrics};
    use crate::operators::Event;
    use crate::tuple;
    use crate::udf::Registry;

    fn drive(op: &mut HashJoinOp, port: usize, deltas: Vec<Delta>) -> Vec<Delta> {
        let reg = Registry::new();
        let cost = CostModel::default();
        let mut m = ExecMetrics::default();
        let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
        op.on_deltas(port, deltas, &mut ctx).unwrap();
        ctx.take_output()
            .into_iter()
            .flat_map(|(_, e)| match e {
                Event::Data(d) => d,
                _ => vec![],
            })
            .collect()
    }

    #[test]
    fn insert_insert_produces_joined_tuple() {
        let mut j = HashJoinOp::new(vec![0], vec![0]);
        assert!(drive(&mut j, 0, vec![Delta::insert(tuple![1i64, "l"])]).is_empty());
        let out = drive(&mut j, 1, vec![Delta::insert(tuple![1i64, "r"])]);
        assert_eq!(out, vec![Delta::insert(tuple![1i64, "l", 1i64, "r"])]);
    }

    #[test]
    fn delete_retracts_joined_tuples() {
        let mut j = HashJoinOp::new(vec![0], vec![0]);
        drive(&mut j, 0, vec![Delta::insert(tuple![1i64, "l"])]);
        drive(&mut j, 1, vec![Delta::insert(tuple![1i64, "r"])]);
        let out = drive(&mut j, 0, vec![Delta::delete(tuple![1i64, "l"])]);
        assert_eq!(out, vec![Delta::delete(tuple![1i64, "l", 1i64, "r"])]);
        // Deleting a non-existent tuple emits nothing.
        let out = drive(&mut j, 0, vec![Delta::delete(tuple![1i64, "l"])]);
        assert!(out.is_empty());
    }

    #[test]
    fn replacement_same_key_stays_replacement() {
        let mut j = HashJoinOp::new(vec![0], vec![0]);
        drive(&mut j, 1, vec![Delta::insert(tuple![1i64, "r"])]);
        drive(&mut j, 0, vec![Delta::insert(tuple![1i64, 10i64])]);
        let out = drive(&mut j, 0, vec![Delta::replace(tuple![1i64, 10i64], tuple![1i64, 20i64])]);
        assert_eq!(
            out,
            vec![Delta::replace(tuple![1i64, 10i64, 1i64, "r"], tuple![1i64, 20i64, 1i64, "r"])]
        );
    }

    #[test]
    fn replacement_crossing_keys_splits_into_delete_insert() {
        let mut j = HashJoinOp::new(vec![0], vec![0]);
        drive(&mut j, 1, vec![Delta::insert(tuple![1i64, "a"]), Delta::insert(tuple![2i64, "b"])]);
        drive(&mut j, 0, vec![Delta::insert(tuple![1i64, 10i64])]);
        let out = drive(&mut j, 0, vec![Delta::replace(tuple![1i64, 10i64], tuple![2i64, 10i64])]);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&Delta::delete(tuple![1i64, 10i64, 1i64, "a"])));
        assert!(out.contains(&Delta::insert(tuple![2i64, 10i64, 2i64, "b"])));
    }

    #[test]
    fn right_probe_output_keeps_left_right_order() {
        let mut j = HashJoinOp::new(vec![0], vec![0]);
        drive(&mut j, 1, vec![Delta::insert(tuple![7i64, "r"])]);
        let out = drive(&mut j, 0, vec![Delta::insert(tuple![7i64, "l"])]);
        assert_eq!(out, vec![Delta::insert(tuple![7i64, "l", 7i64, "r"])]);
    }

    #[test]
    fn update_without_handler_propagates_annotation() {
        let mut j = HashJoinOp::new(vec![0], vec![0]);
        drive(&mut j, 1, vec![Delta::insert(tuple![1i64, "r"])]);
        let out = drive(&mut j, 0, vec![Delta::update(tuple![1i64, 5i64], Value::Double(0.5))]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ann, Annotation::Update(Value::Double(0.5)));
        assert_eq!(out[0].tuple, tuple![1i64, 5i64, 1i64, "r"]);
    }

    /// A PageRank-style handler: maintains the rank in the left bucket and
    /// emits per-neighbor diffs from the right bucket.
    struct DiffHandler;
    impl JoinHandler for DiffHandler {
        fn name(&self) -> &str {
            "diff"
        }
        fn update(
            &self,
            left: &mut TupleSet,
            right: &mut TupleSet,
            d: &Delta,
            from_left: bool,
        ) -> Result<Vec<Delta>> {
            if !from_left {
                right.insert(d.tuple.clone());
                return Ok(vec![]);
            }
            let id = d.tuple.get(0).clone();
            let new = d.tuple.get(1).as_double().ok_or_else(|| RexError::Udf("num".into()))?;
            let old = left.get_by_key(0, &id).and_then(|t| t.get(1).as_double()).unwrap_or(0.0);
            left.put_by_key(0, d.tuple.clone());
            let diff = new - old;
            Ok(right
                .iter()
                .map(|e| Delta::update(tuple![e.get(1).as_int().unwrap(), diff], Value::Null))
                .collect())
        }
    }

    #[test]
    fn update_with_handler_dispatches_buckets() {
        let mut j = HashJoinOp::new(vec![0], vec![0]).with_handler(Arc::new(DiffHandler));
        // Edges 1->2, 1->3 arrive on the right with Update annotation so the
        // handler owns bucket maintenance.
        drive(
            &mut j,
            1,
            vec![
                Delta::update(tuple![1i64, 2i64], Value::Null),
                Delta::update(tuple![1i64, 3i64], Value::Null),
            ],
        );
        // Rank update for node 1 from 0 to 1.0 → diffs of 1.0 to 2 and 3.
        let out = drive(&mut j, 0, vec![Delta::update(tuple![1i64, 1.0f64], Value::Null)]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.tuple.get(1) == &Value::Double(1.0)));
        // Second update 1.0 → 1.5 sends only the 0.5 diff.
        let out = drive(&mut j, 0, vec![Delta::update(tuple![1i64, 1.5f64], Value::Null)]);
        assert!(out.iter().all(|d| d.tuple.get(1) == &Value::Double(0.5)));
    }

    #[test]
    fn punctuation_aligns_across_ports() {
        let mut j = HashJoinOp::new(vec![0], vec![0]);
        let reg = Registry::new();
        let cost = CostModel::default();
        let mut m = ExecMetrics::default();
        let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
        j.on_punct(0, Punctuation::EndOfStream, &mut ctx).unwrap();
        assert!(ctx.take_output().is_empty());
        j.on_punct(1, Punctuation::EndOfStratum(0), &mut ctx).unwrap();
        let out = ctx.take_output();
        assert!(matches!(out[0].1, Event::Punct(Punctuation::EndOfStratum(0))));
    }

    #[test]
    fn reset_clears_state() {
        let mut j = HashJoinOp::new(vec![0], vec![0]);
        drive(&mut j, 0, vec![Delta::insert(tuple![1i64, "l"])]);
        assert_eq!(j.state_size(), 1);
        j.reset();
        assert_eq!(j.state_size(), 0);
    }
}
