//! Projection: per-tuple expression evaluation.

use crate::col::ColumnBatch;
use crate::delta::{Annotation, Delta, Punctuation};
use crate::error::Result;
use crate::expr::{CompiledExpr, Expr};
use crate::operators::{OpCtx, Operator};
use crate::tuple::Tuple;

/// Evaluates a list of expressions over each input tuple, producing an
/// output tuple per input. Stateless: annotations ride along, and the old
/// tuple of a replacement delta is projected through the same expressions
/// (valid because projection is deterministic). Expressions are
/// pre-compiled ([`CompiledExpr`]) so the common `col` / `col OP lit`
/// shapes evaluate on borrowed operands per row.
pub struct ProjectOp {
    exprs: Vec<Expr>,
    compiled: Vec<CompiledExpr>,
    has_udf: bool,
    /// Reusable evaluation buffer: expressions evaluate into it and the
    /// output tuple is built with a single allocation
    /// ([`Tuple::from_slice`]).
    scratch: Vec<crate::value::Value>,
}

impl ProjectOp {
    /// Project through `exprs`.
    pub fn new(exprs: Vec<Expr>) -> ProjectOp {
        let compiled = exprs.iter().map(CompiledExpr::compile).collect();
        let has_udf = exprs.iter().any(Expr::contains_udf);
        ProjectOp { exprs, compiled, has_udf, scratch: Vec::new() }
    }

    fn apply(&mut self, t: &Tuple, reg: &crate::udf::Registry) -> Result<Tuple> {
        self.scratch.clear();
        for e in &self.compiled {
            let v = e.eval(t, reg)?;
            self.scratch.push(v);
        }
        Ok(Tuple::from_slice(&self.scratch))
    }
}

impl Operator for ProjectOp {
    fn name(&self) -> String {
        format!("Project[{}]", self.exprs.len())
    }

    fn on_deltas(&mut self, _port: usize, deltas: Vec<Delta>, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.charge_input(deltas.len());
        let mut out = Vec::with_capacity(deltas.len());
        for d in deltas {
            if self.has_udf {
                ctx.charge_udf_call();
            }
            let new_t = self.apply(&d.tuple, ctx.reg)?;
            let ann = match d.ann {
                Annotation::Replace(old) => Annotation::Replace(self.apply(&old, ctx.reg)?),
                a => a,
            };
            out.push(Delta { ann, tuple: new_t });
        }
        ctx.emit(0, out);
        Ok(())
    }

    /// Fast lane: project bare tuples to bare tuples.
    fn on_rows(&mut self, _port: usize, rows: Vec<Tuple>, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.charge_input(rows.len());
        let mut out = Vec::with_capacity(rows.len());
        for t in &rows {
            if self.has_udf {
                ctx.charge_udf_call();
            }
            out.push(self.apply(t, ctx.reg)?);
        }
        ctx.emit_rows(0, out);
        Ok(())
    }

    /// Columnar lane: materialize the output column-at-a-time over the
    /// selected rows. Column references gather, `col OP lit` / `col OP
    /// col` shapes evaluate without per-row tuple construction.
    fn on_cols(&mut self, _port: usize, batch: ColumnBatch, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.charge_input(batch.len());
        if self.has_udf {
            for _ in 0..batch.len() {
                ctx.charge_udf_call();
            }
        }
        let out = batch.project(&self.compiled, ctx.reg)?;
        ctx.emit_cols(0, out);
        Ok(())
    }

    fn on_punct(&mut self, _port: usize, p: Punctuation, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.punct(0, p);
        Ok(())
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::metrics::{CostModel, ExecMetrics};
    use crate::operators::Event;
    use crate::tuple;
    use crate::udf::Registry;
    use crate::value::Value;

    fn run(op: &mut ProjectOp, deltas: Vec<Delta>) -> Vec<Delta> {
        let reg = Registry::with_builtins();
        let cost = CostModel::default();
        let mut m = ExecMetrics::default();
        let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
        op.on_deltas(0, deltas, &mut ctx).unwrap();
        ctx.take_output()
            .into_iter()
            .flat_map(|(_, e)| match e {
                Event::Data(d) => d,
                _ => vec![],
            })
            .collect()
    }

    #[test]
    fn projects_expressions() {
        let mut op =
            ProjectOp::new(vec![Expr::col(1), Expr::col(0).bin(BinOp::Add, Expr::lit(10i64))]);
        let out = run(&mut op, vec![Delta::insert(tuple![1i64, "a"])]);
        assert_eq!(out[0].tuple, tuple!["a", 11i64]);
    }

    #[test]
    fn replacement_old_tuple_is_projected_too() {
        let mut op = ProjectOp::new(vec![Expr::col(0).bin(BinOp::Mul, Expr::lit(2i64))]);
        let out = run(&mut op, vec![Delta::replace(tuple![3i64], tuple![5i64])]);
        match &out[0].ann {
            Annotation::Replace(old) => assert_eq!(old, &tuple![6i64]),
            a => panic!("expected replace, got {a:?}"),
        }
        assert_eq!(out[0].tuple, tuple![10i64]);
    }

    #[test]
    fn update_payload_preserved() {
        let mut op = ProjectOp::new(vec![Expr::col(0)]);
        let out = run(&mut op, vec![Delta::update(tuple![1i64, 2i64], Value::Double(0.1))]);
        assert_eq!(out[0].ann, Annotation::Update(Value::Double(0.1)));
        assert_eq!(out[0].tuple, tuple![1i64]);
    }
}
