//! Physical operators.
//!
//! REX operators are push-based and pipelined (§4.2): deltas flow in
//! batches, punctuation markers delimit strata, and every operator both
//! propagates deltas and (if stateful) maintains its state under them.
//!
//! Operators are written against the [`Operator`] trait and wired into a
//! [`PlanGraph`](crate::exec::PlanGraph); the executor delivers
//! [`Event`]s and collects emissions through an [`OpCtx`].

mod apply_fn;
mod filter;
mod fixpoint;
mod group_by;
mod join;
mod project;
mod rehash;
mod scan;
mod sink;
mod topk;
mod union;

pub use apply_fn::{ApplyFunctionOp, DeltaMapper, ExprMapper, FnMapper};
pub use filter::FilterOp;
pub use fixpoint::{FixpointOp, Termination};
pub use group_by::{AggSpec, GroupByOp};
pub use join::HashJoinOp;
pub use project::ProjectOp;
pub use rehash::{hash_key, hash_key_cols, shard_of, RehashOp, ShardGateOp};
pub use scan::{ScanOp, ScanRows, MORSEL_ROWS};
pub use sink::SinkOp;
pub use topk::{compare_by_keys, SortSpec, TopKOp};
pub use union::UnionOp;

use crate::col::ColumnBatch;
use crate::delta::{Delta, Punctuation};
use crate::error::Result;
use crate::metrics::{CostModel, ExecMetrics};
use crate::tuple::Tuple;
use crate::udf::Registry;

/// A unit of traffic on a dataflow edge: a batch of deltas, a run-length
/// batch of insertions, a columnar batch, or a punctuation marker.
#[derive(Debug, Clone)]
pub enum Event {
    /// A batch of annotated tuples.
    Data(Vec<Delta>),
    /// A batch of *bare* tuples, every one an implicit `+()` insertion —
    /// the insert-only fast lane. Scans on provably insert-only pipelines
    /// emit these so filters, projections, and sinks move 16-byte tuples
    /// instead of 48-byte deltas; any operator without a native
    /// [`Operator::on_rows`] transparently receives the batch as
    /// insertion deltas.
    Rows(Vec<Tuple>),
    /// A columnar batch of implicit `+()` insertions — the vectorized
    /// form of [`Event::Rows`]. Scans on columnar-lowered stateless
    /// pipelines emit these so filters and projections run whole-batch
    /// kernels over typed columns; any operator without a native
    /// [`Operator::on_cols`] transparently receives the batch as bare
    /// rows (and, failing that, as insertion deltas).
    Cols(ColumnBatch),
    /// A stratum/stream boundary.
    Punct(Punctuation),
}

impl Event {
    /// Approximate wire size (for network edges).
    pub fn byte_size(&self) -> usize {
        match self {
            Event::Data(ds) => 8 + ds.iter().map(Delta::byte_size).sum::<usize>(),
            // Parity with `Data`: each bare tuple ships as a `+()` delta.
            Event::Rows(ts) => 8 + ts.iter().map(|t| 1 + t.byte_size()).sum::<usize>(),
            // Parity with `Rows`: a columnar batch accounts per selected row.
            Event::Cols(b) => b.byte_size(),
            Event::Punct(_) => 9,
        }
    }
}

/// Execution context handed to operators: emission buffer, metrics, cost
/// model, registry, and the current stratum.
pub struct OpCtx<'a> {
    /// Current stratum number.
    pub stratum: u64,
    /// Worker id (0 in single-node execution).
    pub worker: usize,
    /// UDF/UDA registry.
    pub reg: &'a Registry,
    /// Cost constants for metric accounting.
    pub cost: &'a CostModel,
    /// Metric counters (shared per worker).
    pub metrics: &'a mut ExecMetrics,
    out: Vec<(usize, Event)>,
}

impl<'a> OpCtx<'a> {
    /// Create a context for one operator activation.
    pub fn new(
        stratum: u64,
        worker: usize,
        reg: &'a Registry,
        cost: &'a CostModel,
        metrics: &'a mut ExecMetrics,
    ) -> OpCtx<'a> {
        OpCtx { stratum, worker, reg, cost, metrics, out: Vec::new() }
    }

    /// Emit a batch of deltas on an output port.
    pub fn emit(&mut self, port: usize, deltas: Vec<Delta>) {
        if !deltas.is_empty() {
            self.metrics.deltas_emitted += deltas.len() as u64;
            self.out.push((port, Event::Data(deltas)));
        }
    }

    /// Emit a run-length insert batch on an output port (the fast lane's
    /// counterpart of [`emit`](OpCtx::emit); each row counts as one
    /// emitted delta).
    pub fn emit_rows(&mut self, port: usize, rows: Vec<Tuple>) {
        if !rows.is_empty() {
            self.metrics.deltas_emitted += rows.len() as u64;
            self.out.push((port, Event::Rows(rows)));
        }
    }

    /// Emit a columnar insert batch on an output port (the columnar
    /// lane's counterpart of [`emit_rows`](OpCtx::emit_rows); each
    /// selected row counts as one emitted delta).
    pub fn emit_cols(&mut self, port: usize, batch: ColumnBatch) {
        if !batch.is_empty() {
            self.metrics.deltas_emitted += batch.len() as u64;
            self.out.push((port, Event::Cols(batch)));
        }
    }

    /// Emit a punctuation marker on an output port.
    pub fn punct(&mut self, port: usize, p: Punctuation) {
        self.metrics.punctuations += 1;
        self.out.push((port, Event::Punct(p)));
    }

    /// Account CPU work.
    pub fn charge_cpu(&mut self, units: f64) {
        self.metrics.cpu_units += units;
    }

    /// Account one UDF/UDA invocation (amortized by input batching).
    pub fn charge_udf_call(&mut self) {
        self.metrics.udf_calls += 1;
        self.metrics.cpu_units += self.cost.amortized_udf_overhead();
    }

    /// Account processed input deltas.
    pub fn charge_input(&mut self, n: usize) {
        self.metrics.tuples_processed += n as u64;
        self.metrics.cpu_units += n as f64 * self.cost.cpu_per_tuple;
    }

    /// Account a disk read of `bytes`.
    pub fn charge_disk_read(&mut self, bytes: u64) {
        self.metrics.disk_read += bytes;
    }

    /// Take the buffered emissions (executor-side).
    pub fn take_output(&mut self) -> Vec<(usize, Event)> {
        std::mem::take(&mut self.out)
    }

    /// Drain the buffered emissions in place, keeping the buffer's
    /// capacity. The executor's event loop uses this so one scratch
    /// buffer serves every operator activation of a drain instead of
    /// allocating a `take_output` vector per event.
    pub fn drain_output(&mut self) -> std::vec::Drain<'_, (usize, Event)> {
        self.out.drain(..)
    }
}

/// Checkpointable operator state: the tuples a recovering node needs to
/// resume (the fixpoint's mutable set, §4.3).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OperatorState {
    /// The state tuples.
    pub tuples: Vec<Tuple>,
}

impl OperatorState {
    /// Serialized size, for checkpoint-volume accounting.
    pub fn byte_size(&self) -> usize {
        self.tuples.iter().map(Tuple::byte_size).sum()
    }
}

/// The push-based operator interface.
pub trait Operator: Send {
    /// Human-readable name, used in plans and metrics.
    fn name(&self) -> String;

    /// Number of input ports.
    fn n_inputs(&self) -> usize {
        1
    }

    /// Handle a batch of deltas arriving on `port`.
    fn on_deltas(&mut self, port: usize, deltas: Vec<Delta>, ctx: &mut OpCtx<'_>) -> Result<()>;

    /// Handle a run-length insert batch arriving on `port`. The default
    /// expands the rows into `+()` deltas and delegates to
    /// [`on_deltas`](Operator::on_deltas), so stateful operators need no
    /// fast-lane awareness; the lane's operators (filter, project, sink)
    /// override this to work on bare tuples.
    fn on_rows(&mut self, port: usize, rows: Vec<Tuple>, ctx: &mut OpCtx<'_>) -> Result<()> {
        self.on_deltas(port, rows.into_iter().map(Delta::insert).collect(), ctx)
    }

    /// Handle a columnar insert batch arriving on `port`. The default
    /// materializes the selected rows and delegates to
    /// [`on_rows`](Operator::on_rows), so only the columnar lane's
    /// operators (scan, filter, project, sink) carry native kernels.
    fn on_cols(&mut self, port: usize, batch: ColumnBatch, ctx: &mut OpCtx<'_>) -> Result<()> {
        self.on_rows(port, batch.to_rows(), ctx)
    }

    /// Handle a punctuation marker arriving on `port`.
    fn on_punct(&mut self, port: usize, p: Punctuation, ctx: &mut OpCtx<'_>) -> Result<()>;

    /// Whether this operator is a source (driven by the executor, not by
    /// upstream events).
    fn is_source(&self) -> bool {
        false
    }

    /// Produce source data (scans). Called once at query start.
    fn run_source(&mut self, ctx: &mut OpCtx<'_>) -> Result<()> {
        let _ = ctx;
        Ok(())
    }

    /// Fixpoint coordination hook: downcast to a fixpoint operator.
    fn as_fixpoint(&mut self) -> Option<&mut FixpointOp> {
        None
    }

    /// Sink hook: downcast to a sink.
    fn as_sink(&mut self) -> Option<&mut SinkOp> {
        None
    }

    /// Snapshot recoverable state (fixpoint mutable set). `None` for
    /// stateless operators.
    fn checkpoint(&self) -> Option<OperatorState> {
        None
    }

    /// Restore state from a checkpoint.
    fn restore(&mut self, state: OperatorState) {
        let _ = state;
    }

    /// Clear all state, returning the operator to its pre-execution
    /// condition (used by restart recovery).
    fn reset(&mut self);

    /// Operator-specific telemetry counters (hash probes/collisions,
    /// retained state sizes), harvested once per traced query. Stateless
    /// operators report nothing.
    fn stats_detail(&self) -> Vec<(String, u64)> {
        Vec::new()
    }
}

/// Track punctuation across the inputs of an n-ary operator: "n-ary
/// operators such as a join or rehash wait until all inputs have received
/// appropriate punctuation before proceeding" (§4.2). An input that has seen
/// `EndOfStream` counts as punctuated for every later stratum.
#[derive(Debug, Clone, Default)]
pub struct PunctTracker {
    per_port: Vec<PortPunct>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum PortPunct {
    #[default]
    None,
    Stratum(u64),
    Eos,
}

impl PunctTracker {
    /// A tracker for `n` ports.
    pub fn new(n: usize) -> PunctTracker {
        PunctTracker { per_port: vec![PortPunct::None; n] }
    }

    /// Record a punctuation arrival; returns the punctuation to forward
    /// downstream, if all ports are now aligned.
    pub fn arrive(&mut self, port: usize, p: Punctuation) -> Option<Punctuation> {
        self.per_port[port] = match p {
            Punctuation::EndOfStratum(s) => PortPunct::Stratum(s),
            Punctuation::EndOfStream => PortPunct::Eos,
        };
        self.aligned()
    }

    /// The punctuation all ports currently agree on, if any.
    pub fn aligned(&self) -> Option<Punctuation> {
        if self.per_port.iter().all(|p| *p == PortPunct::Eos) {
            return Some(Punctuation::EndOfStream);
        }
        // All ports must be at stratum s or EOS.
        let mut stratum = None;
        for p in &self.per_port {
            match p {
                PortPunct::None => return None,
                PortPunct::Eos => {}
                PortPunct::Stratum(s) => match stratum {
                    None => stratum = Some(*s),
                    Some(prev) if prev == *s => {}
                    Some(_) => return None,
                },
            }
        }
        stratum.map(Punctuation::EndOfStratum)
    }

    /// Whether `port` has seen `EndOfStream`. The insert-only join lane
    /// uses this to skip building hash state for a side whose opposite
    /// input can no longer produce rows to probe it.
    pub fn is_eos(&self, port: usize) -> bool {
        self.per_port[port] == PortPunct::Eos
    }

    /// Reset stratum markers (EOS persists) at the start of a new stratum.
    pub fn next_stratum(&mut self) {
        for p in &mut self.per_port {
            if let PortPunct::Stratum(_) = p {
                *p = PortPunct::None;
            }
        }
    }

    /// Reset the tracker entirely.
    pub fn reset(&mut self) {
        for p in &mut self.per_port {
            *p = PortPunct::None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn punct_tracker_waits_for_all_ports() {
        let mut t = PunctTracker::new(2);
        assert_eq!(t.arrive(0, Punctuation::EndOfStratum(1)), None);
        assert_eq!(t.arrive(1, Punctuation::EndOfStratum(1)), Some(Punctuation::EndOfStratum(1)));
    }

    #[test]
    fn punct_tracker_eos_counts_for_all_strata() {
        let mut t = PunctTracker::new(2);
        assert_eq!(t.arrive(0, Punctuation::EndOfStream), None);
        // The immutable side is done; every stratum of the other side aligns.
        assert_eq!(t.arrive(1, Punctuation::EndOfStratum(0)), Some(Punctuation::EndOfStratum(0)));
        t.next_stratum();
        assert_eq!(t.arrive(1, Punctuation::EndOfStratum(1)), Some(Punctuation::EndOfStratum(1)));
        assert_eq!(t.arrive(1, Punctuation::EndOfStream), Some(Punctuation::EndOfStream));
    }

    #[test]
    fn punct_tracker_mismatched_strata_do_not_align() {
        let mut t = PunctTracker::new(2);
        t.arrive(0, Punctuation::EndOfStratum(1));
        assert_eq!(t.arrive(1, Punctuation::EndOfStratum(2)), None);
    }

    #[test]
    fn event_byte_size() {
        let e = Event::Data(vec![Delta::insert(tuple![1i64])]);
        assert_eq!(e.byte_size(), 8 + 11);
        assert_eq!(Event::Punct(Punctuation::EndOfStream).byte_size(), 9);
    }

    #[test]
    fn opctx_charges_metrics() {
        let reg = Registry::new();
        let cost = CostModel::default();
        let mut m = ExecMetrics::default();
        let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
        ctx.charge_input(5);
        ctx.emit(0, vec![Delta::insert(tuple![1i64])]);
        ctx.emit(0, vec![]); // empty batches are dropped
        ctx.punct(0, Punctuation::EndOfStream);
        let out = ctx.take_output();
        assert_eq!(out.len(), 2);
        assert_eq!(m.tuples_processed, 5);
        assert_eq!(m.deltas_emitted, 1);
        assert_eq!(m.punctuations, 1);
        assert!(m.cpu_units > 0.0);
    }
}
