//! The while/fixpoint operator: recursion with state refinement.
//!
//! "The fixpoint operator has a dual function: it forwards its input data
//! back to the input of one operator in the recursive query plan, and also
//! removes duplicate tuples according to a query-specified key, by
//! maintaining a set of processed tuples" (§4.2).
//!
//! Ports:
//! * input 0 — the base case; input 1 — the recursive case's output;
//! * output 0 — feedback into the recursive subplan; output 1 — final
//!   query results, emitted once the termination condition holds.
//!
//! The operator keeps the *mutable set* keyed by `FIXPOINT BY` columns.
//! In delta mode only the tuples changed in the current stratum (the Δᵢ
//! set) are fed back; in no-delta mode the entire mutable set is re-emitted
//! every stratum, reproducing the paper's `no-delta` baseline. The Δᵢ set is
//! also what gets checkpointed for incremental recovery (§4.3).

use crate::delta::{Annotation, Delta, Punctuation};
use crate::error::Result;
use crate::handlers::{TupleSet, WhileHandler};
use crate::operators::{OpCtx, Operator, OperatorState};
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

type Key = Vec<Value>;

/// Termination conditions for recursion (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// Implicit: stop when a stratum produces no new or changed tuples.
    Fixpoint,
    /// Run exactly `n` recursive strata (the paper's no-delta/wrap runs,
    /// which "do not perform convergence testing").
    ExactStrata(u64),
    /// Implicit fixpoint with a safety cap.
    FixpointOrMax(u64),
}

impl Termination {
    /// Whether another stratum should run, given this operator's pending
    /// delta count and the stratum just completed. Cluster execution sums
    /// pending counts across workers before deciding.
    pub fn wants_continue(&self, pending_total: usize, completed_stratum: u64) -> bool {
        match self {
            Termination::Fixpoint => pending_total > 0,
            Termination::ExactStrata(n) => completed_stratum + 1 < *n,
            Termination::FixpointOrMax(n) => pending_total > 0 && completed_stratum + 1 < *n,
        }
    }
}

/// The fixpoint (while) operator.
pub struct FixpointOp {
    key_cols: Vec<usize>,
    handler: Option<Arc<dyn WhileHandler>>,
    term: Termination,
    /// The mutable set: key → current tuple.
    state: HashMap<Key, Tuple>,
    /// Δᵢ: deltas produced in the current stratum, fed back on advance.
    pending: Vec<Delta>,
    /// In no-delta mode the full mutable set is re-emitted each stratum.
    delta_mode: bool,
    stratum: u64,
    ready_for_vote: bool,
    finished: bool,
    /// Count of deltas processed in the current stratum (reported to the
    /// coordinator alongside the pending count).
    processed_this_stratum: u64,
}

impl FixpointOp {
    /// Fixpoint keyed on `key_cols` with the given termination condition.
    pub fn new(key_cols: Vec<usize>, term: Termination) -> FixpointOp {
        FixpointOp {
            key_cols,
            handler: None,
            term,
            state: HashMap::new(),
            pending: Vec::new(),
            delta_mode: true,
            stratum: 0,
            ready_for_vote: false,
            finished: false,
            processed_this_stratum: 0,
        }
    }

    /// Install a while delta handler (§3.3).
    pub fn with_handler(mut self, h: Arc<dyn WhileHandler>) -> Self {
        self.handler = Some(h);
        self
    }

    /// Switch to no-delta mode: the entire mutable set is fed back each
    /// stratum instead of only the Δᵢ set.
    pub fn no_delta(mut self) -> Self {
        self.delta_mode = false;
        self
    }

    /// The termination condition.
    pub fn termination(&self) -> Termination {
        self.term
    }

    /// The `FIXPOINT BY` key columns.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Δᵢ set size for the just-completed stratum (the coordinator's vote).
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// The stratum currently being executed.
    pub fn stratum(&self) -> u64 {
        self.stratum
    }

    /// Whether the recursive input has punctuated the current stratum and
    /// the operator awaits the coordinator's decision.
    pub fn ready_for_vote(&self) -> bool {
        self.ready_for_vote
    }

    /// Whether final results have been emitted.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Size of the mutable set.
    pub fn state_size(&self) -> usize {
        self.state.len()
    }

    /// Wire size of the current Δᵢ set — what incremental checkpointing
    /// replicates per stratum (§4.3: "every machine buffers and replicates
    /// the mutable Δᵢ set processed by the local fixpoint operator").
    pub fn pending_bytes(&self) -> u64 {
        self.pending.iter().map(|d| d.byte_size() as u64).sum()
    }

    /// Apply one delta to the mutable set, recording feedback deltas.
    fn apply(&mut self, d: Delta, ctx: &mut OpCtx<'_>) -> Result<()> {
        self.processed_this_stratum += 1;
        let key = d.tuple.key(&self.key_cols);
        if let Some(h) = self.handler.clone() {
            ctx.charge_udf_call();
            // Present the key's current tuple to the handler as a TupleSet.
            let mut set = TupleSet::new();
            if let Some(existing) = self.state.get(&key) {
                set.insert(existing.clone());
            }
            let produced = h.update(&mut set, &d)?;
            match set.into_tuples().pop() {
                Some(t) => {
                    self.state.insert(key, t);
                }
                None => {
                    self.state.remove(&key);
                }
            }
            self.pending.extend(produced);
            return Ok(());
        }
        ctx.charge_cpu(ctx.cost.hash_cost);
        match &d.ann {
            Annotation::Insert | Annotation::Update(_) => {
                match self.state.get(&key) {
                    Some(existing) if *existing == d.tuple => {
                        // Duplicate derivation: set semantics drop it.
                    }
                    Some(existing) => {
                        let old = existing.clone();
                        self.state.insert(key, d.tuple.clone());
                        self.pending.push(Delta::replace(old, d.tuple));
                    }
                    None => {
                        self.state.insert(key, d.tuple.clone());
                        self.pending.push(Delta::insert(d.tuple));
                    }
                }
            }
            Annotation::Delete => {
                if self.state.remove(&key).is_some() {
                    self.pending.push(Delta::delete(d.tuple));
                }
            }
            Annotation::Replace(_) => {
                let old = self.state.insert(key, d.tuple.clone());
                match old {
                    Some(o) if o == d.tuple => {}
                    Some(o) => self.pending.push(Delta::replace(o, d.tuple)),
                    None => self.pending.push(Delta::insert(d.tuple)),
                }
            }
        }
        Ok(())
    }

    /// Emit the feedback batch for the next stratum.
    fn emit_feedback(&mut self, ctx: &mut OpCtx<'_>) {
        let feedback: Vec<Delta> = if self.delta_mode {
            std::mem::take(&mut self.pending)
        } else {
            self.pending.clear();
            let mut tuples: Vec<&Tuple> = self.state.values().collect();
            tuples.sort_unstable();
            tuples.into_iter().map(|t| Delta::insert(t.clone())).collect()
        };
        ctx.emit(0, feedback);
        ctx.punct(0, Punctuation::EndOfStratum(self.stratum));
    }

    /// Coordinator decision: continue with another stratum or finish.
    /// Called by the runtime after all fixpoints have become
    /// [`ready_for_vote`](Self::ready_for_vote).
    pub fn advance(&mut self, cont: bool, ctx: &mut OpCtx<'_>) -> Result<()> {
        self.ready_for_vote = false;
        self.processed_this_stratum = 0;
        if cont {
            self.stratum += 1;
            self.emit_feedback(ctx);
        } else {
            self.finished = true;
            // Final results: the mutable set, in deterministic order.
            let mut tuples: Vec<&Tuple> = self.state.values().collect();
            tuples.sort_unstable();
            let out: Vec<Delta> = tuples.into_iter().map(|t| Delta::insert(t.clone())).collect();
            ctx.emit(1, out);
            ctx.punct(1, Punctuation::EndOfStream);
            // Let the recursive subplan shut down.
            ctx.punct(0, Punctuation::EndOfStream);
        }
        Ok(())
    }

    /// Restore a checkpoint and queue the restored tuples as feedback so
    /// the recursive subplan's state is rebuilt (incremental recovery,
    /// §4.3). `stratum` is the last completed stratum.
    pub fn restore_and_resume(&mut self, ckpt: OperatorState, stratum: u64) {
        self.state.clear();
        self.pending.clear();
        for t in ckpt.tuples {
            let key = t.key(&self.key_cols);
            self.pending.push(Delta::insert(t.clone()));
            self.state.insert(key, t);
        }
        self.stratum = stratum;
        self.ready_for_vote = false;
        self.finished = false;
    }
}

impl Operator for FixpointOp {
    fn name(&self) -> String {
        format!("Fixpoint{:?}{}", self.key_cols, if self.delta_mode { "" } else { " (no-Δ)" })
    }

    fn n_inputs(&self) -> usize {
        2
    }

    fn on_deltas(&mut self, _port: usize, deltas: Vec<Delta>, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.charge_input(deltas.len());
        for d in deltas {
            self.apply(d, ctx)?;
        }
        Ok(())
    }

    fn on_punct(&mut self, port: usize, p: Punctuation, ctx: &mut OpCtx<'_>) -> Result<()> {
        match (port, p) {
            // Base case complete: start stratum 0 of the recursion.
            (0, Punctuation::EndOfStream) => {
                self.emit_feedback(ctx);
            }
            // Recursive case punctuated: ready for the coordinator's vote.
            (1, Punctuation::EndOfStratum(s)) => {
                debug_assert_eq!(s, self.stratum, "stratum punctuation mismatch");
                self.ready_for_vote = true;
            }
            // EndOfStream echoes back after we broadcast it; ignore.
            (1, Punctuation::EndOfStream) => {}
            (0, Punctuation::EndOfStratum(_)) => {
                // A stratified base case (unusual); treat as feedback point.
                self.emit_feedback(ctx);
            }
            _ => {}
        }
        Ok(())
    }

    fn as_fixpoint(&mut self) -> Option<&mut FixpointOp> {
        Some(self)
    }

    fn checkpoint(&self) -> Option<OperatorState> {
        let mut tuples: Vec<Tuple> = self.state.values().cloned().collect();
        tuples.sort_unstable();
        Some(OperatorState { tuples })
    }

    fn restore(&mut self, state: OperatorState) {
        self.restore_and_resume(state, 0);
    }

    fn reset(&mut self) {
        self.state.clear();
        self.pending.clear();
        self.stratum = 0;
        self.ready_for_vote = false;
        self.finished = false;
        self.processed_this_stratum = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{CostModel, ExecMetrics};
    use crate::operators::Event;
    use crate::tuple;
    use crate::udf::Registry;

    fn ctx_run<F: FnOnce(&mut FixpointOp, &mut OpCtx<'_>)>(
        op: &mut FixpointOp,
        f: F,
    ) -> Vec<(usize, Event)> {
        let reg = Registry::new();
        let cost = CostModel::default();
        let mut m = ExecMetrics::default();
        let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
        f(op, &mut ctx);
        ctx.take_output()
    }

    fn data_on(out: &[(usize, Event)], port: usize) -> Vec<Delta> {
        out.iter()
            .filter(|(p, _)| *p == port)
            .flat_map(|(_, e)| match e {
                Event::Data(d) => d.clone(),
                _ => vec![],
            })
            .collect()
    }

    #[test]
    fn base_case_feeds_back_on_eos() {
        let mut fp = FixpointOp::new(vec![0], Termination::Fixpoint);
        ctx_run(&mut fp, |op, ctx| {
            op.on_deltas(0, vec![Delta::insert(tuple![1i64, 1.0f64])], ctx).unwrap();
        });
        let out = ctx_run(&mut fp, |op, ctx| {
            op.on_punct(0, Punctuation::EndOfStream, ctx).unwrap();
        });
        assert_eq!(data_on(&out, 0), vec![Delta::insert(tuple![1i64, 1.0f64])]);
        assert!(out
            .iter()
            .any(|(p, e)| *p == 0 && matches!(e, Event::Punct(Punctuation::EndOfStratum(0)))));
    }

    #[test]
    fn set_semantics_dedup_by_key() {
        let mut fp = FixpointOp::new(vec![0], Termination::Fixpoint);
        ctx_run(&mut fp, |op, ctx| {
            op.on_deltas(0, vec![Delta::insert(tuple![1i64, 5.0f64])], ctx).unwrap();
            // Same key, same tuple: dropped.
            op.on_deltas(0, vec![Delta::insert(tuple![1i64, 5.0f64])], ctx).unwrap();
        });
        assert_eq!(fp.pending_count(), 1);
        assert_eq!(fp.state_size(), 1);
        // Same key, new value: replacement recorded.
        ctx_run(&mut fp, |op, ctx| {
            op.on_deltas(1, vec![Delta::insert(tuple![1i64, 6.0f64])], ctx).unwrap();
        });
        assert_eq!(fp.pending_count(), 2);
        assert_eq!(fp.state_size(), 1);
    }

    #[test]
    fn vote_and_advance_cycle() {
        let mut fp = FixpointOp::new(vec![0], Termination::Fixpoint);
        ctx_run(&mut fp, |op, ctx| {
            op.on_deltas(0, vec![Delta::insert(tuple![1i64])], ctx).unwrap();
            op.on_punct(0, Punctuation::EndOfStream, ctx).unwrap();
        });
        assert!(!fp.ready_for_vote());
        ctx_run(&mut fp, |op, ctx| {
            op.on_deltas(1, vec![Delta::insert(tuple![2i64])], ctx).unwrap();
            op.on_punct(1, Punctuation::EndOfStratum(0), ctx).unwrap();
        });
        assert!(fp.ready_for_vote());
        assert_eq!(fp.pending_count(), 1);
        // Continue: feedback goes out with the next stratum's punctuation.
        let out = ctx_run(&mut fp, |op, ctx| {
            op.advance(true, ctx).unwrap();
        });
        assert_eq!(data_on(&out, 0), vec![Delta::insert(tuple![2i64])]);
        assert_eq!(fp.stratum(), 1);
        // No new data this stratum → pending 0 → finish.
        ctx_run(&mut fp, |op, ctx| {
            op.on_punct(1, Punctuation::EndOfStratum(1), ctx).unwrap();
        });
        assert_eq!(fp.pending_count(), 0);
        let out = ctx_run(&mut fp, |op, ctx| {
            op.advance(false, ctx).unwrap();
        });
        let finals = data_on(&out, 1);
        assert_eq!(finals.len(), 2);
        assert!(fp.finished());
    }

    #[test]
    fn no_delta_mode_reemits_full_state() {
        let mut fp = FixpointOp::new(vec![0], Termination::ExactStrata(3)).no_delta();
        ctx_run(&mut fp, |op, ctx| {
            op.on_deltas(0, vec![Delta::insert(tuple![1i64]), Delta::insert(tuple![2i64])], ctx)
                .unwrap();
            op.on_punct(0, Punctuation::EndOfStream, ctx).unwrap();
        });
        // Stratum 1: only key 1 changed, but no-delta re-emits everything.
        ctx_run(&mut fp, |op, ctx| {
            op.on_deltas(1, vec![Delta::insert(tuple![1i64])], ctx).unwrap();
            op.on_punct(1, Punctuation::EndOfStratum(0), ctx).unwrap();
        });
        let out = ctx_run(&mut fp, |op, ctx| {
            op.advance(true, ctx).unwrap();
        });
        assert_eq!(data_on(&out, 0).len(), 2);
    }

    #[test]
    fn termination_conditions() {
        assert!(Termination::Fixpoint.wants_continue(5, 100));
        assert!(!Termination::Fixpoint.wants_continue(0, 0));
        assert!(Termination::ExactStrata(3).wants_continue(0, 1));
        assert!(!Termination::ExactStrata(3).wants_continue(99, 2));
        assert!(Termination::FixpointOrMax(10).wants_continue(1, 5));
        assert!(!Termination::FixpointOrMax(10).wants_continue(1, 9));
        assert!(!Termination::FixpointOrMax(10).wants_continue(0, 5));
    }

    #[test]
    fn checkpoint_and_restore_round_trip() {
        let mut fp = FixpointOp::new(vec![0], Termination::Fixpoint);
        ctx_run(&mut fp, |op, ctx| {
            op.on_deltas(0, vec![Delta::insert(tuple![1i64, 9.0f64])], ctx).unwrap();
        });
        let ckpt = fp.checkpoint().unwrap();
        assert_eq!(ckpt.tuples, vec![tuple![1i64, 9.0f64]]);

        let mut fresh = FixpointOp::new(vec![0], Termination::Fixpoint);
        fresh.restore_and_resume(ckpt, 7);
        assert_eq!(fresh.state_size(), 1);
        assert_eq!(fresh.stratum(), 7);
        // Restored state is queued as feedback for downstream rebuild.
        assert_eq!(fresh.pending_count(), 1);
    }

    #[test]
    fn delete_removes_from_state() {
        let mut fp = FixpointOp::new(vec![0], Termination::Fixpoint);
        ctx_run(&mut fp, |op, ctx| {
            op.on_deltas(0, vec![Delta::insert(tuple![1i64])], ctx).unwrap();
            op.on_deltas(0, vec![Delta::delete(tuple![1i64])], ctx).unwrap();
        });
        assert_eq!(fp.state_size(), 0);
        assert_eq!(fp.pending_count(), 2); // insert then delete both recorded
    }

    /// A monotone while handler: keep the smaller distance (SSSP-style).
    struct MinDist;
    impl WhileHandler for MinDist {
        fn name(&self) -> &str {
            "min-dist"
        }
        fn update(&self, rel: &mut TupleSet, d: &Delta) -> Result<Vec<Delta>> {
            let new_dist = d.tuple.get(1).as_double().unwrap_or(f64::INFINITY);
            let improved = match rel.iter().next() {
                Some(t) => new_dist < t.get(1).as_double().unwrap_or(f64::INFINITY),
                None => true,
            };
            if improved {
                rel.clear();
                rel.insert(d.tuple.clone());
                Ok(vec![Delta::insert(d.tuple.clone())])
            } else {
                Ok(vec![])
            }
        }
    }

    #[test]
    fn while_handler_controls_refinement() {
        let mut fp =
            FixpointOp::new(vec![0], Termination::Fixpoint).with_handler(Arc::new(MinDist));
        ctx_run(&mut fp, |op, ctx| {
            op.on_deltas(0, vec![Delta::insert(tuple![1i64, 5.0f64])], ctx).unwrap();
        });
        assert_eq!(fp.pending_count(), 1);
        // A worse distance is ignored entirely.
        ctx_run(&mut fp, |op, ctx| {
            op.on_deltas(1, vec![Delta::insert(tuple![1i64, 9.0f64])], ctx).unwrap();
        });
        assert_eq!(fp.pending_count(), 1);
        assert_eq!(fp.state_size(), 1);
        // A better one refines state and propagates.
        ctx_run(&mut fp, |op, ctx| {
            op.on_deltas(1, vec![Delta::insert(tuple![1i64, 2.0f64])], ctx).unwrap();
        });
        assert_eq!(fp.pending_count(), 2);
    }
}
