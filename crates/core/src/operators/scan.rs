//! Table scan: the source of a dataflow, reading a local partition.

use crate::col::ColumnBatch;
use crate::delta::{Delta, Punctuation};
use crate::error::Result;
use crate::operators::{OpCtx, Operator};
use crate::tuple::Tuple;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Batch size for scan emissions; matches the engine's message batching.
const SCAN_BATCH: usize = 1024;

/// Rows per morsel when a scan runs in morsel-parallel mode. Small enough
/// that threads finishing early keep stealing work (good balance under
/// skewed filter selectivity), large enough that the shared-cursor
/// `fetch_add` is amortized over thousands of rows.
pub const MORSEL_ROWS: usize = 4096;

/// Where a scan's rows come from.
///
/// `Owned` rows are *moved* into the dataflow (no per-row clone at all);
/// `Shared` rows stay where they are stored and each emitted tuple is an
/// `Arc` bump — no upfront deep copy of the table into the plan. Storage
/// backends hand out `Shared` sources (`rex-storage`'s catalog provider);
/// hand-built plans and per-worker partitions use `Owned`.
pub enum ScanRows {
    /// Rows owned by the scan, moved out on emission.
    Owned(Vec<Tuple>),
    /// A shared snapshot of stored rows, cloned (`Arc` bump) on emission.
    Shared(Arc<dyn AsRef<[Tuple]> + Send + Sync>),
}

impl From<Vec<Tuple>> for ScanRows {
    fn from(v: Vec<Tuple>) -> ScanRows {
        ScanRows::Owned(v)
    }
}

/// Scans a vector of tuples (the worker's local partition of a stored
/// table) and emits them as insertion deltas followed by end-of-stream.
///
/// On a provably insert-only pipeline, lowering switches the scan onto
/// the fast lane ([`insert_only`](ScanOp::insert_only)): batches go out
/// as run-length [`Event::Rows`](crate::operators::Event::Rows) without
/// per-row delta wrapping, and downstream lane operators keep them bare.
pub struct ScanOp {
    table: String,
    source: ScanRows,
    rows_lane: bool,
    /// Columnar lane: transpose each batch into an
    /// [`Event::Cols`](crate::operators::Event::Cols) columnar batch
    /// (implies the stream is insert-only, like `rows_lane`). Ragged
    /// batches fall back to `Event::Rows` per batch.
    cols_lane: bool,
    /// Total byte size of the source, when the storage layer already
    /// knows it — skips the per-row size accounting.
    known_bytes: Option<u64>,
    /// Morsel-parallel mode: a cursor shared with the sibling scans of the
    /// other worker threads, and the morsel size. Each thread's scan pulls
    /// `[start, start+size)` slices off the shared snapshot until the
    /// cursor passes the end — work-stealing over one table with one
    /// atomic, no row is emitted twice.
    morsel: Option<(Arc<AtomicUsize>, usize)>,
    /// Morsels this scan pulled (telemetry).
    morsels_pulled: u64,
}

impl ScanOp {
    /// Scan over the given local tuples (owned or shared; see
    /// [`ScanRows`]).
    pub fn new(table: impl Into<String>, tuples: impl Into<ScanRows>) -> ScanOp {
        ScanOp {
            table: table.into(),
            source: tuples.into(),
            rows_lane: false,
            cols_lane: false,
            known_bytes: None,
            morsel: None,
            morsels_pulled: 0,
        }
    }

    /// Run morsel-parallel: pull `size`-row morsels through `cursor`,
    /// which is shared with the equivalent scans in the other threads'
    /// plan copies. Only meaningful over a [`ScanRows::Shared`] source
    /// (owned sources are already per-thread partitions).
    pub fn morsel_cursor(mut self, cursor: Arc<AtomicUsize>, size: usize) -> ScanOp {
        debug_assert!(size > 0);
        self.morsel = Some((cursor, size));
        self
    }

    /// Emit run-length insert batches (`Event::Rows`) instead of wrapped
    /// deltas. Only valid on pipelines where every consumer treats the
    /// stream as insertions — which is any consumer, since operators
    /// without native fast-lane support receive the batch converted; the
    /// flag exists so lowering opts in only where the lane pays.
    pub fn insert_only(mut self, on: bool) -> ScanOp {
        self.rows_lane = on;
        self
    }

    /// Emit columnar insert batches (`Event::Cols`) instead of row
    /// batches: each [`SCAN_BATCH`] chunk (one morsel slice at a time in
    /// morsel mode) is transposed into a [`ColumnBatch`] so downstream
    /// filters and projections run vectorized kernels. Only meaningful
    /// together with [`insert_only`](ScanOp::insert_only).
    pub fn columnar(mut self, on: bool) -> ScanOp {
        self.cols_lane = on;
        self
    }

    /// Provide the source's total byte size (storage keeps it cached), so
    /// disk-read accounting needs no per-row size computation.
    pub fn known_bytes(mut self, bytes: Option<u64>) -> ScanOp {
        self.known_bytes = bytes;
        self
    }

    /// The table name this scan reads.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// Emit every row in [`SCAN_BATCH`]-sized batches, charging input
    /// metrics. Returns the summed row bytes when the source's total size
    /// is not already known (callers charge disk-read from whichever is
    /// available).
    fn emit_all(&self, mut it: impl Iterator<Item = Tuple>, ctx: &mut OpCtx<'_>) -> u64 {
        let mut bytes = 0u64;
        let count = self.known_bytes.is_none();
        let mut size = |t: &Tuple| {
            if count {
                bytes += t.byte_size() as u64;
            }
        };
        if self.rows_lane {
            loop {
                let batch: Vec<Tuple> = it.by_ref().take(SCAN_BATCH).inspect(&mut size).collect();
                if batch.is_empty() {
                    break;
                }
                ctx.charge_input(batch.len());
                if self.cols_lane {
                    match ColumnBatch::try_from_rows(batch) {
                        Ok(cols) => ctx.emit_cols(0, cols),
                        // Ragged batch: stay on the row lane for this batch.
                        Err(rows) => ctx.emit_rows(0, rows),
                    }
                } else {
                    ctx.emit_rows(0, batch);
                }
            }
        } else {
            loop {
                let batch: Vec<Delta> = it
                    .by_ref()
                    .take(SCAN_BATCH)
                    .map(|t| {
                        size(&t);
                        Delta::insert(t)
                    })
                    .collect();
                if batch.is_empty() {
                    break;
                }
                ctx.charge_input(batch.len());
                ctx.emit(0, batch);
            }
        }
        bytes
    }
}

impl Operator for ScanOp {
    fn name(&self) -> String {
        format!("Scan({})", self.table)
    }

    fn n_inputs(&self) -> usize {
        0
    }

    fn is_source(&self) -> bool {
        true
    }

    fn run_source(&mut self, ctx: &mut OpCtx<'_>) -> Result<()> {
        // Owned rows are *moved* straight into batches: each tuple is
        // handed on exactly once, with no per-row clone (not even an
        // `Arc` bump) between storage and the first operator. Shared rows
        // are emitted as `Arc` bumps off the stored snapshot — no upfront
        // deep copy. On the fast lane the batch is the rows themselves —
        // no per-row delta wrapping.
        match std::mem::replace(&mut self.source, ScanRows::Owned(Vec::new())) {
            ScanRows::Owned(v) => {
                let counted = self.emit_all(v.into_iter(), ctx);
                ctx.charge_disk_read(self.known_bytes.unwrap_or(counted));
            }
            ScanRows::Shared(s) => {
                let rows: &[Tuple] = (*s).as_ref();
                if let Some((cursor, size)) = self.morsel.take() {
                    let mut emitted = 0usize;
                    let mut counted = 0u64;
                    loop {
                        let start = cursor.fetch_add(size, Ordering::Relaxed);
                        if start >= rows.len() {
                            break;
                        }
                        let end = (start + size).min(rows.len());
                        self.morsels_pulled += 1;
                        emitted += end - start;
                        counted += self.emit_all(rows[start..end].iter().cloned(), ctx);
                    }
                    // Each thread charges disk for the slice it actually
                    // read; with a known total, proportionally.
                    let bytes = match self.known_bytes {
                        Some(kb) if !rows.is_empty() => kb * emitted as u64 / rows.len() as u64,
                        Some(kb) => kb,
                        None => counted,
                    };
                    ctx.charge_disk_read(bytes);
                } else {
                    let counted = self.emit_all(rows.iter().cloned(), ctx);
                    ctx.charge_disk_read(self.known_bytes.unwrap_or(counted));
                }
            }
        }
        ctx.punct(0, Punctuation::EndOfStream);
        Ok(())
    }

    fn on_deltas(&mut self, _port: usize, _deltas: Vec<Delta>, _ctx: &mut OpCtx<'_>) -> Result<()> {
        Err(crate::error::RexError::Exec("scan has no inputs".into()))
    }

    fn on_punct(&mut self, _port: usize, _p: Punctuation, _ctx: &mut OpCtx<'_>) -> Result<()> {
        Err(crate::error::RexError::Exec("scan has no inputs".into()))
    }

    fn reset(&mut self) {
        // Tuples were consumed by run_source; a reset scan re-reads storage
        // via the runtime, which re-creates scan operators. Nothing to do.
    }

    fn stats_detail(&self) -> Vec<(String, u64)> {
        if self.morsels_pulled > 0 {
            vec![("morsels".into(), self.morsels_pulled)]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{CostModel, ExecMetrics};
    use crate::operators::Event;
    use crate::tuple;
    use crate::udf::Registry;

    #[test]
    fn scan_emits_inserts_then_eos() {
        let mut op = ScanOp::new("t", vec![tuple![1i64], tuple![2i64]]);
        let reg = Registry::new();
        let cost = CostModel::default();
        let mut m = ExecMetrics::default();
        let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
        op.run_source(&mut ctx).unwrap();
        let out = ctx.take_output();
        assert_eq!(out.len(), 2);
        match &out[0].1 {
            Event::Data(ds) => {
                assert_eq!(ds.len(), 2);
                assert_eq!(ds[0], Delta::insert(tuple![1i64]));
            }
            _ => panic!("expected data"),
        }
        assert!(matches!(out[1].1, Event::Punct(Punctuation::EndOfStream)));
        assert!(m.disk_read > 0);
    }

    #[test]
    fn morsel_scans_cover_table_exactly_once() {
        let tuples: Vec<_> = (0..10_000i64).map(|i| tuple![i]).collect();
        let shared: Arc<dyn AsRef<[Tuple]> + Send + Sync> = Arc::new(tuples.clone());
        let cursor = Arc::new(AtomicUsize::new(0));
        let reg = Registry::new();
        let cost = CostModel::default();
        let mut got = Vec::new();
        let mut morsels = 0;
        // Two sibling scans off one cursor: together they must emit every
        // row exactly once, however the morsels interleave.
        for _ in 0..2 {
            let mut op = ScanOp::new("t", ScanRows::Shared(shared.clone()))
                .morsel_cursor(cursor.clone(), 512);
            let mut m = ExecMetrics::default();
            let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
            op.run_source(&mut ctx).unwrap();
            for (_, ev) in ctx.take_output() {
                if let Event::Data(ds) = ev {
                    got.extend(ds.into_iter().map(|d| d.tuple));
                }
            }
            morsels += op.stats_detail().iter().map(|(_, v)| v).sum::<u64>();
        }
        got.sort();
        assert_eq!(got, tuples);
        assert_eq!(morsels, 10_000_u64.div_ceil(512));
    }

    #[test]
    fn scan_batches_large_inputs() {
        let tuples: Vec<_> = (0..2500i64).map(|i| tuple![i]).collect();
        let mut op = ScanOp::new("big", tuples);
        let reg = Registry::new();
        let cost = CostModel::default();
        let mut m = ExecMetrics::default();
        let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
        op.run_source(&mut ctx).unwrap();
        let out = ctx.take_output();
        // 3 data batches (1024+1024+452) + punct
        assert_eq!(out.len(), 4);
    }
}
