//! Table scan: the source of a dataflow, reading a local partition.

use crate::delta::{Delta, Punctuation};
use crate::error::Result;
use crate::operators::{OpCtx, Operator};
use crate::tuple::Tuple;

/// Batch size for scan emissions; matches the engine's message batching.
const SCAN_BATCH: usize = 1024;

/// Scans a vector of tuples (the worker's local partition of a stored
/// table) and emits them as insertion deltas followed by end-of-stream.
pub struct ScanOp {
    table: String,
    tuples: Vec<Tuple>,
}

impl ScanOp {
    /// Scan over the given local tuples.
    pub fn new(table: impl Into<String>, tuples: Vec<Tuple>) -> ScanOp {
        ScanOp { table: table.into(), tuples }
    }

    /// The table name this scan reads.
    pub fn table(&self) -> &str {
        &self.table
    }
}

impl Operator for ScanOp {
    fn name(&self) -> String {
        format!("Scan({})", self.table)
    }

    fn n_inputs(&self) -> usize {
        0
    }

    fn is_source(&self) -> bool {
        true
    }

    fn run_source(&mut self, ctx: &mut OpCtx<'_>) -> Result<()> {
        let tuples = std::mem::take(&mut self.tuples);
        let mut bytes = 0u64;
        for chunk in tuples.chunks(SCAN_BATCH) {
            let batch: Vec<Delta> = chunk
                .iter()
                .map(|t| {
                    bytes += t.byte_size() as u64;
                    Delta::insert(t.clone())
                })
                .collect();
            ctx.charge_input(batch.len());
            ctx.emit(0, batch);
        }
        ctx.charge_disk_read(bytes);
        ctx.punct(0, Punctuation::EndOfStream);
        Ok(())
    }

    fn on_deltas(&mut self, _port: usize, _deltas: Vec<Delta>, _ctx: &mut OpCtx<'_>) -> Result<()> {
        Err(crate::error::RexError::Exec("scan has no inputs".into()))
    }

    fn on_punct(&mut self, _port: usize, _p: Punctuation, _ctx: &mut OpCtx<'_>) -> Result<()> {
        Err(crate::error::RexError::Exec("scan has no inputs".into()))
    }

    fn reset(&mut self) {
        // Tuples were consumed by run_source; a reset scan re-reads storage
        // via the runtime, which re-creates scan operators. Nothing to do.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{CostModel, ExecMetrics};
    use crate::operators::Event;
    use crate::tuple;
    use crate::udf::Registry;

    #[test]
    fn scan_emits_inserts_then_eos() {
        let mut op = ScanOp::new("t", vec![tuple![1i64], tuple![2i64]]);
        let reg = Registry::new();
        let cost = CostModel::default();
        let mut m = ExecMetrics::default();
        let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
        op.run_source(&mut ctx).unwrap();
        let out = ctx.take_output();
        assert_eq!(out.len(), 2);
        match &out[0].1 {
            Event::Data(ds) => {
                assert_eq!(ds.len(), 2);
                assert_eq!(ds[0], Delta::insert(tuple![1i64]));
            }
            _ => panic!("expected data"),
        }
        assert!(matches!(out[1].1, Event::Punct(Punctuation::EndOfStream)));
        assert!(m.disk_read > 0);
    }

    #[test]
    fn scan_batches_large_inputs() {
        let tuples: Vec<_> = (0..2500i64).map(|i| tuple![i]).collect();
        let mut op = ScanOp::new("big", tuples);
        let reg = Registry::new();
        let cost = CostModel::default();
        let mut m = ExecMetrics::default();
        let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
        op.run_source(&mut ctx).unwrap();
        let out = ctx.take_output();
        // 3 data batches (1024+1024+452) + punct
        assert_eq!(out.len(), 4);
    }
}
