//! Top-k selection: the physical operator behind `ORDER BY … LIMIT`.
//!
//! The operator buffers its input as a counted multiset and, on every
//! punctuation, re-derives the current *selection* — the rows that survive
//! `OFFSET`/`LIMIT` under the sort order — and emits the **diff** against
//! what it last emitted. Downstream sinks apply deltas, so repeated
//! flushes (one per gathered worker punctuation in distributed plans)
//! converge on the correct selection without double counting.
//!
//! Ordering is total and deterministic: rows compare by each sort key in
//! turn (descending keys reversed), then by the full tuple as a
//! tie-break. This makes `LIMIT` without `ORDER BY` (no keys) a
//! deterministic prefix of the tuple order, and makes ties under
//! `ORDER BY` resolve identically on every engine.
//!
//! In distributed lowering the operator appears twice: a *partial* top-k
//! per worker (capped at `limit + offset`, no offset applied) ahead of a
//! gather boundary, and a *final* top-k applying the true offset and
//! limit at the gather owner — the classic scatter/gather top-k.

use crate::delta::{Annotation, Delta, Punctuation};
use crate::error::Result;
use crate::expr::Expr;
use crate::hash::FxHashMap;
use crate::operators::{OpCtx, Operator};
use crate::tuple::Tuple;
use crate::value::Value;
use std::cmp::Ordering;

/// One `ORDER BY` key: the expression to sort on and its direction.
#[derive(Debug, Clone, PartialEq)]
pub struct SortSpec {
    /// Key expression, evaluated over the input row.
    pub expr: Expr,
    /// `true` for `DESC`.
    pub desc: bool,
}

impl SortSpec {
    /// An ascending key on `expr`.
    pub fn asc(expr: Expr) -> SortSpec {
        SortSpec { expr, desc: false }
    }

    /// A descending key on `expr`.
    pub fn desc(expr: Expr) -> SortSpec {
        SortSpec { expr, desc: true }
    }
}

/// The one total order `ORDER BY` uses everywhere: compare pre-evaluated
/// key values in key order (descending keys reversed), then the full
/// tuples as the tie-break. Row *selection* ([`TopKOp`]) and row
/// *presentation* (the session's final ordering of engine results) both
/// call this, so the two can never disagree about which rows a LIMIT
/// keeps versus how they are displayed.
pub fn compare_by_keys(
    keys: &[SortSpec],
    a_keys: &[Value],
    a: &Tuple,
    b_keys: &[Value],
    b: &Tuple,
) -> Ordering {
    for (i, k) in keys.iter().enumerate() {
        let ord = a_keys[i].cmp(&b_keys[i]);
        let ord = if k.desc { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    a.cmp(b)
}

/// Buffering sort + offset/limit selection with diff emission.
pub struct TopKOp {
    keys: Vec<SortSpec>,
    fetch: Option<usize>,
    offset: usize,
    /// Input multiset: tuple → net multiplicity.
    buffer: FxHashMap<Tuple, i64>,
    /// What the operator currently contributes downstream.
    emitted: FxHashMap<Tuple, i64>,
}

impl TopKOp {
    /// Select `fetch` rows (all when `None`) after skipping `offset`, in
    /// the order given by `keys` (full-tuple tie-break).
    pub fn new(keys: Vec<SortSpec>, fetch: Option<usize>, offset: usize) -> TopKOp {
        TopKOp { keys, fetch, offset, buffer: FxHashMap::default(), emitted: FxHashMap::default() }
    }

    /// Compute the current selection as a counted multiset.
    fn selection(&self, ctx: &mut OpCtx<'_>) -> Result<Vec<(Tuple, i64)>> {
        // Evaluate the sort keys once per distinct tuple.
        let mut entries: Vec<(Vec<Value>, &Tuple, i64)> = Vec::new();
        for (t, &n) in self.buffer.iter() {
            if n <= 0 {
                continue; // cancelled rows contribute nothing
            }
            let mut kv = Vec::with_capacity(self.keys.len());
            for k in &self.keys {
                kv.push(k.expr.eval(t, ctx.reg)?);
            }
            entries.push((kv, t, n));
        }
        ctx.charge_cpu(entries.len() as f64 * ctx.cost.cpu_per_tuple);
        entries.sort_unstable_by(|a, b| compare_by_keys(&self.keys, &a.0, a.1, &b.0, b.1));
        // Walk the sorted multiset, skipping `offset` rows and taking
        // `fetch`, splitting multiplicities at the boundaries.
        let mut out = Vec::new();
        let mut skip = self.offset as i64;
        let mut take = self.fetch.map(|f| f as i64);
        for (_, t, n) in entries {
            let mut n = n;
            if skip > 0 {
                let s = skip.min(n);
                skip -= s;
                n -= s;
            }
            if n == 0 {
                continue;
            }
            match &mut take {
                None => out.push((t.clone(), n)),
                Some(rem) => {
                    if *rem == 0 {
                        break;
                    }
                    let took = n.min(*rem);
                    *rem -= took;
                    out.push((t.clone(), took));
                }
            }
        }
        Ok(out)
    }
}

impl Operator for TopKOp {
    fn name(&self) -> String {
        let dir: Vec<String> = self
            .keys
            .iter()
            .map(|k| format!("{:?}{}", k.expr, if k.desc { " desc" } else { "" }))
            .collect();
        format!("TopK[{}] fetch={:?} offset={}", dir.join(","), self.fetch, self.offset)
    }

    fn on_deltas(&mut self, _port: usize, deltas: Vec<Delta>, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.charge_input(deltas.len());
        for d in deltas {
            match d.ann {
                Annotation::Insert | Annotation::Update(_) => {
                    *self.buffer.entry(d.tuple).or_insert(0) += 1;
                }
                Annotation::Delete => {
                    *self.buffer.entry(d.tuple).or_insert(0) -= 1;
                }
                Annotation::Replace(old) => {
                    *self.buffer.entry(old).or_insert(0) -= 1;
                    *self.buffer.entry(d.tuple).or_insert(0) += 1;
                }
            }
        }
        Ok(())
    }

    fn on_punct(&mut self, _port: usize, p: Punctuation, ctx: &mut OpCtx<'_>) -> Result<()> {
        let selection = self.selection(ctx)?;
        // Diff the new selection against what was last emitted.
        let mut diff: FxHashMap<Tuple, i64> =
            self.emitted.iter().map(|(t, n)| (t.clone(), -n)).collect();
        for (t, n) in &selection {
            *diff.entry(t.clone()).or_insert(0) += n;
        }
        let mut out = Vec::new();
        for (t, n) in diff {
            let d = if n > 0 { Delta::insert(t) } else { Delta::delete(t) };
            for _ in 0..n.abs() {
                out.push(d.clone());
            }
        }
        self.emitted = selection.into_iter().collect();
        ctx.emit(0, out);
        ctx.punct(0, p);
        Ok(())
    }

    fn reset(&mut self) {
        self.buffer.clear();
        self.emitted.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{CostModel, ExecMetrics};
    use crate::operators::Event;
    use crate::tuple;
    use crate::udf::Registry;

    fn drive(op: &mut TopKOp, deltas: Vec<Delta>, punct: bool) -> Vec<Delta> {
        let reg = Registry::with_builtins();
        let cost = CostModel::default();
        let mut m = ExecMetrics::default();
        let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
        op.on_deltas(0, deltas, &mut ctx).unwrap();
        if punct {
            op.on_punct(0, Punctuation::EndOfStream, &mut ctx).unwrap();
        }
        let mut out: Vec<Delta> = ctx
            .take_output()
            .into_iter()
            .flat_map(|(_, e)| match e {
                Event::Data(d) => d,
                _ => vec![],
            })
            .collect();
        out.sort_by(|a, b| a.tuple.cmp(&b.tuple));
        out
    }

    #[test]
    fn selects_top_k_descending() {
        let mut op = TopKOp::new(vec![SortSpec::desc(Expr::col(1))], Some(2), 0);
        let out = drive(
            &mut op,
            vec![
                Delta::insert(tuple![1i64, 10i64]),
                Delta::insert(tuple![2i64, 30i64]),
                Delta::insert(tuple![3i64, 20i64]),
            ],
            true,
        );
        assert_eq!(
            out,
            vec![Delta::insert(tuple![2i64, 30i64]), Delta::insert(tuple![3i64, 20i64])]
        );
    }

    #[test]
    fn offset_skips_and_limit_bounds() {
        let mut op = TopKOp::new(vec![SortSpec::asc(Expr::col(0))], Some(2), 1);
        let out = drive(&mut op, (0..5i64).map(|i| Delta::insert(tuple![i])).collect(), true);
        assert_eq!(out, vec![Delta::insert(tuple![1i64]), Delta::insert(tuple![2i64])]);
    }

    #[test]
    fn later_punctuation_emits_only_the_diff() {
        let mut op = TopKOp::new(vec![SortSpec::asc(Expr::col(0))], Some(2), 0);
        let out =
            drive(&mut op, vec![Delta::insert(tuple![5i64]), Delta::insert(tuple![7i64])], true);
        assert_eq!(out.len(), 2);
        // A smaller row arrives (another worker's partial, say): the
        // selection shifts and only the displaced row is retracted.
        let out = drive(&mut op, vec![Delta::insert(tuple![1i64])], true);
        assert_eq!(out, vec![Delta::insert(tuple![1i64]), Delta::delete(tuple![7i64])]);
    }

    #[test]
    fn ties_resolve_by_full_tuple_order() {
        let mut op = TopKOp::new(vec![SortSpec::asc(Expr::col(1))], Some(2), 0);
        let out = drive(
            &mut op,
            vec![
                Delta::insert(tuple![9i64, 1i64]),
                Delta::insert(tuple![2i64, 1i64]),
                Delta::insert(tuple![5i64, 1i64]),
            ],
            true,
        );
        assert_eq!(out, vec![Delta::insert(tuple![2i64, 1i64]), Delta::insert(tuple![5i64, 1i64])]);
    }

    #[test]
    fn deletions_and_duplicates_respect_multiplicity() {
        let mut op = TopKOp::new(vec![], Some(3), 0);
        let out = drive(
            &mut op,
            vec![
                Delta::insert(tuple![1i64]),
                Delta::insert(tuple![1i64]),
                Delta::insert(tuple![2i64]),
                Delta::insert(tuple![3i64]),
                Delta::delete(tuple![1i64]),
            ],
            true,
        );
        // Multiset after deltas: {1, 2, 3}; keyless order = tuple order.
        assert_eq!(
            out,
            vec![
                Delta::insert(tuple![1i64]),
                Delta::insert(tuple![2i64]),
                Delta::insert(tuple![3i64]),
            ]
        );
    }

    #[test]
    fn no_fetch_passes_everything_in_multiset() {
        let mut op = TopKOp::new(vec![SortSpec::asc(Expr::col(0))], None, 0);
        let out =
            drive(&mut op, vec![Delta::insert(tuple![2i64]), Delta::insert(tuple![2i64])], true);
        assert_eq!(out.len(), 2);
    }
}
