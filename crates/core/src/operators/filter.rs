//! Selection with full delta semantics.

use crate::col::ColumnBatch;
use crate::delta::{Annotation, Delta, Punctuation};
use crate::error::Result;
use crate::expr::{CompiledExpr, Expr};
use crate::operators::{OpCtx, Operator};
use crate::tuple::Tuple;

/// Filters deltas by a predicate.
///
/// Stateless propagation (§3.3): the annotation rides along. Replacement
/// deltas need care — the old and new tuple may fall on different sides of
/// the predicate, turning a replacement into an insertion or deletion:
///
/// | old passes | new passes | output                 |
/// |-----------:|-----------:|------------------------|
/// | yes        | yes        | `→(old) new`           |
/// | no         | yes        | `+() new`              |
/// | yes        | no         | `-() old`              |
/// | no         | no         | nothing                |
pub struct FilterOp {
    predicate: Expr,
    /// The predicate pre-compiled for the per-row path: `col OP lit` /
    /// `col OP col` shapes evaluate on borrowed operands with no clones.
    compiled: CompiledExpr,
    has_udf: bool,
    /// Rows that arrived on a batch lane (`Rows`/`Cols`), for telemetry.
    batch_in: u64,
    /// Rows of those that passed the predicate.
    batch_out: u64,
}

impl FilterOp {
    /// Filter by `predicate` (NULL counts as false, per SQL WHERE).
    pub fn new(predicate: Expr) -> FilterOp {
        let compiled = CompiledExpr::compile(&predicate);
        let has_udf = predicate.contains_udf();
        FilterOp { predicate, compiled, has_udf, batch_in: 0, batch_out: 0 }
    }

    /// The predicate expression.
    pub fn predicate(&self) -> &Expr {
        &self.predicate
    }
}

impl Operator for FilterOp {
    fn name(&self) -> String {
        format!("Filter({})", "σ")
    }

    fn on_deltas(
        &mut self,
        _port: usize,
        mut deltas: Vec<Delta>,
        ctx: &mut OpCtx<'_>,
    ) -> Result<()> {
        ctx.charge_input(deltas.len());
        if self.has_udf {
            for _ in 0..deltas.len() {
                ctx.charge_udf_call();
            }
        }
        // Fast path: a batch without replacement deltas filters in place —
        // no output vector, no per-delta moves. (Replacements can change
        // kind depending on which side of the predicate each tuple falls,
        // so they take the rewriting path below.)
        if !deltas.iter().any(|d| matches!(d.ann, Annotation::Replace(_))) {
            let mut err = None;
            deltas.retain(|d| match self.compiled.eval_predicate(&d.tuple, ctx.reg) {
                Ok(pass) => pass,
                Err(e) => {
                    err = Some(e);
                    false
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
            ctx.emit(0, deltas);
            return Ok(());
        }
        let mut out = Vec::new();
        for d in deltas {
            let new_pass = self.compiled.eval_predicate(&d.tuple, ctx.reg)?;
            match &d.ann {
                Annotation::Replace(old) => {
                    let old_pass = self.compiled.eval_predicate(old, ctx.reg)?;
                    match (old_pass, new_pass) {
                        (true, true) => out.push(d),
                        (false, true) => out.push(Delta::insert(d.tuple)),
                        (true, false) => out.push(Delta::delete(old.clone())),
                        (false, false) => {}
                    }
                }
                _ => {
                    if new_pass {
                        out.push(d);
                    }
                }
            }
        }
        ctx.emit(0, out);
        Ok(())
    }

    /// Fast lane: bare tuples filter in place — no deltas to unwrap, no
    /// annotation cases to consider.
    fn on_rows(&mut self, _port: usize, mut rows: Vec<Tuple>, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.charge_input(rows.len());
        self.batch_in += rows.len() as u64;
        if self.has_udf {
            for _ in 0..rows.len() {
                ctx.charge_udf_call();
            }
        }
        let mut err = None;
        rows.retain(|t| match self.compiled.eval_predicate(t, ctx.reg) {
            Ok(pass) => pass,
            Err(e) => {
                err = Some(e);
                false
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        self.batch_out += rows.len() as u64;
        ctx.emit_rows(0, rows);
        Ok(())
    }

    /// Columnar lane: the whole batch evaluates through the vectorized
    /// comparison kernels into a narrowed selection vector — no data
    /// movement at all on the typed shapes.
    fn on_cols(&mut self, _port: usize, mut batch: ColumnBatch, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.charge_input(batch.len());
        self.batch_in += batch.len() as u64;
        if self.has_udf {
            for _ in 0..batch.len() {
                ctx.charge_udf_call();
            }
        }
        batch.filter(&self.compiled, ctx.reg)?;
        self.batch_out += batch.len() as u64;
        ctx.emit_cols(0, batch);
        Ok(())
    }

    fn on_punct(&mut self, _port: usize, p: Punctuation, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.punct(0, p);
        Ok(())
    }

    fn reset(&mut self) {
        self.batch_in = 0;
        self.batch_out = 0;
    }

    fn stats_detail(&self) -> Vec<(String, u64)> {
        if self.batch_in == 0 {
            return Vec::new();
        }
        vec![
            ("batch_rows".into(), self.batch_in),
            // Percent of batched rows that survived the predicate.
            ("selectivity".into(), self.batch_out * 100 / self.batch_in),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{CostModel, ExecMetrics};
    use crate::operators::Event;
    use crate::tuple;
    use crate::udf::Registry;
    use crate::value::Value;

    fn run(op: &mut FilterOp, deltas: Vec<Delta>) -> Vec<Delta> {
        let reg = Registry::with_builtins();
        let cost = CostModel::default();
        let mut m = ExecMetrics::default();
        let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
        op.on_deltas(0, deltas, &mut ctx).unwrap();
        ctx.take_output()
            .into_iter()
            .flat_map(|(_, e)| match e {
                Event::Data(d) => d,
                _ => vec![],
            })
            .collect()
    }

    #[test]
    fn passes_and_drops_inserts() {
        let mut op = FilterOp::new(Expr::col(0).gt(Expr::lit(5i64)));
        let out = run(&mut op, vec![Delta::insert(tuple![9i64]), Delta::insert(tuple![3i64])]);
        assert_eq!(out, vec![Delta::insert(tuple![9i64])]);
    }

    #[test]
    fn replacement_crossing_predicate_becomes_insert_or_delete() {
        let mut op = FilterOp::new(Expr::col(0).gt(Expr::lit(5i64)));
        // old fails, new passes -> insert
        let out = run(&mut op, vec![Delta::replace(tuple![1i64], tuple![9i64])]);
        assert_eq!(out, vec![Delta::insert(tuple![9i64])]);
        // old passes, new fails -> delete(old)
        let out = run(&mut op, vec![Delta::replace(tuple![8i64], tuple![2i64])]);
        assert_eq!(out, vec![Delta::delete(tuple![8i64])]);
        // both pass -> replacement survives
        let out = run(&mut op, vec![Delta::replace(tuple![8i64], tuple![9i64])]);
        assert_eq!(out, vec![Delta::replace(tuple![8i64], tuple![9i64])]);
        // both fail -> nothing
        let out = run(&mut op, vec![Delta::replace(tuple![1i64], tuple![2i64])]);
        assert!(out.is_empty());
    }

    #[test]
    fn update_annotation_rides_along() {
        let mut op = FilterOp::new(Expr::col(0).gt(Expr::lit(0i64)));
        let d = Delta::update(tuple![1i64], Value::Double(0.5));
        let out = run(&mut op, vec![d.clone()]);
        assert_eq!(out, vec![d]);
    }

    #[test]
    fn punctuation_forwarded() {
        let mut op = FilterOp::new(Expr::lit(true));
        let reg = Registry::new();
        let cost = CostModel::default();
        let mut m = ExecMetrics::default();
        let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
        op.on_punct(0, Punctuation::EndOfStratum(2), &mut ctx).unwrap();
        let out = ctx.take_output();
        assert!(matches!(out[0].1, Event::Punct(Punctuation::EndOfStratum(2))));
    }
}
