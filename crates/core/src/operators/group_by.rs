//! Pipelined group-by with per-aggregate delta state.
//!
//! "A group by operator's internal state includes a map from the grouping
//! key to some aggregate function-specific form of intermediate state, for
//! each aggregate function being computed. As a group by operator receives a
//! delta, it can determine the key associated with the delta, but then each
//! aggregate function needs to determine how to update its own intermediate
//! state and what to emit" (§3.3).
//!
//! At stratum end, only *changed* groups are flushed: an unseen group emits
//! an insertion, a previously-emitted group emits a replacement. Retaining
//! state across strata (`retain_across_strata`) is what makes delta-based
//! recursion incremental; clearing it reproduces the `no-delta`
//! configuration that re-aggregates everything each iteration.

use crate::delta::{Delta, Punctuation};
use crate::error::Result;
use crate::handlers::{AggHandler, AggOutputKind, AggState};
use crate::hash::KeyedTable;
use crate::operators::{OpCtx, Operator, OperatorState};
use crate::tuple::Tuple;
use crate::value::Value;
use std::sync::Arc;

type Key = Vec<Value>;

/// One aggregate computation within a group-by.
#[derive(Clone)]
pub struct AggSpec {
    /// The handler implementing AGGSTATE/AGGRESULT.
    pub handler: Arc<dyn AggHandler>,
    /// Which input columns feed the aggregate (projected before dispatch).
    pub input_cols: Vec<usize>,
}

impl AggSpec {
    /// Build an aggregate spec.
    pub fn new(handler: Arc<dyn AggHandler>, input_cols: Vec<usize>) -> AggSpec {
        AggSpec { handler, input_cols }
    }
}

struct GroupEntry {
    states: Vec<AggState>,
    /// What this group last emitted (scalar mode), for replacement deltas.
    last_emitted: Option<Tuple>,
    /// Last emitted result tuples (table-valued mode).
    last_results: Vec<Tuple>,
    changed: bool,
}

/// The group-by operator.
///
/// Group state lives in a [`KeyedTable`], so the per-delta group lookup
/// hashes and compares the grouping columns in place; an owned key is
/// allocated only when a group is first seen.
pub struct GroupByOp {
    key_cols: Vec<usize>,
    aggs: Vec<AggSpec>,
    groups: KeyedTable<GroupEntry>,
    /// Keep aggregate state across strata (delta mode). When false the
    /// operator clears itself after each flush (no-delta / Hadoop-like).
    retain_across_strata: bool,
    /// Streamed partial aggregation: forward handler intermediate deltas
    /// immediately instead of waiting for punctuation (§4.2).
    streaming: bool,
    /// Reusable projection buffer (one allocation per projected tuple
    /// instead of two) and a cached empty tuple for zero-column
    /// aggregates like `count(*)` (an `Arc` bump instead of an
    /// allocation per row).
    scratch: Vec<Value>,
    empty: Tuple,
}

impl GroupByOp {
    /// Group on `key_cols`, computing `aggs`.
    pub fn new(key_cols: Vec<usize>, aggs: Vec<AggSpec>) -> GroupByOp {
        GroupByOp {
            key_cols,
            aggs,
            groups: KeyedTable::new(),
            retain_across_strata: true,
            streaming: false,
            scratch: Vec::new(),
            empty: Tuple::empty(),
        }
    }

    /// Disable cross-stratum state retention (the `no-delta` strategy).
    pub fn without_retention(mut self) -> Self {
        self.retain_across_strata = false;
        self
    }

    /// Enable streamed partial aggregation.
    pub fn streaming(mut self) -> Self {
        self.streaming = true;
        self
    }

    /// Number of groups currently held.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    fn flush(&mut self, ctx: &mut OpCtx<'_>) -> Result<Vec<Delta>> {
        let mut out = Vec::new();
        // Deterministic flush order simplifies testing and reproducibility.
        let mut changed_keys: Vec<Key> =
            self.groups.iter().filter(|(_, g)| g.changed).map(|(k, _)| k.to_vec()).collect();
        changed_keys.sort_unstable();
        for key in changed_keys {
            let table_valued = self
                .aggs
                .first()
                .map(|a| a.handler.output_kind() == AggOutputKind::TableValued)
                .unwrap_or(false);
            let g = self.groups.get_mut(&key).expect("changed key exists");
            if table_valued {
                // Single table-valued UDA: key-prefixed result tuples.
                let spec = &self.aggs[0];
                if !spec.handler.is_builtin() {
                    ctx.charge_udf_call();
                }
                let results = spec.handler.agg_result(&g.states[0])?;
                let mut tuples: Vec<Tuple> = Vec::with_capacity(results.len());
                for d in results {
                    let mut vals = key.clone();
                    vals.extend(d.tuple.values().iter().cloned());
                    tuples.push(Tuple::new(vals));
                }
                if tuples != g.last_results {
                    for t in &tuples {
                        out.push(Delta::insert(t.clone()));
                    }
                    g.last_results = tuples;
                }
            } else {
                let mut vals = key.clone();
                for (spec, state) in self.aggs.iter().zip(&g.states) {
                    if !spec.handler.is_builtin() {
                        ctx.charge_udf_call();
                    }
                    let mut results = spec.handler.agg_result(state)?;
                    if let Some(d) = results.pop() {
                        vals.push(d.tuple.get(0).clone());
                    } else {
                        vals.push(Value::Null);
                    }
                }
                let t = Tuple::new(vals);
                match &g.last_emitted {
                    None => out.push(Delta::insert(t.clone())),
                    Some(prev) if prev != &t => out.push(Delta::replace(prev.clone(), t.clone())),
                    Some(_) => {} // value unchanged: emit nothing
                }
                g.last_emitted = Some(t);
            }
            g.changed = false;
        }
        if !self.retain_across_strata {
            self.groups.clear();
        }
        Ok(out)
    }
}

impl Operator for GroupByOp {
    fn name(&self) -> String {
        let names: Vec<&str> = self.aggs.iter().map(|a| a.handler.name()).collect();
        format!("GroupBy[{}]", names.join(","))
    }

    fn on_deltas(&mut self, _port: usize, deltas: Vec<Delta>, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.charge_input(deltas.len());
        let mut streamed = Vec::new();
        for d in deltas {
            ctx.charge_cpu(ctx.cost.hash_cost);
            let aggs = &self.aggs;
            let entry = self.groups.probe_or_insert_with(&d.tuple, &self.key_cols, || GroupEntry {
                states: aggs.iter().map(|a| a.handler.init()).collect(),
                last_emitted: None,
                last_results: Vec::new(),
                changed: false,
            });
            for (i, spec) in self.aggs.iter().enumerate() {
                let projected = d.with_tuple(project_tuple(
                    &d,
                    &spec.input_cols,
                    &mut self.scratch,
                    &self.empty,
                ));
                if spec.handler.is_builtin() {
                    ctx.charge_cpu(ctx.cost.cpu_per_tuple * 0.02);
                } else {
                    ctx.charge_udf_call();
                }
                let inter = spec.handler.agg_state(&mut entry.states[i], &projected)?;
                if self.streaming {
                    streamed.extend(inter);
                }
            }
            entry.changed = true;
        }
        if self.streaming && !streamed.is_empty() {
            ctx.emit(0, streamed);
        }
        Ok(())
    }

    /// Fast lane: fold bare (insert-only) rows straight into group state.
    /// Built-in aggregates take the allocation-free
    /// [`fold_insert`](AggHandler::fold_insert) path — no delta wrapper,
    /// no projected tuple per row; handlers without a fast fold fall back
    /// to the general AGGSTATE dispatch on a projected insert delta.
    fn on_rows(&mut self, _port: usize, rows: Vec<Tuple>, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.charge_input(rows.len());
        let mut streamed = Vec::new();
        for t in &rows {
            ctx.charge_cpu(ctx.cost.hash_cost);
            let aggs = &self.aggs;
            let entry = self.groups.probe_or_insert_with(t, &self.key_cols, || GroupEntry {
                states: aggs.iter().map(|a| a.handler.init()).collect(),
                last_emitted: None,
                last_results: Vec::new(),
                changed: false,
            });
            for (i, spec) in self.aggs.iter().enumerate() {
                if spec.handler.is_builtin() {
                    ctx.charge_cpu(ctx.cost.cpu_per_tuple * 0.02);
                } else {
                    ctx.charge_udf_call();
                }
                if spec.handler.fold_insert(&mut entry.states[i], t, &spec.input_cols)? {
                    continue;
                }
                let projected =
                    Delta::insert(project_row(t, &spec.input_cols, &mut self.scratch, &self.empty));
                let inter = spec.handler.agg_state(&mut entry.states[i], &projected)?;
                if self.streaming {
                    streamed.extend(inter);
                }
            }
            entry.changed = true;
        }
        if self.streaming && !streamed.is_empty() {
            ctx.emit(0, streamed);
        }
        Ok(())
    }

    fn on_punct(&mut self, _port: usize, p: Punctuation, ctx: &mut OpCtx<'_>) -> Result<()> {
        let out = self.flush(ctx)?;
        ctx.emit(0, out);
        ctx.punct(0, p);
        Ok(())
    }

    fn checkpoint(&self) -> Option<OperatorState> {
        // Group-by state is rebuilt from replayed inputs on recovery; only
        // fixpoint state is checkpointed (§4.3).
        None
    }

    fn reset(&mut self) {
        self.groups.clear();
    }

    fn stats_detail(&self) -> Vec<(String, u64)> {
        let (probes, collisions) = self.groups.probe_stats();
        vec![
            ("hash_probes".into(), probes),
            ("hash_collisions".into(), collisions),
            ("groups".into(), self.groups.len() as u64),
        ]
    }
}

/// Project the delta's tuple onto the aggregate's input columns, through
/// a reusable scratch buffer (one allocation per projected tuple); the
/// zero-column projection of `count(*)` reuses a cached empty tuple.
fn project_tuple(d: &Delta, cols: &[usize], scratch: &mut Vec<Value>, empty: &Tuple) -> Tuple {
    project_row(&d.tuple, cols, scratch, empty)
}

/// [`project_tuple`] over a bare row (the rows-lane fallback when a
/// handler has no [`AggHandler::fold_insert`] fast path).
fn project_row(t: &Tuple, cols: &[usize], scratch: &mut Vec<Value>, empty: &Tuple) -> Tuple {
    if cols.is_empty() {
        return empty.clone();
    }
    scratch.clear();
    scratch.extend(cols.iter().map(|&c| t.get(c).clone()));
    Tuple::from_slice(scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregates::{CountAgg, SumAgg};
    use crate::delta::Annotation;
    use crate::metrics::{CostModel, ExecMetrics};
    use crate::operators::Event;
    use crate::tuple;
    use crate::udf::Registry;

    fn sum_group() -> GroupByOp {
        GroupByOp::new(vec![0], vec![AggSpec::new(Arc::new(SumAgg), vec![1])])
    }

    fn drive(op: &mut GroupByOp, deltas: Vec<Delta>, punct: bool) -> Vec<Delta> {
        let reg = Registry::new();
        let cost = CostModel::default();
        let mut m = ExecMetrics::default();
        let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
        op.on_deltas(0, deltas, &mut ctx).unwrap();
        if punct {
            op.on_punct(0, Punctuation::EndOfStratum(0), &mut ctx).unwrap();
        }
        ctx.take_output()
            .into_iter()
            .flat_map(|(_, e)| match e {
                Event::Data(d) => d,
                _ => vec![],
            })
            .collect()
    }

    #[test]
    fn emits_only_on_punctuation() {
        let mut g = sum_group();
        let out = drive(&mut g, vec![Delta::insert(tuple![1i64, 2.0f64])], false);
        assert!(out.is_empty());
        let out = drive(&mut g, vec![Delta::insert(tuple![1i64, 3.0f64])], true);
        assert_eq!(out, vec![Delta::insert(tuple![1i64, 5.0f64])]);
    }

    #[test]
    fn changed_groups_emit_replacements_next_stratum() {
        let mut g = sum_group();
        drive(&mut g, vec![Delta::insert(tuple![1i64, 2.0f64])], true);
        // Second stratum: another contribution to the same group.
        let out = drive(&mut g, vec![Delta::insert(tuple![1i64, 3.0f64])], true);
        assert_eq!(out, vec![Delta::replace(tuple![1i64, 2.0f64], tuple![1i64, 5.0f64])]);
    }

    #[test]
    fn unchanged_groups_stay_silent() {
        let mut g = sum_group();
        drive(
            &mut g,
            vec![Delta::insert(tuple![1i64, 2.0f64]), Delta::insert(tuple![2i64, 9.0f64])],
            true,
        );
        // Only group 1 receives new data; group 2 must not re-emit.
        let out = drive(&mut g, vec![Delta::insert(tuple![1i64, 1.0f64])], true);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tuple.get(0), &Value::Int(1));
    }

    #[test]
    fn zero_net_change_emits_nothing() {
        let mut g = sum_group();
        drive(&mut g, vec![Delta::insert(tuple![1i64, 2.0f64])], true);
        // +3 then -3: the aggregate value is back where it was.
        let out = drive(
            &mut g,
            vec![Delta::insert(tuple![1i64, 3.0f64]), Delta::delete(tuple![1i64, 3.0f64])],
            true,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn without_retention_reaggregates_from_scratch() {
        let mut g = sum_group().without_retention();
        drive(&mut g, vec![Delta::insert(tuple![1i64, 2.0f64])], true);
        assert_eq!(g.group_count(), 0);
        // Next stratum starts fresh: same input sums to 3, not 5.
        let out = drive(&mut g, vec![Delta::insert(tuple![1i64, 3.0f64])], true);
        assert_eq!(out, vec![Delta::insert(tuple![1i64, 3.0f64])]);
    }

    #[test]
    fn multiple_aggregates_compose_output_tuple() {
        let mut g = GroupByOp::new(
            vec![0],
            vec![
                AggSpec::new(Arc::new(SumAgg), vec![1]),
                AggSpec::new(Arc::new(CountAgg), vec![1]),
            ],
        );
        let out = drive(
            &mut g,
            vec![Delta::insert(tuple![1i64, 2.0f64]), Delta::insert(tuple![1i64, 4.0f64])],
            true,
        );
        assert_eq!(out, vec![Delta::insert(tuple![1i64, 6.0f64, 2i64])]);
    }

    #[test]
    fn deletion_delta_updates_group() {
        let mut g = sum_group();
        drive(
            &mut g,
            vec![Delta::insert(tuple![1i64, 5.0f64]), Delta::insert(tuple![1i64, 3.0f64])],
            true,
        );
        let out = drive(&mut g, vec![Delta::delete(tuple![1i64, 3.0f64])], true);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].ann, Annotation::Replace(_)));
        assert_eq!(out[0].tuple, tuple![1i64, 5.0f64]);
    }

    #[test]
    fn table_valued_uda_prefixes_key() {
        use crate::aggregates::ArgMinAgg;
        let mut g = GroupByOp::new(vec![0], vec![AggSpec::new(Arc::new(ArgMinAgg), vec![1, 2])]);
        let out = drive(
            &mut g,
            vec![
                Delta::insert(tuple![7i64, 1i64, 5.0f64]),
                Delta::insert(tuple![7i64, 2i64, 3.0f64]),
            ],
            true,
        );
        assert_eq!(out, vec![Delta::insert(tuple![7i64, 2i64, 3.0f64])]);
        // Re-delivering the same minimum changes nothing → silent.
        let out = drive(&mut g, vec![Delta::insert(tuple![7i64, 3i64, 9.0f64])], true);
        assert!(out.is_empty());
    }
}
