//! The `applyFunction` operator: user-defined per-delta transformation.
//!
//! "One exception to this general rule is the applyFunction operator, which
//! is stateless but can create or manipulate annotations in arbitrary ways"
//! (§3.3). The operator delegates to a [`DeltaMapper`], of which two
//! implementations are provided: [`ExprMapper`] (projection that preserves
//! annotations — the common case) and [`FnMapper`] (arbitrary user code that
//! may rewrite annotations, e.g. turning plain tuples into `δ(E)` updates).

use crate::delta::{Delta, Punctuation};
use crate::error::Result;
use crate::expr::Expr;
use crate::operators::{OpCtx, Operator};
use crate::tuple::Tuple;
use crate::udf::Registry;
use std::sync::Arc;

/// A user-defined delta transformation.
pub trait DeltaMapper: Send + Sync {
    /// Name for plan display.
    fn name(&self) -> &str;
    /// Map one input delta to zero or more output deltas.
    fn map(&self, d: &Delta, reg: &Registry) -> Result<Vec<Delta>>;
    /// Whether this mapper sits on a Hadoop-code boundary and must pay the
    /// per-tuple text (de)serialization cost (`CostModel::wrap_format_cost`,
    /// §4.4 / §6 "wrap").
    fn wrap_boundary(&self) -> bool {
        false
    }
}

/// Expression-based mapper: evaluates expressions, keeps annotations.
pub struct ExprMapper {
    exprs: Vec<Expr>,
}

impl ExprMapper {
    /// Build from a projection list.
    pub fn new(exprs: Vec<Expr>) -> ExprMapper {
        ExprMapper { exprs }
    }
}

impl DeltaMapper for ExprMapper {
    fn name(&self) -> &str {
        "expr"
    }

    fn map(&self, d: &Delta, reg: &Registry) -> Result<Vec<Delta>> {
        let mut vals = Vec::with_capacity(self.exprs.len());
        for e in &self.exprs {
            vals.push(e.eval(&d.tuple, reg)?);
        }
        Ok(vec![d.with_tuple(Tuple::new(vals))])
    }
}

/// The boxed mapping closure of an [`FnMapper`].
pub type MapperFn = Arc<dyn Fn(&Delta, &Registry) -> Result<Vec<Delta>> + Send + Sync>;

/// Closure-based mapper for arbitrary user logic (annotation rewriting,
/// fan-out, filtering).
pub struct FnMapper {
    name: String,
    f: MapperFn,
}

impl FnMapper {
    /// Build from a closure.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&Delta, &Registry) -> Result<Vec<Delta>> + Send + Sync + 'static,
    ) -> FnMapper {
        FnMapper { name: name.into(), f: Arc::new(f) }
    }
}

impl DeltaMapper for FnMapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn map(&self, d: &Delta, reg: &Registry) -> Result<Vec<Delta>> {
        (self.f)(d, reg)
    }
}

/// The applyFunction operator.
pub struct ApplyFunctionOp {
    mapper: Arc<dyn DeltaMapper>,
    /// Result cache for deterministic functions (§5.1 "Caching").
    cache: Option<std::collections::HashMap<Delta, Vec<Delta>>>,
}

impl ApplyFunctionOp {
    /// Apply `mapper` to every delta.
    pub fn new(mapper: Arc<dyn DeltaMapper>) -> ApplyFunctionOp {
        ApplyFunctionOp { mapper, cache: None }
    }

    /// Enable result caching (only valid for deterministic mappers).
    pub fn with_cache(mut self) -> Self {
        self.cache = Some(std::collections::HashMap::new());
        self
    }
}

impl std::hash::Hash for Delta {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.tuple.hash(state);
        match &self.ann {
            crate::delta::Annotation::Insert => 0u8.hash(state),
            crate::delta::Annotation::Delete => 1u8.hash(state),
            crate::delta::Annotation::Replace(t) => {
                2u8.hash(state);
                t.hash(state);
            }
            crate::delta::Annotation::Update(v) => {
                3u8.hash(state);
                v.hash(state);
            }
        }
    }
}

impl Operator for ApplyFunctionOp {
    fn name(&self) -> String {
        format!("ApplyFn({})", self.mapper.name())
    }

    fn on_deltas(&mut self, _port: usize, deltas: Vec<Delta>, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.charge_input(deltas.len());
        if self.mapper.wrap_boundary() {
            // Text (de)serialization across the Hadoop-code boundary.
            ctx.charge_cpu(deltas.len() as f64 * ctx.cost.wrap_format_cost);
        }
        let mut out = Vec::with_capacity(deltas.len());
        for d in deltas {
            if let Some(cache) = &mut self.cache {
                if let Some(hit) = cache.get(&d) {
                    out.extend(hit.iter().cloned());
                    continue;
                }
                ctx.charge_udf_call();
                let produced = self.mapper.map(&d, ctx.reg)?;
                cache.insert(d, produced.clone());
                out.extend(produced);
            } else {
                ctx.charge_udf_call();
                out.extend(self.mapper.map(&d, ctx.reg)?);
            }
        }
        ctx.emit(0, out);
        Ok(())
    }

    fn on_punct(&mut self, _port: usize, p: Punctuation, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.punct(0, p);
        Ok(())
    }

    fn reset(&mut self) {
        if let Some(c) = &mut self.cache {
            c.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{CostModel, ExecMetrics};
    use crate::operators::Event;
    use crate::tuple;
    use crate::value::Value;

    fn run(op: &mut ApplyFunctionOp, deltas: Vec<Delta>) -> (Vec<Delta>, ExecMetrics) {
        let reg = Registry::with_builtins();
        let cost = CostModel::default();
        let mut m = ExecMetrics::default();
        let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
        op.on_deltas(0, deltas, &mut ctx).unwrap();
        let out = ctx
            .take_output()
            .into_iter()
            .flat_map(|(_, e)| match e {
                Event::Data(d) => d,
                _ => vec![],
            })
            .collect();
        (out, m)
    }

    #[test]
    fn fn_mapper_can_rewrite_annotations() {
        let mapper = FnMapper::new("to-update", |d, _| {
            Ok(vec![Delta::update(d.tuple.clone(), Value::Double(1.0))])
        });
        let mut op = ApplyFunctionOp::new(Arc::new(mapper));
        let (out, _) = run(&mut op, vec![Delta::insert(tuple![5i64])]);
        assert!(out[0].ann.is_programmable());
    }

    #[test]
    fn fn_mapper_can_fan_out_and_filter() {
        let mapper = FnMapper::new("fan", |d, _| {
            let v = d.tuple.get(0).as_int().unwrap();
            if v < 0 {
                Ok(vec![])
            } else {
                Ok((0..v).map(|i| Delta::insert(tuple![i])).collect())
            }
        });
        let mut op = ApplyFunctionOp::new(Arc::new(mapper));
        let (out, _) =
            run(&mut op, vec![Delta::insert(tuple![3i64]), Delta::insert(tuple![-1i64])]);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn cache_avoids_repeat_udf_calls() {
        let mapper = ExprMapper::new(vec![Expr::Udf("abs".into(), vec![Expr::col(0)])]);
        let mut op = ApplyFunctionOp::new(Arc::new(mapper)).with_cache();
        let d = Delta::insert(tuple![-3i64]);
        let (_, m1) = run(&mut op, vec![d.clone(), d.clone(), d]);
        // Only the first invocation hits the mapper.
        assert_eq!(m1.udf_calls, 1);
    }

    #[test]
    fn expr_mapper_preserves_annotation() {
        let mapper = ExprMapper::new(vec![Expr::col(0)]);
        let mut op = ApplyFunctionOp::new(Arc::new(mapper));
        let (out, _) = run(&mut op, vec![Delta::delete(tuple![1i64, 2i64])]);
        assert_eq!(out[0], Delta::delete(tuple![1i64]));
    }
}
