//! Result sink: materializes the delta stream into a final relation.

use crate::delta::{Annotation, Delta, Punctuation};
use crate::error::Result;
use crate::handlers::TupleSet;
use crate::operators::{OpCtx, Operator};
use crate::tuple::Tuple;

/// Applies deltas to a result bag. At the query requestor this is where
/// per-worker results are unioned into the final answer.
#[derive(Default)]
pub struct SinkOp {
    state: TupleSet,
    eos: bool,
}

impl SinkOp {
    /// An empty sink.
    pub fn new() -> SinkOp {
        SinkOp::default()
    }

    /// Whether end-of-stream has been observed.
    pub fn complete(&self) -> bool {
        self.eos
    }

    /// Current materialized results (sorted for determinism).
    pub fn results(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.state.iter().cloned().collect();
        v.sort();
        v
    }

    /// Take the results, leaving the sink empty.
    pub fn take_results(&mut self) -> Vec<Tuple> {
        let mut v = std::mem::take(&mut self.state).into_tuples();
        v.sort();
        v
    }
}

impl Operator for SinkOp {
    fn name(&self) -> String {
        "Sink".into()
    }

    fn on_deltas(&mut self, _port: usize, deltas: Vec<Delta>, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.charge_input(deltas.len());
        for d in deltas {
            match d.ann {
                Annotation::Insert | Annotation::Update(_) => self.state.insert(d.tuple),
                Annotation::Delete => {
                    self.state.remove(&d.tuple);
                }
                Annotation::Replace(old) => {
                    self.state.replace(&old, d.tuple);
                }
            }
        }
        Ok(())
    }

    fn on_punct(&mut self, _port: usize, p: Punctuation, _ctx: &mut OpCtx<'_>) -> Result<()> {
        if p == Punctuation::EndOfStream {
            self.eos = true;
        }
        Ok(())
    }

    fn as_sink(&mut self) -> Option<&mut SinkOp> {
        Some(self)
    }

    fn reset(&mut self) {
        self.state.clear();
        self.eos = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{CostModel, ExecMetrics};
    use crate::tuple;
    use crate::udf::Registry;

    fn drive(sink: &mut SinkOp, deltas: Vec<Delta>) {
        let reg = Registry::new();
        let cost = CostModel::default();
        let mut m = ExecMetrics::default();
        let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
        sink.on_deltas(0, deltas, &mut ctx).unwrap();
    }

    #[test]
    fn applies_delta_semantics() {
        let mut s = SinkOp::new();
        drive(
            &mut s,
            vec![
                Delta::insert(tuple![1i64]),
                Delta::insert(tuple![2i64]),
                Delta::delete(tuple![1i64]),
                Delta::replace(tuple![2i64], tuple![3i64]),
            ],
        );
        assert_eq!(s.results(), vec![tuple![3i64]]);
    }

    #[test]
    fn eos_marks_complete() {
        let mut s = SinkOp::new();
        assert!(!s.complete());
        let reg = Registry::new();
        let cost = CostModel::default();
        let mut m = ExecMetrics::default();
        let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
        s.on_punct(0, Punctuation::EndOfStream, &mut ctx).unwrap();
        assert!(s.complete());
    }

    #[test]
    fn take_results_drains() {
        let mut s = SinkOp::new();
        drive(&mut s, vec![Delta::insert(tuple![5i64])]);
        assert_eq!(s.take_results(), vec![tuple![5i64]]);
        assert!(s.results().is_empty());
    }
}
