//! Result sink: materializes the delta stream into a final relation.

use crate::col::ColumnBatch;
use crate::delta::{Annotation, Delta, Punctuation};
use crate::error::Result;
use crate::hash::FxHashMap;
use crate::operators::{OpCtx, Operator};
use crate::tuple::{sort_rows, Tuple};

/// How the sink stores its result multiset.
enum SinkState {
    /// Insert-only fast lane: plain appends, one `sort_unstable` when the
    /// results are taken. Chosen by lowering for pipelines that provably
    /// emit nothing but `+()` deltas (see `rex_rql::lower`); degrades to
    /// [`SinkState::Counted`] on the first non-insert delta, so a
    /// mis-plumbed lane is a slow path, never a wrong answer.
    Append(Vec<Tuple>),
    /// General path: tuple → net multiplicity, so deletes and replacements
    /// apply in O(1) instead of scanning a bag.
    Counted(FxHashMap<Tuple, i64>),
}

impl SinkState {
    /// Remove one occurrence of `t` if any is stored (mirrors the old
    /// bag's "remove one if present" semantics). Counted form only.
    fn remove_one(counts: &mut FxHashMap<Tuple, i64>, t: &Tuple) {
        if let Some(c) = counts.get_mut(t) {
            *c -= 1;
            if *c == 0 {
                counts.remove(t);
            }
        }
    }
}

/// Applies deltas to a result bag. At the query requestor this is where
/// per-worker results are unioned into the final answer.
pub struct SinkOp {
    state: SinkState,
    eos: bool,
}

impl Default for SinkOp {
    fn default() -> Self {
        SinkOp::new()
    }
}

impl SinkOp {
    /// An empty sink on the general (delta-applying) path.
    pub fn new() -> SinkOp {
        SinkOp { state: SinkState::Counted(FxHashMap::default()), eos: false }
    }

    /// An empty sink on the insert-only fast lane: incoming tuples are
    /// appended without hashing and sorted once at the end.
    pub fn append_only() -> SinkOp {
        SinkOp { state: SinkState::Append(Vec::new()), eos: false }
    }

    /// Whether end-of-stream has been observed.
    pub fn complete(&self) -> bool {
        self.eos
    }

    /// Leave the fast lane: rebuild the counted multiset from whatever was
    /// appended so far (correctness backstop for non-insert deltas).
    fn degrade(&mut self) -> &mut FxHashMap<Tuple, i64> {
        if let SinkState::Append(v) = &mut self.state {
            let mut counts: FxHashMap<Tuple, i64> = FxHashMap::default();
            for t in v.drain(..) {
                *counts.entry(t).or_insert(0) += 1;
            }
            self.state = SinkState::Counted(counts);
        }
        match &mut self.state {
            SinkState::Counted(c) => c,
            SinkState::Append(_) => unreachable!("just converted"),
        }
    }

    /// Current materialized results (sorted for determinism).
    pub fn results(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = match &self.state {
            SinkState::Append(rows) => rows.clone(),
            SinkState::Counted(counts) => expand(counts),
        };
        sort_rows(&mut v);
        v
    }

    /// Take the results, leaving the sink empty.
    pub fn take_results(&mut self) -> Vec<Tuple> {
        let mut v = match &mut self.state {
            SinkState::Append(rows) => std::mem::take(rows),
            SinkState::Counted(counts) => expand(&std::mem::take(counts)),
        };
        sort_rows(&mut v);
        v
    }
}

/// Expand a counted multiset into rows (positive counts only).
fn expand(counts: &FxHashMap<Tuple, i64>) -> Vec<Tuple> {
    let mut v = Vec::with_capacity(counts.len());
    for (t, &n) in counts {
        for _ in 0..n.max(0) {
            v.push(t.clone());
        }
    }
    v
}

impl Operator for SinkOp {
    fn name(&self) -> String {
        match self.state {
            SinkState::Append(_) => "Sink[append]".into(),
            SinkState::Counted(_) => "Sink".into(),
        }
    }

    fn on_deltas(&mut self, _port: usize, deltas: Vec<Delta>, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.charge_input(deltas.len());
        if let SinkState::Append(rows) = &mut self.state {
            if deltas.iter().all(|d| matches!(d.ann, Annotation::Insert)) {
                rows.reserve(deltas.len());
                for d in deltas {
                    rows.push(d.tuple);
                }
                return Ok(());
            }
        }
        let counts = match &mut self.state {
            SinkState::Counted(c) => c,
            SinkState::Append(_) => self.degrade(),
        };
        for d in deltas {
            match d.ann {
                Annotation::Insert | Annotation::Update(_) => {
                    *counts.entry(d.tuple).or_insert(0) += 1;
                }
                Annotation::Delete => SinkState::remove_one(counts, &d.tuple),
                Annotation::Replace(old) => {
                    SinkState::remove_one(counts, &old);
                    *counts.entry(d.tuple).or_insert(0) += 1;
                }
            }
        }
        Ok(())
    }

    /// Fast lane: bare tuples append (or count) directly.
    fn on_rows(&mut self, _port: usize, rows: Vec<Tuple>, ctx: &mut OpCtx<'_>) -> Result<()> {
        ctx.charge_input(rows.len());
        match &mut self.state {
            SinkState::Append(v) => v.extend(rows),
            SinkState::Counted(counts) => {
                for t in rows {
                    *counts.entry(t).or_insert(0) += 1;
                }
            }
        }
        Ok(())
    }

    /// Columnar lane: materialize the selected rows once, at the end of
    /// the pipeline, and append (or count) them.
    fn on_cols(&mut self, port: usize, batch: ColumnBatch, ctx: &mut OpCtx<'_>) -> Result<()> {
        self.on_rows(port, batch.to_rows(), ctx)
    }

    fn on_punct(&mut self, _port: usize, p: Punctuation, _ctx: &mut OpCtx<'_>) -> Result<()> {
        if p == Punctuation::EndOfStream {
            self.eos = true;
        }
        Ok(())
    }

    fn as_sink(&mut self) -> Option<&mut SinkOp> {
        Some(self)
    }

    fn reset(&mut self) {
        match &mut self.state {
            SinkState::Append(v) => v.clear(),
            SinkState::Counted(c) => c.clear(),
        }
        self.eos = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{CostModel, ExecMetrics};
    use crate::tuple;
    use crate::udf::Registry;

    fn drive(sink: &mut SinkOp, deltas: Vec<Delta>) {
        let reg = Registry::new();
        let cost = CostModel::default();
        let mut m = ExecMetrics::default();
        let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
        sink.on_deltas(0, deltas, &mut ctx).unwrap();
    }

    #[test]
    fn applies_delta_semantics() {
        let mut s = SinkOp::new();
        drive(
            &mut s,
            vec![
                Delta::insert(tuple![1i64]),
                Delta::insert(tuple![2i64]),
                Delta::delete(tuple![1i64]),
                Delta::replace(tuple![2i64], tuple![3i64]),
            ],
        );
        assert_eq!(s.results(), vec![tuple![3i64]]);
    }

    #[test]
    fn delete_of_missing_row_is_a_noop() {
        let mut s = SinkOp::new();
        drive(&mut s, vec![Delta::insert(tuple![1i64]), Delta::delete(tuple![9i64])]);
        assert_eq!(s.results(), vec![tuple![1i64]]);
        // A replacement whose old row is absent still inserts the new row
        // (upsert, as the bag-backed sink always did).
        drive(&mut s, vec![Delta::replace(tuple![7i64], tuple![8i64])]);
        assert_eq!(s.results(), vec![tuple![1i64], tuple![8i64]]);
    }

    #[test]
    fn duplicates_respect_multiplicity() {
        let mut s = SinkOp::new();
        drive(
            &mut s,
            vec![
                Delta::insert(tuple![1i64]),
                Delta::insert(tuple![1i64]),
                Delta::delete(tuple![1i64]),
            ],
        );
        assert_eq!(s.results(), vec![tuple![1i64]]);
    }

    #[test]
    fn eos_marks_complete() {
        let mut s = SinkOp::new();
        assert!(!s.complete());
        let reg = Registry::new();
        let cost = CostModel::default();
        let mut m = ExecMetrics::default();
        let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
        s.on_punct(0, Punctuation::EndOfStream, &mut ctx).unwrap();
        assert!(s.complete());
    }

    #[test]
    fn take_results_drains() {
        let mut s = SinkOp::new();
        drive(&mut s, vec![Delta::insert(tuple![5i64])]);
        assert_eq!(s.take_results(), vec![tuple![5i64]]);
        assert!(s.results().is_empty());
    }

    #[test]
    fn append_lane_sorts_on_take() {
        let mut s = SinkOp::append_only();
        drive(&mut s, vec![Delta::insert(tuple![3i64]), Delta::insert(tuple![1i64])]);
        drive(&mut s, vec![Delta::insert(tuple![2i64]), Delta::insert(tuple![1i64])]);
        assert_eq!(s.name(), "Sink[append]");
        assert_eq!(s.take_results(), vec![tuple![1i64], tuple![1i64], tuple![2i64], tuple![3i64]]);
    }

    #[test]
    fn append_lane_degrades_on_non_insert() {
        let mut s = SinkOp::append_only();
        drive(&mut s, vec![Delta::insert(tuple![1i64]), Delta::insert(tuple![2i64])]);
        // A stray delete must not be silently dropped: the lane degrades
        // to the counted path and applies it.
        drive(&mut s, vec![Delta::delete(tuple![1i64])]);
        assert_eq!(s.name(), "Sink");
        assert_eq!(s.results(), vec![tuple![2i64]]);
    }

    #[test]
    fn reset_clears_both_lanes() {
        for mut s in [SinkOp::new(), SinkOp::append_only()] {
            drive(&mut s, vec![Delta::insert(tuple![1i64])]);
            s.reset();
            assert!(s.results().is_empty());
            assert!(!s.complete());
        }
    }
}
