//! # rex-core
//!
//! The core engine of REX — *Recursive, delta-based data-centric
//! computation* (Mihaylov, Ives, Guha; PVLDB 5(11), 2012) — reimplemented in
//! Rust.
//!
//! REX is a shared-nothing, pipelined query engine in which **deltas**
//! (annotated tuples: insertions, deletions, replacements, and programmable
//! value-updates) are first-class citizens. Recursive queries execute in
//! strata; stateful operators *refine* their state under deltas instead of
//! accumulating it, so each iteration touches only the Δᵢ set — the tuples
//! that actually changed.
//!
//! This crate provides:
//!
//! * the value/tuple/schema layer ([`value`], [`mod@tuple`]);
//! * deltas, annotations and punctuation ([`delta`]);
//! * scalar expressions ([`expr`]) and user-defined code ([`udf`],
//!   [`handlers`], [`aggregates`], [`builtins`]);
//! * the physical operators ([`operators`]): scan, filter, project,
//!   apply-function, pipelined hash join, group-by, rehash, top-k
//!   (`ORDER BY … LIMIT`), while/fixpoint, union, sink — all delta-aware;
//! * the push-based executor and single-node runtime ([`exec`]);
//! * the cost model and metric accounting ([`metrics`]);
//! * measured execution telemetry ([`telemetry`]): per-operator row/time
//!   counters and the [`ExecTrace`](telemetry::ExecTrace) behind
//!   `EXPLAIN ANALYZE` (`docs/OBSERVABILITY.md` at the repository root).
//!
//! Distribution (consistent hashing, routing, recovery) lives in
//! `rex-cluster`; the RQL language in `rex-rql` (full reference:
//! `docs/RQL.md` at the repository root); the optimizer in
//! `rex-optimizer`.
//!
//! ## Materialized views & incremental maintenance
//!
//! The [`delta`] vocabulary this crate defines — `+()`, `-()`, `→(t')`,
//! `δ(E)` per Definition 1 of the paper — is also the substrate of the
//! `rex-views` crate: `CREATE MATERIALIZED VIEW` (through the `rex`
//! facade's `Session`) builds a maintenance plan whose join and group-by
//! nodes apply the same Gupta/Mumick view-maintenance rules the
//! [`operators`] here implement for recursive dataflow, but against
//! persistent per-view state. Base-table inserts/deletes become delta
//! batches; maintenance cost scales with the batch, not the table. The
//! decomposable built-in [`aggregates`] (`sum`/`count`/`avg`/`min`/`max`)
//! get O(1)-per-delta specialized group state there; other registered
//! [`handlers::AggHandler`]s still participate unchanged via dirty-group
//! replay. The keyed maintenance state is hashed with this crate's
//! deterministic [`hash::FxHasher`].
//!
//! ## The hot path
//!
//! The row-at-a-time execution path is engineered to be allocation-free
//! per row (`docs/PERF.md` at the repository root has the full story and
//! the CI-gated benchmark numbers):
//!
//! * keyed operator state lives in [`hash::KeyedTable`]s probed with
//!   *borrowed* keys ([`Tuple::hash_key`](tuple::Tuple::hash_key) /
//!   [`Tuple::key_eq`](tuple::Tuple::key_eq)) — an owned key is
//!   materialized only when a key is first inserted;
//! * the executor drains with one pooled [`operators::OpCtx`] emission
//!   buffer, and fans events out without cloning edge lists;
//! * provably insert-only pipelines run the *fast lane*: scans emit
//!   run-length [`operators::Event::Rows`] batches, filters retain in
//!   place through pre-compiled predicates ([`expr::CompiledExpr`]),
//!   and the append sink ([`operators::SinkOp::append_only`]) sorts
//!   once, by 64-bit order prefixes
//!   ([`tuple::sort_rows`] / [`Value::order_prefix`](value::Value::order_prefix)).
//!
//! ## Quick start
//!
//! Most users should not start here: the `rex` facade crate's `Session`
//! is the front door — it owns tables, user code, and the optimizer, and
//! runs RQL text end-to-end on any engine. This crate is the layer
//! *below* that API: hand-built physical plans on the single-node
//! runtime, which is what `Session`'s pipeline ultimately lowers to.
//!
//! ```
//! use rex_core::exec::{LocalRuntime, PlanGraph};
//! use rex_core::expr::Expr;
//! use rex_core::operators::{FilterOp, ScanOp, SinkOp};
//! use rex_core::tuple;
//!
//! // What `Session::query("SELECT ... WHERE x > 3")` lowers to:
//! let mut g = PlanGraph::new();
//! let scan = g.add(Box::new(ScanOp::new("t", vec![tuple![1i64], tuple![7i64]])));
//! let filter = g.add(Box::new(FilterOp::new(Expr::col(0).gt(Expr::lit(3i64)))));
//! let sink = g.add(Box::new(SinkOp::new()));
//! g.pipe(scan, filter);
//! g.pipe(filter, sink);
//!
//! let (results, _report) = LocalRuntime::new().run(g).unwrap();
//! assert_eq!(results, vec![tuple![7i64]]);
//! ```

pub mod aggregates;
pub mod builtins;
pub mod col;
pub mod delta;
pub mod error;
pub mod exec;
pub mod expr;
pub mod faults;
pub mod handlers;
pub mod hash;
pub mod metrics;
pub mod operators;
pub mod telemetry;
pub mod thread_budget;
pub mod tuple;
pub mod udf;
pub mod value;

pub use delta::{Annotation, Delta, Punctuation};
pub use error::{Result, RexError};
pub use tuple::{Field, Schema, Tuple};
pub use value::{DataType, Value};
