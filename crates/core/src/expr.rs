//! Scalar expression trees evaluated over tuples.
//!
//! Expressions appear in selections, projections, `applyFunction` operators,
//! and join predicates. User-defined functions are referenced by name and
//! resolved against the [`Registry`] — REX's analogue
//! of loading Java classes and invoking them by reflection.

use crate::error::{Result, RexError};
use crate::tuple::{Schema, Tuple};
use crate::udf::Registry;
use crate::value::{DataType, Value};
use std::fmt;
use std::sync::Arc;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// Whether the operator yields a boolean.
    pub fn is_predicate(&self) -> bool {
        use BinOp::*;
        matches!(self, Eq | Ne | Lt | Le | Gt | Ge | And | Or)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        f.write_str(s)
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to input column `i`.
    Col(usize),
    /// A literal constant.
    Lit(Value),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// `IS NULL`.
    IsNull(Box<Expr>),
    /// Call a registered scalar UDF by name.
    Udf(String, Vec<Expr>),
    /// `CASE WHEN c THEN t ELSE e END` (a chain of arms plus default).
    Case(Vec<(Expr, Expr)>, Box<Expr>),
}

impl Expr {
    /// Column reference shorthand.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Literal shorthand.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// Build `self OP other`.
    pub fn bin(self, op: BinOp, other: Expr) -> Expr {
        Expr::Bin(op, Box::new(self), Box::new(other))
    }

    /// Equality predicate shorthand.
    pub fn eq(self, other: Expr) -> Expr {
        self.bin(BinOp::Eq, other)
    }

    /// Greater-than predicate shorthand.
    pub fn gt(self, other: Expr) -> Expr {
        self.bin(BinOp::Gt, other)
    }

    /// Evaluate against a tuple, resolving UDFs in `reg`.
    pub fn eval(&self, t: &Tuple, reg: &Registry) -> Result<Value> {
        match self {
            Expr::Col(i) => Ok(t.try_get(*i)?.clone()),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Bin(op, l, r) => {
                let lv = l.eval(t, reg)?;
                // Short-circuit AND/OR.
                match op {
                    BinOp::And => {
                        if lv == Value::Bool(false) {
                            return Ok(Value::Bool(false));
                        }
                        let rv = r.eval(t, reg)?;
                        return eval_logic(&lv, &rv, true);
                    }
                    BinOp::Or => {
                        if lv == Value::Bool(true) {
                            return Ok(Value::Bool(true));
                        }
                        let rv = r.eval(t, reg)?;
                        return eval_logic(&lv, &rv, false);
                    }
                    _ => {}
                }
                let rv = r.eval(t, reg)?;
                eval_bin(*op, &lv, &rv)
            }
            Expr::Not(e) => match e.eval(t, reg)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                Value::Null => Ok(Value::Null),
                v => Err(RexError::Type(format!("NOT applied to {}", v.data_type()))),
            },
            Expr::Neg(e) => match e.eval(t, reg)? {
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Double(d) => Ok(Value::Double(-d)),
                Value::Null => Ok(Value::Null),
                v => Err(RexError::Type(format!("negation of {}", v.data_type()))),
            },
            Expr::IsNull(e) => Ok(Value::Bool(e.eval(t, reg)?.is_null())),
            Expr::Udf(name, args) => {
                let udf = reg.scalar(name)?;
                let vals: Result<Vec<Value>> = args.iter().map(|a| a.eval(t, reg)).collect();
                udf.eval(&vals?)
            }
            Expr::Case(arms, default) => {
                for (cond, then) in arms {
                    if cond.eval(t, reg)? == Value::Bool(true) {
                        return then.eval(t, reg);
                    }
                }
                default.eval(t, reg)
            }
        }
    }

    /// Static result type against an input schema (best-effort inference).
    pub fn data_type(&self, schema: &Schema, reg: &Registry) -> Result<DataType> {
        match self {
            Expr::Col(i) => {
                if *i >= schema.arity() {
                    return Err(RexError::Type(format!(
                        "column {i} out of range for schema {schema}"
                    )));
                }
                Ok(schema.field_type(*i))
            }
            Expr::Lit(v) => Ok(v.data_type()),
            Expr::Bin(op, l, r) => {
                if op.is_predicate() {
                    Ok(DataType::Bool)
                } else {
                    let lt = l.data_type(schema, reg)?;
                    let rt = r.data_type(schema, reg)?;
                    lt.unify(rt).ok_or_else(|| {
                        RexError::Type(format!("cannot apply {op} to {lt} and {rt}"))
                    })
                }
            }
            Expr::Not(_) | Expr::IsNull(_) => Ok(DataType::Bool),
            Expr::Neg(e) => e.data_type(schema, reg),
            Expr::Udf(name, _) => Ok(reg.scalar(name)?.return_type()),
            Expr::Case(arms, default) => {
                let mut ty = default.data_type(schema, reg)?;
                for (_, then) in arms {
                    let tt = then.data_type(schema, reg)?;
                    ty = ty.unify(tt).ok_or_else(|| {
                        RexError::Type("CASE arms have incompatible types".into())
                    })?;
                }
                Ok(ty)
            }
        }
    }

    /// Collect all column indices referenced by this expression.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Col(i) => {
                if !out.contains(i) {
                    out.push(*i);
                }
            }
            Expr::Lit(_) => {}
            Expr::Bin(_, l, r) => {
                l.referenced_columns(out);
                r.referenced_columns(out);
            }
            Expr::Not(e) | Expr::Neg(e) | Expr::IsNull(e) => e.referenced_columns(out),
            Expr::Udf(_, args) => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
            Expr::Case(arms, default) => {
                for (c, t) in arms {
                    c.referenced_columns(out);
                    t.referenced_columns(out);
                }
                default.referenced_columns(out);
            }
        }
    }

    /// Rewrite column references through a mapping (old index → new index).
    /// Used by the optimizer when pushing expressions through projections.
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Col(i) => Expr::Col(map(*i)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Bin(op, l, r) => {
                Expr::Bin(*op, Box::new(l.remap_columns(map)), Box::new(r.remap_columns(map)))
            }
            Expr::Not(e) => Expr::Not(Box::new(e.remap_columns(map))),
            Expr::Neg(e) => Expr::Neg(Box::new(e.remap_columns(map))),
            Expr::IsNull(e) => Expr::IsNull(Box::new(e.remap_columns(map))),
            Expr::Udf(n, args) => {
                Expr::Udf(n.clone(), args.iter().map(|a| a.remap_columns(map)).collect())
            }
            Expr::Case(arms, default) => Expr::Case(
                arms.iter().map(|(c, t)| (c.remap_columns(map), t.remap_columns(map))).collect(),
                Box::new(default.remap_columns(map)),
            ),
        }
    }

    /// Whether this expression calls any UDF (used for rank-based ordering).
    pub fn contains_udf(&self) -> bool {
        match self {
            Expr::Col(_) | Expr::Lit(_) => false,
            Expr::Bin(_, l, r) => l.contains_udf() || r.contains_udf(),
            Expr::Not(e) | Expr::Neg(e) | Expr::IsNull(e) => e.contains_udf(),
            Expr::Udf(_, _) => true,
            Expr::Case(arms, d) => {
                arms.iter().any(|(c, t)| c.contains_udf() || t.contains_udf()) || d.contains_udf()
            }
        }
    }
}

fn eval_logic(l: &Value, r: &Value, is_and: bool) -> Result<Value> {
    // Three-valued logic.
    match (l, r) {
        (Value::Bool(a), Value::Bool(b)) => {
            Ok(Value::Bool(if is_and { *a && *b } else { *a || *b }))
        }
        (Value::Null, Value::Bool(b)) | (Value::Bool(b), Value::Null) => {
            if is_and {
                if *b {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(false))
                }
            } else if *b {
                Ok(Value::Bool(true))
            } else {
                Ok(Value::Null)
            }
        }
        (Value::Null, Value::Null) => Ok(Value::Null),
        _ => Err(RexError::Type("logical operator on non-boolean".into())),
    }
}

pub(crate) fn eval_bin(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    use BinOp::*;
    match op {
        Add => l.add(r),
        Sub => l.sub(r),
        Mul => l.mul(r),
        Div => l.div(r),
        Eq | Ne | Lt | Le | Gt | Ge => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let c = l.cmp(r);
            let b = match op {
                Eq => c.is_eq(),
                Ne => c.is_ne(),
                Lt => c.is_lt(),
                Le => c.is_le(),
                Gt => c.is_gt(),
                Ge => c.is_ge(),
                _ => unreachable!(),
            };
            return Ok(Value::Bool(b));
        }
        And | Or => unreachable!("handled by short-circuit path"),
    }
    .ok_or_else(|| {
        RexError::Type(format!("cannot apply {op} to {} and {}", l.data_type(), r.data_type()))
    })
}

/// Evaluate a predicate expression, treating NULL as false (SQL WHERE
/// semantics).
pub fn eval_predicate(e: &Expr, t: &Tuple, reg: &Registry) -> Result<bool> {
    Ok(matches!(e.eval(t, reg)?, Value::Bool(true)))
}

/// A scalar expression pre-compiled for the per-row hot path.
///
/// [`Expr::eval`] recurses through boxed nodes and *clones* both operands
/// of every binary node (a column reference clones the value out of the
/// tuple before comparing it). The shapes that dominate real predicates
/// and projections — `col`, `lit`, `col OP lit`, `col OP col` — need none
/// of that: they can read both operands by reference off the input tuple.
/// [`CompiledExpr::compile`] recognizes those shapes once, at operator
/// construction; everything else falls back to the interpreter, so the
/// two paths are semantically identical by construction.
#[derive(Debug, Clone)]
pub enum CompiledExpr {
    /// `col i` — clone one value out of the tuple.
    Col(usize),
    /// A constant.
    Lit(Value),
    /// `col OP lit` / `col OP col`, evaluated on borrowed operands.
    /// Comparison ops yield `Bool`/`Null`, arithmetic delegates to the
    /// same [`Value`] arithmetic the interpreter uses.
    BinColLit(BinOp, usize, Value),
    /// See [`CompiledExpr::BinColLit`].
    BinColCol(BinOp, usize, usize),
    /// Any other shape: the interpreter.
    Slow(Expr),
}

impl CompiledExpr {
    /// Compile `e`, recognizing the allocation-free shapes. `AND`/`OR`
    /// stay on the interpreter (they need short-circuit + three-valued
    /// logic), as does anything containing a UDF.
    pub fn compile(e: &Expr) -> CompiledExpr {
        match e {
            Expr::Col(i) => CompiledExpr::Col(*i),
            Expr::Lit(v) => CompiledExpr::Lit(v.clone()),
            Expr::Bin(op, l, r) if !matches!(op, BinOp::And | BinOp::Or) => {
                match (l.as_ref(), r.as_ref()) {
                    (Expr::Col(i), Expr::Lit(v)) => CompiledExpr::BinColLit(*op, *i, v.clone()),
                    (Expr::Col(i), Expr::Col(j)) => CompiledExpr::BinColCol(*op, *i, *j),
                    _ => CompiledExpr::Slow(e.clone()),
                }
            }
            _ => CompiledExpr::Slow(e.clone()),
        }
    }

    /// Evaluate against a tuple. Identical results to [`Expr::eval`] on
    /// the expression this was compiled from.
    #[inline]
    pub fn eval(&self, t: &Tuple, reg: &Registry) -> Result<Value> {
        match self {
            CompiledExpr::Col(i) => Ok(t.try_get(*i)?.clone()),
            CompiledExpr::Lit(v) => Ok(v.clone()),
            CompiledExpr::BinColLit(op, i, v) => eval_bin(*op, t.try_get(*i)?, v),
            CompiledExpr::BinColCol(op, i, j) => eval_bin(*op, t.try_get(*i)?, t.try_get(*j)?),
            CompiledExpr::Slow(e) => e.eval(t, reg),
        }
    }

    /// Evaluate as a WHERE predicate: NULL counts as false.
    #[inline]
    pub fn eval_predicate(&self, t: &Tuple, reg: &Registry) -> Result<bool> {
        match self {
            CompiledExpr::BinColLit(op, i, v) if op.is_predicate() => {
                cmp_bool(*op, t.try_get(*i)?, v)
            }
            CompiledExpr::BinColCol(op, i, j) if op.is_predicate() => {
                cmp_bool(*op, t.try_get(*i)?, t.try_get(*j)?)
            }
            _ => Ok(matches!(self.eval(t, reg)?, Value::Bool(true))),
        }
    }
}

/// Borrowed-operand comparison with SQL WHERE null semantics (NULL →
/// false). Delegates to [`eval_bin`] — `Value::Bool` is not heap
/// allocated, so this costs nothing and cannot diverge from the
/// interpreter's comparison semantics.
#[inline]
pub(crate) fn cmp_bool(op: BinOp, l: &Value, r: &Value) -> Result<bool> {
    Ok(matches!(eval_bin(op, l, r)?, Value::Bool(true)))
}

/// An `Arc`-shared expression list, the common payload of projections.
pub type ExprList = Arc<Vec<Expr>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn reg() -> Registry {
        Registry::with_builtins()
    }

    #[test]
    fn arithmetic_and_comparison() {
        let t = tuple![4i64, 2.5f64];
        let e = Expr::col(0).bin(BinOp::Mul, Expr::lit(3i64));
        assert_eq!(e.eval(&t, &reg()).unwrap(), Value::Int(12));
        let p = Expr::col(1).gt(Expr::lit(2.0f64));
        assert_eq!(p.eval(&t, &reg()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn null_propagates_through_comparison() {
        let t = Tuple::new(vec![Value::Null]);
        let p = Expr::col(0).gt(Expr::lit(1i64));
        assert_eq!(p.eval(&t, &reg()).unwrap(), Value::Null);
        assert!(!eval_predicate(&p, &t, &reg()).unwrap());
    }

    #[test]
    fn short_circuit_and_three_valued_logic() {
        let t = Tuple::new(vec![Value::Null]);
        // false AND <err> must not evaluate the right side eagerly: use a
        // comparison with NULL which is NULL, then AND false.
        let e = Expr::lit(false).bin(BinOp::And, Expr::col(0).eq(Expr::lit(1i64)));
        assert_eq!(e.eval(&t, &reg()).unwrap(), Value::Bool(false));
        let e2 = Expr::lit(true).bin(BinOp::Or, Expr::col(0).eq(Expr::lit(1i64)));
        assert_eq!(e2.eval(&t, &reg()).unwrap(), Value::Bool(true));
        // NULL OR false -> NULL
        let e3 = Expr::col(0).eq(Expr::lit(1i64)).bin(BinOp::Or, Expr::lit(false));
        assert_eq!(e3.eval(&t, &reg()).unwrap(), Value::Null);
    }

    #[test]
    fn case_expression() {
        let t = tuple![5i64];
        let e = Expr::Case(
            vec![
                (Expr::col(0).gt(Expr::lit(10i64)), Expr::lit("big")),
                (Expr::col(0).gt(Expr::lit(3i64)), Expr::lit("mid")),
            ],
            Box::new(Expr::lit("small")),
        );
        assert_eq!(e.eval(&t, &reg()).unwrap(), Value::str("mid"));
    }

    #[test]
    fn type_inference() {
        let s = Schema::of(&[("a", DataType::Int), ("b", DataType::Double)]);
        let r = reg();
        let e = Expr::col(0).bin(BinOp::Add, Expr::col(1));
        assert_eq!(e.data_type(&s, &r).unwrap(), DataType::Double);
        let p = Expr::col(0).eq(Expr::col(1));
        assert_eq!(p.data_type(&s, &r).unwrap(), DataType::Bool);
        let bad = Expr::col(9);
        assert!(bad.data_type(&s, &r).is_err());
    }

    #[test]
    fn referenced_columns_and_remap() {
        let e = Expr::col(2).bin(BinOp::Add, Expr::col(0).bin(BinOp::Mul, Expr::col(2)));
        let mut cols = vec![];
        e.referenced_columns(&mut cols);
        cols.sort_unstable();
        assert_eq!(cols, vec![0, 2]);
        let e2 = e.remap_columns(&|i| i + 10);
        let mut cols2 = vec![];
        e2.referenced_columns(&mut cols2);
        cols2.sort_unstable();
        assert_eq!(cols2, vec![10, 12]);
    }

    #[test]
    fn division_by_zero_is_null() {
        let t = tuple![1i64, 0i64];
        let e = Expr::col(0).bin(BinOp::Div, Expr::col(1));
        assert_eq!(e.eval(&t, &reg()).unwrap(), Value::Null);
    }

    #[test]
    fn is_null_and_not() {
        let t = Tuple::new(vec![Value::Null, Value::Bool(false)]);
        assert_eq!(
            Expr::IsNull(Box::new(Expr::col(0))).eval(&t, &reg()).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(Expr::Not(Box::new(Expr::col(1))).eval(&t, &reg()).unwrap(), Value::Bool(true));
    }
}
