//! Process-wide worker-thread budget.
//!
//! Parallel execution spawns threads in three places — morsel-parallel
//! local queries, threaded cluster workers, and parallel view
//! maintenance — and a server handles many connections at once. Without
//! coordination, eight reader connections each asking for eight threads
//! would oversubscribe the machine 8×. The budget is a single global
//! counter of *extra* worker threads (beyond the calling thread) the
//! process may have in flight: callers [`try_acquire`] permits before
//! spawning and [`release`] them when the parallel region ends, degrading
//! gracefully to fewer threads — ultimately to single-threaded execution,
//! which is always correct — when the budget is exhausted.
//!
//! The default budget is unlimited (embedded/CLI use, where one session
//! runs one query at a time); `rex-serverd` caps it with `--threads` so
//! concurrent connections share the configured pool instead of each
//! bringing their own.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Sentinel for "no budget configured": acquisition always succeeds and
/// releases are no-ops.
const UNLIMITED: usize = usize::MAX;

static BUDGET: AtomicUsize = AtomicUsize::new(UNLIMITED);

/// Cap the process's extra worker threads at `n` (replacing any previous
/// budget, including outstanding accounting — call once at startup).
pub fn set_budget(n: usize) {
    BUDGET.store(n, Ordering::SeqCst);
}

/// Remove the cap, returning to the unlimited default.
pub fn set_unlimited() {
    BUDGET.store(UNLIMITED, Ordering::SeqCst);
}

/// Permits currently available, or `None` when unlimited.
pub fn available() -> Option<usize> {
    match BUDGET.load(Ordering::SeqCst) {
        UNLIMITED => None,
        n => Some(n),
    }
}

/// Acquire up to `want` worker-thread permits; returns how many were
/// granted (possibly 0). Every granted permit must be handed back via
/// [`release`].
pub fn try_acquire(want: usize) -> usize {
    if want == 0 {
        return 0;
    }
    loop {
        let cur = BUDGET.load(Ordering::SeqCst);
        if cur == UNLIMITED {
            return want;
        }
        let got = want.min(cur);
        if got == 0 {
            return 0;
        }
        if BUDGET.compare_exchange(cur, cur - got, Ordering::SeqCst, Ordering::SeqCst).is_ok() {
            return got;
        }
    }
}

/// Return `n` permits obtained from [`try_acquire`].
pub fn release(n: usize) {
    if n == 0 {
        return;
    }
    loop {
        let cur = BUDGET.load(Ordering::SeqCst);
        // Under the unlimited default, permits are not tracked.
        if cur == UNLIMITED {
            return;
        }
        if BUDGET.compare_exchange(cur, cur + n, Ordering::SeqCst, Ordering::SeqCst).is_ok() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_lifecycle() {
        // The budget is process-global, so this single test exercises the
        // whole lifecycle to avoid interleaving with itself.
        assert_eq!(try_acquire(0), 0);
        set_budget(3);
        let a = try_acquire(2);
        assert_eq!(a, 2);
        let b = try_acquire(2);
        assert_eq!(b, 1, "only one permit left");
        assert_eq!(try_acquire(1), 0, "budget exhausted");
        release(a + b);
        assert_eq!(available(), Some(3));
        set_unlimited();
        assert_eq!(available(), None);
        assert_eq!(try_acquire(64), 64, "unlimited grants anything");
        release(64);
    }
}
