//! Execution telemetry: ground-truth counters for what the executor
//! actually did, as opposed to what the cost model predicted.
//!
//! The paper's evaluation hinges on knowing where time goes — per-iteration
//! delta volumes, operator costs, network traffic.
//! [`ExecMetrics`](crate::metrics::ExecMetrics) and the
//! [`CostModel`](crate::metrics::CostModel) *simulate* those costs;
//! telemetry *measures* them. When an [`Executor`](crate::exec::Executor)
//! runs with telemetry enabled it keeps one [`OpStats`] record per plan
//! node (rows in/out, batches, fast-lane batches, wall time) and the
//! runtime assembles them into an [`ExecTrace`] — the per-operator tree
//! plus per-iteration delta volumes that `EXPLAIN ANALYZE` renders.
//!
//! The design constraint is that the hot path stays allocation-free:
//! enabling telemetry allocates the per-node stats vector **once**, and
//! each event then costs two `Instant` reads and a handful of counter
//! increments; disabled, the only cost is an `Option` discriminant check
//! per event. The sub-operator detail counters (hash probes, collisions)
//! live as [`Cell`](std::cell::Cell)s inside
//! [`KeyedTable`](crate::hash::KeyedTable) and are harvested once per
//! query, not per row.

/// Measured counters for one plan node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpStats {
    /// Operator name as rendered by plans (`Scan(t)`, `HashJoin(...)`).
    pub name: String,
    /// Rows (deltas or bare fast-lane tuples) delivered to the operator.
    pub rows_in: u64,
    /// Rows the operator emitted downstream.
    pub rows_out: u64,
    /// Event batches delivered (data + punctuation).
    pub batches: u64,
    /// Batches that arrived on the insert-only fast lane
    /// ([`Event::Rows`](crate::operators::Event::Rows)).
    pub lane_hits: u64,
    /// Wall-clock nanoseconds spent inside the operator's handlers.
    pub wall_ns: u64,
    /// High-water mark of the executor event queue observed when events
    /// for this node were popped — how much work was stacked up behind
    /// the operator. Merging takes the max across workers/threads.
    pub queue_depth: u64,
    /// Morsels pulled from the shared scan cursor (parallel scans only;
    /// 0 when the node ran a whole snapshot).
    pub morsels: u64,
    /// How many worker threads' records were folded into this one (1 for
    /// a single-threaded run; merging sums).
    pub threads: u64,
    /// Operator-specific detail counters (hash probes/collisions, state
    /// sizes), harvested from
    /// [`Operator::stats_detail`](crate::operators::Operator::stats_detail)
    /// when the trace is taken.
    pub detail: Vec<(String, u64)>,
}

impl OpStats {
    /// Fold another worker's record for the same node into this one
    /// (cluster workers run copies of the same graph).
    pub fn merge(&mut self, other: &OpStats) {
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
        self.batches += other.batches;
        self.lane_hits += other.lane_hits;
        self.wall_ns += other.wall_ns;
        self.queue_depth = self.queue_depth.max(other.queue_depth);
        self.morsels += other.morsels;
        self.threads += other.threads;
        for (k, v) in &other.detail {
            match self.detail.iter_mut().find(|(n, _)| n == k) {
                Some((_, mine)) => *mine += v,
                None => self.detail.push((k.clone(), *v)),
            }
        }
    }
}

/// A query-level execution trace: the annotated operator tree plus, for
/// recursive queries, per-iteration delta volumes.
#[derive(Debug, Clone, Default)]
pub struct ExecTrace {
    /// One record per plan node, indexed by
    /// [`NodeId`](crate::exec::NodeId).
    pub ops: Vec<OpStats>,
    /// Plan topology for rendering: `edges[node]` lists
    /// `(out_port, dst_node, dst_port)`.
    pub edges: Vec<Vec<(usize, usize, usize)>>,
    /// Which nodes are network boundaries.
    pub network: Vec<bool>,
    /// Per-iteration delta-set sizes (empty for non-recursive queries).
    pub iteration_deltas: Vec<u64>,
    /// Total wall-clock seconds of the traced run.
    pub wall_seconds: f64,
}

impl ExecTrace {
    /// Total rows delivered into sink nodes — the measured result
    /// cardinality (summed across workers for cluster traces).
    pub fn sink_rows(&self) -> u64 {
        self.ops.iter().filter(|o| o.name.starts_with("Sink")).map(|o| o.rows_in).sum()
    }

    /// Fold another worker's trace over the same plan into this one.
    /// Panics only via indexing if the plans differ in shape, which would
    /// be a runtime bug — every worker lowers the same logical plan.
    pub fn merge(&mut self, other: &ExecTrace) {
        for (mine, theirs) in self.ops.iter_mut().zip(&other.ops) {
            mine.merge(theirs);
        }
        for (i, d) in other.iteration_deltas.iter().enumerate() {
            match self.iteration_deltas.get_mut(i) {
                Some(mine) => *mine += d,
                None => self.iteration_deltas.push(*d),
            }
        }
        self.wall_seconds = self.wall_seconds.max(other.wall_seconds);
    }

    /// Render the annotated operator tree, one node per line with its
    /// measured counters, followed by the per-iteration delta volumes.
    /// This is the body of `EXPLAIN ANALYZE` output.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (i, op) in self.ops.iter().enumerate() {
            let net = if self.network.get(i).copied().unwrap_or(false) { " [network]" } else { "" };
            s.push_str(&format!(
                "#{i} {}{}  rows_in={} rows_out={} batches={} time={}\n",
                op.name,
                net,
                op.rows_in,
                op.rows_out,
                op.batches,
                fmt_ns(op.wall_ns),
            ));
            if op.lane_hits > 0 {
                s.push_str(&format!("   lane_hits={}\n", op.lane_hits));
            }
            if op.threads > 1 {
                s.push_str(&format!("   threads={}\n", op.threads));
            }
            if op.morsels > 0 {
                s.push_str(&format!("   morsels={}\n", op.morsels));
            }
            if op.queue_depth > 0 {
                s.push_str(&format!("   queue_depth={}\n", op.queue_depth));
            }
            for (k, v) in &op.detail {
                s.push_str(&format!("   {k}={v}\n"));
            }
            if let Some(edges) = self.edges.get(i) {
                for (port, dst, dport) in edges {
                    s.push_str(&format!("   out{port} -> #{dst}.in{dport}\n"));
                }
            }
        }
        if !self.iteration_deltas.is_empty() {
            s.push_str("iterations:\n");
            for (i, d) in self.iteration_deltas.iter().enumerate() {
                s.push_str(&format!("   stratum {i}: delta_set_size={d}\n"));
            }
        }
        s
    }
}

/// Human-scale duration: `842ns`, `13.4µs`, `2.1ms`, `1.73s`.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(name: &str, rows_in: u64, rows_out: u64) -> OpStats {
        OpStats { name: name.into(), rows_in, rows_out, batches: 1, ..Default::default() }
    }

    #[test]
    fn merge_sums_counters_and_details() {
        let mut a = stats("HashJoin", 10, 4);
        a.detail.push(("probes".into(), 7));
        let mut b = stats("HashJoin", 5, 2);
        b.detail.push(("probes".into(), 3));
        b.detail.push(("collisions".into(), 1));
        a.merge(&b);
        assert_eq!(a.rows_in, 15);
        assert_eq!(a.rows_out, 6);
        assert_eq!(a.batches, 2);
        assert_eq!(a.detail, vec![("probes".into(), 10), ("collisions".into(), 1)]);
    }

    #[test]
    fn merge_thread_counters() {
        let mut a = stats("Scan(t)", 0, 8);
        a.queue_depth = 3;
        a.morsels = 5;
        a.threads = 1;
        let mut b = stats("Scan(t)", 0, 6);
        b.queue_depth = 7;
        b.morsels = 4;
        b.threads = 1;
        a.merge(&b);
        assert_eq!(a.queue_depth, 7, "queue depth is a high-water mark");
        assert_eq!(a.morsels, 9);
        assert_eq!(a.threads, 2);
    }

    #[test]
    fn trace_merge_aligns_iterations_and_sums_sinks() {
        let mut a = ExecTrace {
            ops: vec![stats("Scan(t)", 0, 8), stats("Sink", 8, 0)],
            iteration_deltas: vec![8, 2],
            wall_seconds: 0.5,
            ..Default::default()
        };
        let b = ExecTrace {
            ops: vec![stats("Scan(t)", 0, 6), stats("Sink", 6, 0)],
            iteration_deltas: vec![6, 1, 1],
            wall_seconds: 0.75,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.sink_rows(), 14);
        assert_eq!(a.iteration_deltas, vec![14, 3, 1]);
        assert_eq!(a.wall_seconds, 0.75);
    }

    #[test]
    fn render_includes_counters_topology_and_iterations() {
        let mut tr = ExecTrace {
            ops: vec![stats("Scan(t)", 0, 8), stats("Sink", 8, 0)],
            edges: vec![vec![(0, 1, 0)], vec![]],
            network: vec![false, false],
            iteration_deltas: vec![8, 0],
            wall_seconds: 0.0,
        };
        tr.ops[0].detail.push(("probes".into(), 42));
        let txt = tr.render();
        assert!(txt.contains("#0 Scan(t)  rows_in=0 rows_out=8"));
        assert!(txt.contains("out0 -> #1.in0"));
        assert!(txt.contains("probes=42"));
        assert!(txt.contains("stratum 1: delta_set_size=0"));
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(900), "900ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_100_000), "2.1ms");
        assert_eq!(fmt_ns(1_730_000_000), "1.73s");
    }
}
