//! Randomized tests on the engine's delta invariants: incremental
//! (delta-at-a-time) evaluation must agree with batch re-evaluation for
//! every stateful operator, under arbitrary interleavings of insertions
//! and deletions. Operation streams are drawn from a seeded generator so
//! every run exercises the same case set deterministically.

use rex_core::aggregates::{CountAgg, MaxAgg, MinAgg, SumAgg};
use rex_core::delta::Delta;
use rex_core::handlers::AggHandler;
use rex_core::tuple::Tuple;
use rex_core::value::Value;
use std::collections::HashMap;

/// SplitMix64 — the test's deterministic case generator.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A random operation stream: key, value, insert-or-delete.
fn ops(seed: u64) -> Vec<(i64, i64, bool)> {
    let mut s = seed;
    let len = (splitmix(&mut s) % 60) as usize;
    (0..len)
        .map(|_| {
            let k = (splitmix(&mut s) % 5) as i64;
            let v = (splitmix(&mut s) % 100) as i64 - 50;
            let insert = splitmix(&mut s) & 1 == 0;
            (k, v, insert)
        })
        .collect()
}

/// Replay an op stream against an aggregate handler, deleting only values
/// currently present (the engine never sees deletions of absent tuples
/// from its upstream state-preserving operators).
fn replay(handler: &dyn AggHandler, ops: &[(i64, i64, bool)]) -> HashMap<i64, Option<Value>> {
    let mut states: HashMap<i64, rex_core::handlers::AggState> = HashMap::new();
    let mut bags: HashMap<i64, Vec<i64>> = HashMap::new();
    for &(k, v, insert) in ops {
        let bag = bags.entry(k).or_default();
        let st = states.entry(k).or_insert_with(|| handler.init());
        let t = Tuple::new(vec![Value::Int(v)]);
        if insert {
            bag.push(v);
            handler.agg_state(st, &Delta::insert(t)).unwrap();
        } else if let Some(pos) = bag.iter().position(|&x| x == v) {
            bag.remove(pos);
            handler.agg_state(st, &Delta::delete(t)).unwrap();
        }
    }
    states
        .into_iter()
        .map(|(k, st)| {
            let out = handler.agg_result(&st).unwrap();
            (k, out.into_iter().next().map(|d| d.tuple.get(0).clone()))
        })
        .collect()
}

/// Ground truth from the final multiset.
fn final_bags(ops: &[(i64, i64, bool)]) -> HashMap<i64, Vec<i64>> {
    let mut bags: HashMap<i64, Vec<i64>> = HashMap::new();
    for &(k, v, insert) in ops {
        let bag = bags.entry(k).or_default();
        if insert {
            bag.push(v);
        } else if let Some(pos) = bag.iter().position(|&x| x == v) {
            bag.remove(pos);
        }
    }
    bags
}

/// SUM under arbitrary insert/delete interleavings equals the sum of
/// the surviving multiset.
#[test]
fn sum_is_incremental() {
    for case in 0..64u64 {
        let ops = ops(case * 31 + 1);
        let got = replay(&SumAgg, &ops);
        for (k, bag) in final_bags(&ops) {
            let want: i64 = bag.iter().sum();
            let v = got[&k].clone().unwrap();
            assert!(
                (v.as_double().unwrap() - want as f64).abs() < 1e-9,
                "case {case} key {k}: {v:?} != {want}"
            );
        }
    }
}

/// COUNT tracks multiset cardinality.
#[test]
fn count_is_incremental() {
    for case in 0..64u64 {
        let ops = ops(case * 57 + 2);
        let got = replay(&CountAgg, &ops);
        for (k, bag) in final_bags(&ops) {
            assert_eq!(got[&k].clone().unwrap(), Value::Int(bag.len() as i64), "case {case}");
        }
    }
}

/// MIN/MAX survive deletions of the current extremum via their buffered
/// state (§3.3's "next-smallest value" discussion).
#[test]
fn min_max_survive_extremum_deletion() {
    for case in 0..64u64 {
        let ops = ops(case * 97 + 3);
        let got_min = replay(&MinAgg, &ops);
        let got_max = replay(&MaxAgg, &ops);
        for (k, bag) in final_bags(&ops) {
            let want_min = bag.iter().min().copied();
            let want_max = bag.iter().max().copied();
            match want_min {
                Some(m) => {
                    assert_eq!(got_min[&k].clone().unwrap(), Value::Int(m), "case {case}")
                }
                None => assert!(got_min[&k].is_none() || got_min[&k] == Some(Value::Null)),
            }
            match want_max {
                Some(m) => {
                    assert_eq!(got_max[&k].clone().unwrap(), Value::Int(m), "case {case}")
                }
                None => assert!(got_max[&k].is_none() || got_max[&k] == Some(Value::Null)),
            }
        }
    }
}

mod join_props {
    use super::*;
    use rex_core::metrics::{CostModel, ExecMetrics};
    use rex_core::operators::{Event, HashJoinOp, OpCtx, Operator};
    use rex_core::udf::Registry;

    fn drive(op: &mut HashJoinOp, port: usize, deltas: Vec<Delta>) -> Vec<Delta> {
        let reg = Registry::new();
        let cost = CostModel::default();
        let mut m = ExecMetrics::default();
        let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
        op.on_deltas(port, deltas, &mut ctx).unwrap();
        ctx.take_output()
            .into_iter()
            .flat_map(|(_, e)| match e {
                Event::Data(d) => d,
                _ => vec![],
            })
            .collect()
    }

    fn pairs(seed: u64, max_len: u64) -> Vec<(i64, i64)> {
        let mut s = seed;
        let len = (splitmix(&mut s) % max_len) as usize;
        (0..len).map(|_| ((splitmix(&mut s) % 4) as i64, (splitmix(&mut s) % 6) as i64)).collect()
    }

    /// The pipelined join's *net* output (insert multiplicity minus
    /// delete multiplicity) equals the batch join of the surviving
    /// inputs, regardless of arrival interleaving.
    #[test]
    fn join_net_output_matches_batch() {
        for case in 0..48u64 {
            let left = pairs(case * 11 + 5, 25);
            let right = pairs(case * 13 + 7, 25);
            let interleave = splitmix(&mut (case + 17).clone());
            let mut op = HashJoinOp::new(vec![0], vec![0]);
            let mut net: HashMap<Tuple, i64> = HashMap::new();
            let mut l = left.iter();
            let mut r = right.iter();
            let mut bits = interleave;
            let acc = |out: Vec<Delta>, net: &mut HashMap<Tuple, i64>| {
                for d in out {
                    *net.entry(d.tuple.clone()).or_default() += d.multiplicity();
                }
            };
            loop {
                let from_left = bits & 1 == 0;
                bits = bits.rotate_right(1);
                let next =
                    if from_left { l.next().map(|x| (x, 0)) } else { r.next().map(|x| (x, 1)) };
                let Some((&(k, v), port)) = next else {
                    // Drain whichever side remains.
                    for &(k, v) in l.by_ref() {
                        let out = drive(
                            &mut op,
                            0,
                            vec![Delta::insert(Tuple::new(vec![Value::Int(k), Value::Int(v)]))],
                        );
                        acc(out, &mut net);
                    }
                    for &(k, v) in r.by_ref() {
                        let out = drive(
                            &mut op,
                            1,
                            vec![Delta::insert(Tuple::new(vec![Value::Int(k), Value::Int(v)]))],
                        );
                        acc(out, &mut net);
                    }
                    break;
                };
                let out = drive(
                    &mut op,
                    port,
                    vec![Delta::insert(Tuple::new(vec![Value::Int(k), Value::Int(v)]))],
                );
                acc(out, &mut net);
            }
            // Batch join ground truth.
            let mut want: HashMap<Tuple, i64> = HashMap::new();
            for &(lk, lv) in &left {
                for &(rk, rv) in &right {
                    if lk == rk {
                        let t = Tuple::new(vec![
                            Value::Int(lk),
                            Value::Int(lv),
                            Value::Int(rk),
                            Value::Int(rv),
                        ]);
                        *want.entry(t).or_default() += 1;
                    }
                }
            }
            net.retain(|_, m| *m != 0);
            assert_eq!(net, want, "case {case}");
        }
    }
}
