//! Hot-path equivalence sweeps: the allocation-free keyed state
//! ([`KeyedTable`]-backed join and group-by), the insert-only sink lane,
//! and the prefix/radix row sort must be *output-invisible* — byte-for-
//! byte the results the straightforward owned-key / comparison-sort
//! implementations produce — across random batches with duplicates,
//! deletions, and replacements.

use rex_core::col::ColumnBatch;
use rex_core::delta::{Annotation, Delta, Punctuation};
use rex_core::expr::{BinOp, Expr};
use rex_core::hash::FxHashMap;
use rex_core::metrics::{CostModel, ExecMetrics};
use rex_core::operators::{
    AggSpec, Event, FilterOp, GroupByOp, HashJoinOp, OpCtx, Operator, ProjectOp, SinkOp,
};
use rex_core::tuple::{sort_rows, Tuple};
use rex_core::udf::Registry;
use rex_core::value::Value;
use rex_core::{aggregates::CountAgg, aggregates::SumAgg, tuple};
use std::sync::Arc;

/// SplitMix64 — deterministic seed sweeps without external dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Drive an operator with one delta batch, collecting everything it emits
/// (fast-lane row batches unified back into insert deltas).
fn drive(op: &mut dyn Operator, port: usize, deltas: Vec<Delta>) -> Vec<Delta> {
    let reg = Registry::new();
    let cost = CostModel::default();
    let mut m = ExecMetrics::default();
    let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
    op.on_deltas(port, deltas, &mut ctx).unwrap();
    ctx.take_output().into_iter().flat_map(|(_, e)| event_deltas(e)).collect()
}

/// Unify any event lane back into insert deltas (bare rows and columnar
/// batches are implicit insertions by construction).
fn event_deltas(e: Event) -> Vec<Delta> {
    match e {
        Event::Data(d) => d,
        Event::Rows(rows) => rows.into_iter().map(Delta::insert).collect(),
        Event::Cols(batch) => batch.to_rows().into_iter().map(Delta::insert).collect(),
        Event::Punct(_) => vec![],
    }
}

/// Drive an operator with one fast-lane row batch, collecting everything
/// it emits unified back into deltas.
fn drive_rows(op: &mut dyn Operator, port: usize, rows: Vec<Tuple>) -> Vec<Delta> {
    let reg = Registry::new();
    let cost = CostModel::default();
    let mut m = ExecMetrics::default();
    let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
    op.on_rows(port, rows, &mut ctx).unwrap();
    ctx.take_output().into_iter().flat_map(|(_, e)| event_deltas(e)).collect()
}

/// Drive an operator with one columnar batch, collecting everything it
/// emits unified back into deltas.
fn drive_cols(op: &mut dyn Operator, port: usize, batch: ColumnBatch) -> Vec<Delta> {
    let reg = Registry::new();
    let cost = CostModel::default();
    let mut m = ExecMetrics::default();
    let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
    op.on_cols(port, batch, &mut ctx).unwrap();
    ctx.take_output().into_iter().flat_map(|(_, e)| event_deltas(e)).collect()
}

fn punct(op: &mut dyn Operator) -> Vec<Delta> {
    let reg = Registry::new();
    let cost = CostModel::default();
    let mut m = ExecMetrics::default();
    let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
    op.on_punct(0, Punctuation::EndOfStratum(0), &mut ctx).unwrap();
    ctx.take_output()
        .into_iter()
        .flat_map(|(_, e)| match e {
            Event::Data(d) => d,
            _ => vec![],
        })
        .collect()
}

/// Fold emitted deltas into a net counted multiset.
fn accumulate(acc: &mut FxHashMap<Tuple, i64>, deltas: &[Delta]) {
    for d in deltas {
        match &d.ann {
            Annotation::Insert => *acc.entry(d.tuple.clone()).or_insert(0) += 1,
            Annotation::Delete => *acc.entry(d.tuple.clone()).or_insert(0) -= 1,
            Annotation::Replace(old) => {
                *acc.entry(old.clone()).or_insert(0) -= 1;
                *acc.entry(d.tuple.clone()).or_insert(0) += 1;
            }
            Annotation::Update(_) => unreachable!("sweep emits no δ(E) deltas"),
        }
    }
}

fn bag_rows(bag: &FxHashMap<Tuple, i64>) -> Vec<Tuple> {
    let mut out = Vec::new();
    for (t, &n) in bag {
        assert!(n >= 0, "negative net multiplicity for {t}");
        for _ in 0..n {
            out.push(t.clone());
        }
    }
    out.sort_unstable();
    out
}

/// A random delta against `bag` (the oracle's copy of one join side):
/// inserts duplicate heavily; deletes and replacements pick stored rows.
fn random_delta(rng: &mut Rng, bag: &mut Vec<Tuple>) -> Delta {
    let fresh = tuple![rng.range(8) as i64, rng.range(5) as i64];
    match rng.range(10) {
        0..=5 => {
            bag.push(fresh.clone());
            Delta::insert(fresh)
        }
        6..=7 if !bag.is_empty() => {
            let old = bag.swap_remove(rng.range(bag.len() as u64) as usize);
            Delta::delete(old)
        }
        8 if !bag.is_empty() => {
            let old = bag.swap_remove(rng.range(bag.len() as u64) as usize);
            bag.push(fresh.clone());
            Delta::replace(old, fresh)
        }
        _ => {
            // Deleting a row that is (probably) absent must be a no-op on
            // both the operator and the oracle.
            let ghost = tuple![99i64, rng.range(5) as i64];
            if let Some(pos) = bag.iter().position(|t| *t == ghost) {
                bag.swap_remove(pos);
            }
            Delta::delete(ghost)
        }
    }
}

/// The borrowed-key hash join's net output must equal the brute-force
/// join of the final left/right bags, under any interleaving of inserts
/// (with duplicates), deletes (including of absent rows), and
/// replacements.
#[test]
fn keyed_join_matches_bruteforce_oracle_under_random_deltas() {
    for seed in [1u64, 42, 0xfeed, 77777] {
        let mut rng = Rng(seed);
        let mut join = HashJoinOp::new(vec![0], vec![0]);
        let (mut left, mut right): (Vec<Tuple>, Vec<Tuple>) = (Vec::new(), Vec::new());
        let mut net: FxHashMap<Tuple, i64> = FxHashMap::default();
        for _ in 0..60 {
            let from_left = rng.range(2) == 0;
            let bag = if from_left { &mut left } else { &mut right };
            let batch: Vec<Delta> =
                (0..rng.range(6) + 1).map(|_| random_delta(&mut rng, bag)).collect();
            let out = drive(&mut join, usize::from(!from_left), batch);
            accumulate(&mut net, &out);
        }
        // Brute-force join of the final bags.
        let mut expected: Vec<Tuple> = Vec::new();
        for l in &left {
            for r in &right {
                if l.get(0) == r.get(0) {
                    expected.push(l.concat(r));
                }
            }
        }
        expected.sort_unstable();
        assert_eq!(bag_rows(&net), expected, "seed {seed}");
    }
}

/// The keyed group-by's emitted stream (inserts then replacements) must
/// converge to exactly the per-group aggregates of the full input
/// history, for every group ever touched.
#[test]
fn keyed_group_by_matches_running_oracle_under_random_deltas() {
    for seed in [3u64, 99, 0xabcdef] {
        let mut rng = Rng(seed);
        let mut gb = GroupByOp::new(
            vec![0],
            vec![
                AggSpec::new(Arc::new(SumAgg), vec![1]),
                AggSpec::new(Arc::new(CountAgg), vec![1]),
            ],
        );
        // Oracle: per-group running (sum, count) under the same deltas.
        let mut oracle: FxHashMap<i64, (f64, i64)> = FxHashMap::default();
        let mut bag: Vec<Tuple> = Vec::new();
        let mut emitted: FxHashMap<Tuple, i64> = FxHashMap::default();
        for _ in 0..40 {
            let batch: Vec<Delta> = (0..rng.range(5) + 1)
                .map(|_| {
                    // Inserts and deletes of stored rows only, so no group
                    // ever goes negative.
                    if rng.range(3) == 0 && !bag.is_empty() {
                        Delta::delete(bag.swap_remove(rng.range(bag.len() as u64) as usize))
                    } else {
                        let t = tuple![rng.range(4) as i64, rng.range(6) as i64];
                        bag.push(t.clone());
                        Delta::insert(t)
                    }
                })
                .collect();
            for d in &batch {
                let k = d.tuple.get(0).as_int().unwrap();
                let v = d.tuple.get(1).as_int().unwrap() as f64;
                let e = oracle.entry(k).or_insert((0.0, 0));
                match d.ann {
                    Annotation::Insert => {
                        e.0 += v;
                        e.1 += 1;
                    }
                    Annotation::Delete => {
                        e.0 -= v;
                        e.1 -= 1;
                    }
                    _ => unreachable!(),
                }
            }
            let mut out = drive(&mut gb, 0, batch);
            out.extend(punct(&mut gb));
            accumulate(&mut emitted, &out);
        }
        let mut expected: Vec<Tuple> =
            oracle.iter().map(|(&k, &(sum, count))| tuple![k, sum, count]).collect();
        expected.sort_unstable();
        assert_eq!(bag_rows(&emitted), expected, "seed {seed}");
    }
}

/// The append-only sink lane must produce byte-identical results to the
/// counted sink on insert-only streams — whichever way the inserts arrive
/// (wrapped deltas or fast-lane row batches).
#[test]
fn sink_lanes_agree_on_insert_only_streams() {
    for seed in [5u64, 2024] {
        let mut rng = Rng(seed);
        let mut fast = SinkOp::append_only();
        let mut slow = SinkOp::new();
        let mut via_rows = SinkOp::append_only();
        let reg = Registry::new();
        let cost = CostModel::default();
        for _ in 0..20 {
            let rows: Vec<Tuple> = (0..rng.range(40) + 1)
                .map(|_| tuple![rng.range(9) as i64, rng.range(3) as i64])
                .collect();
            let deltas: Vec<Delta> = rows.iter().cloned().map(Delta::insert).collect();
            let mut m = ExecMetrics::default();
            let mut ctx = OpCtx::new(0, 0, &reg, &cost, &mut m);
            fast.on_deltas(0, deltas.clone(), &mut ctx).unwrap();
            slow.on_deltas(0, deltas, &mut ctx).unwrap();
            via_rows.on_rows(0, rows, &mut ctx).unwrap();
        }
        let f = fast.take_results();
        assert_eq!(f, slow.take_results(), "seed {seed}: append vs counted");
        assert_eq!(f, via_rows.take_results(), "seed {seed}: delta vs row batches");
    }
}

/// The prefix/radix sort must order exactly like the comparison sort, on
/// mixed-type first columns (nulls, bools, cross-type numerics, strings
/// sharing prefixes) and on both sides of the radix size threshold.
#[test]
fn sort_rows_matches_comparison_sort_on_mixed_types() {
    for seed in [9u64, 31337, 424242] {
        for n in [0usize, 1, 57, 800, 5000, 9000] {
            let mut rng = Rng(seed);
            let rows: Vec<Tuple> = (0..n)
                .map(|_| {
                    let first = match rng.range(6) {
                        0 => Value::Null,
                        1 => Value::Bool(rng.range(2) == 0),
                        2 => Value::Int(rng.range(50) as i64 - 25),
                        3 => Value::Double(rng.range(500) as f64 * 0.1 - 25.0),
                        4 => Value::str(format!("s{}", rng.range(30))),
                        _ => Value::str("s1x"), // shares a prefix with s1*
                    };
                    Tuple::new(vec![first, Value::Int(rng.range(7) as i64)])
                })
                .collect();
            let mut fast = rows.clone();
            sort_rows(&mut fast);
            let mut slow = rows;
            slow.sort_unstable();
            assert_eq!(fast, slow, "seed {seed}, n {n}");
        }
    }
}

/// The three physical lanes through the stateless operators — wrapped
/// deltas, bare row batches, and columnar batches — must be *output
/// identical* (same rows, same order) on insert-only streams: the lane a
/// plan picks is an execution detail, never an answer change.
#[test]
fn filter_project_lanes_are_output_identical() {
    for seed in [11u64, 29, 47, 0xc01d] {
        let mut rng = Rng(seed);
        let pred = Expr::col(1).bin(BinOp::Gt, Expr::lit(Value::Int(2)));
        let exprs = vec![Expr::col(1), Expr::col(0).bin(BinOp::Mul, Expr::col(1)), Expr::col(2)];
        let mut f = (FilterOp::new(pred.clone()), FilterOp::new(pred.clone()), FilterOp::new(pred));
        let mut p =
            (ProjectOp::new(exprs.clone()), ProjectOp::new(exprs.clone()), ProjectOp::new(exprs));
        for round in 0..30 {
            let rows: Vec<Tuple> = (0..rng.range(20) + 1)
                .map(|_| {
                    tuple![rng.range(8) as i64, rng.range(6) as i64, rng.range(40) as f64 * 0.25]
                })
                .collect();
            let batch = ColumnBatch::try_from_rows(rows.clone()).expect("uniform arity");
            let deltas: Vec<Delta> = rows.iter().cloned().map(Delta::insert).collect();

            let via_data = drive(&mut f.0, 0, deltas.clone());
            assert_eq!(via_data, drive_rows(&mut f.1, 0, rows.clone()), "seed {seed} r{round}");
            assert_eq!(via_data, drive_cols(&mut f.2, 0, batch.clone()), "seed {seed} r{round}");

            let via_data = drive(&mut p.0, 0, deltas);
            assert_eq!(via_data, drive_rows(&mut p.1, 0, rows), "seed {seed} r{round}");
            assert_eq!(via_data, drive_cols(&mut p.2, 0, batch), "seed {seed} r{round}");
        }
    }
}

/// The join's batched row-lane probe loop (hash-all-first + prefetch) and
/// the group-by's row-lane fold must converge to the same net output as
/// the general delta path, with batch sizes straddling the batching
/// threshold so both the scalar and the batched inner loops run.
#[test]
fn join_group_row_lane_matches_delta_lane_across_batch_sizes() {
    for seed in [17u64, 83, 0xbeef] {
        let mut rng = Rng(seed);
        let mut jd = HashJoinOp::new(vec![0], vec![0]);
        let mut jr = HashJoinOp::new(vec![0], vec![0]);
        let specs = || {
            vec![AggSpec::new(Arc::new(SumAgg), vec![1]), AggSpec::new(Arc::new(CountAgg), vec![1])]
        };
        let mut gd = GroupByOp::new(vec![0], specs());
        let mut gr = GroupByOp::new(vec![0], specs());
        let (mut net_d, mut net_r) = (FxHashMap::default(), FxHashMap::default());
        let (mut grp_d, mut grp_r) = (FxHashMap::default(), FxHashMap::default());
        for _ in 0..40 {
            // 1..=16 rows: below and above the join's batch threshold.
            let rows: Vec<Tuple> = (0..rng.range(16) + 1)
                .map(|_| tuple![rng.range(5) as i64, rng.range(7) as i64])
                .collect();
            let deltas: Vec<Delta> = rows.iter().cloned().map(Delta::insert).collect();
            let port = rng.range(2) as usize;
            accumulate(&mut net_d, &drive(&mut jd, port, deltas.clone()));
            accumulate(&mut net_r, &drive_rows(&mut jr, port, rows.clone()));
            accumulate(&mut grp_d, &drive(&mut gd, 0, deltas));
            accumulate(&mut grp_r, &drive_rows(&mut gr, 0, rows));
        }
        assert_eq!(bag_rows(&net_d), bag_rows(&net_r), "seed {seed}: join lanes diverge");
        accumulate(&mut grp_d, &punct(&mut gd));
        accumulate(&mut grp_r, &punct(&mut gr));
        assert_eq!(bag_rows(&grp_d), bag_rows(&grp_r), "seed {seed}: group lanes diverge");
    }
}

/// Int/Double keys that compare equal must land in the same keyed-state
/// bucket whichever spelling arrives first (the cross-type hashing
/// guarantee the borrowed-key probes inherit from `Value`).
#[test]
fn cross_type_numeric_join_keys_meet_in_one_bucket() {
    let mut join = HashJoinOp::new(vec![0], vec![0]);
    drive(&mut join, 0, vec![Delta::insert(tuple![2i64, "l"])]);
    let out = drive(&mut join, 1, vec![Delta::insert(tuple![2.0f64, "r"])]);
    assert_eq!(out, vec![Delta::insert(tuple![2i64, "l", 2.0f64, "r"])]);
}
