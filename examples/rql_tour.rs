//! A guided tour of the complete RQL query surface — every clause from
//! `docs/RQL.md`, executed end-to-end on BOTH engines, asserting that
//! the single-node and cluster answers agree exactly.
//!
//! ```sh
//! cargo run --example rql_tour
//! ```
//!
//! Covered: `CREATE TABLE` DDL • expression-argument aggregates
//! (`SUM(price * (1 - discount) * qty)`) • `GROUP BY` + `HAVING` •
//! `SELECT DISTINCT` • `ORDER BY … LIMIT/OFFSET` (deterministic ties,
//! distributed top-k) • `CREATE MATERIALIZED VIEW` with incremental
//! DISTINCT/HAVING maintenance • `EXPLAIN`.

use rex::core::tuple::Tuple;
use rex::core::value::Value;
use rex::Session;

/// Build a session on the given engine with a small `sales` table,
/// created through plain RQL DDL — the same statement a script or a
/// server front-end would send.
fn open(engine: &str) -> Session {
    let mut s = if engine == "cluster" { Session::cluster(4) } else { Session::local() };
    // CREATE TABLE routes to Session::create_table: an empty stored
    // table, partitioned on its first column.
    s.query("CREATE TABLE sales (item string, price double, discount double, qty int)")
        .expect("create table");
    let row = |i: &str, p: f64, d: f64, q: i64| {
        Tuple::new(vec![Value::str(i), Value::Double(p), Value::Double(d), Value::Int(q)])
    };
    s.insert(
        "sales",
        vec![
            row("apple", 1.0, 0.00, 3),
            row("apple", 2.0, 0.50, 1),
            row("pear", 4.0, 0.25, 2),
            row("pear", 4.0, 0.25, 2),
            row("plum", 8.0, 0.00, 1),
            row("fig", 1.0, 0.00, 9),
        ],
    )
    .expect("insert");
    s
}

/// Run `sql` on both engines; panic unless the rows agree exactly
/// (including order — ORDER BY ties resolve identically everywhere).
fn both(sessions: &mut [Session], sql: &str) -> Vec<Tuple> {
    let mut out: Option<Vec<Tuple>> = None;
    for s in sessions.iter_mut() {
        let r = s.query(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        if let Some(prev) = &out {
            assert_eq!(prev, &r.rows, "local and cluster must agree on {sql}");
        }
        out = Some(r.rows);
    }
    out.unwrap()
}

fn main() {
    let mut sessions = vec![open("local"), open("cluster")];

    // ---- Aggregates over arbitrary expressions, HAVING, top-k -----------
    // Revenue per item = Σ price·(1−discount)·qty; only items with more
    // than one sale; biggest earners first; top 2. The optimizer fuses
    // ORDER BY + LIMIT into a top-k (per-worker partial sorts gathered at
    // one node on the cluster).
    let sql = "SELECT item, sum(price * (1 - discount) * qty) AS revenue \
               FROM sales GROUP BY item \
               HAVING count(*) > 1 \
               ORDER BY revenue DESC LIMIT 2";
    println!("top revenue (multi-sale items):");
    for r in both(&mut sessions, sql) {
        println!("  {:<6} {}", r.get(0), r.get(1));
    }

    // ---- DISTINCT: a counted projection ----------------------------------
    let d = both(&mut sessions, "SELECT DISTINCT item, price FROM sales ORDER BY item, price");
    println!("\ndistinct (item, price) pairs: {}", d.len());

    // ---- LIMIT/OFFSET paging — deterministic even without ORDER BY -------
    let page1 = both(&mut sessions, "SELECT item, qty FROM sales ORDER BY qty DESC, item LIMIT 2");
    let page2 =
        both(&mut sessions, "SELECT item, qty FROM sales ORDER BY qty DESC, item LIMIT 2 OFFSET 2");
    println!("\npaged by qty: page1={page1:?}\n              page2={page2:?}");
    assert!(page1.iter().all(|r| !page2.contains(r)), "pages are disjoint");

    // ---- Materialized views: DISTINCT and HAVING maintain incrementally --
    for s in sessions.iter_mut() {
        s.query("CREATE MATERIALIZED VIEW items AS SELECT DISTINCT item FROM sales")
            .expect("distinct view");
        s.query(
            "CREATE MATERIALIZED VIEW hot AS \
             SELECT item, count(*) FROM sales GROUP BY item HAVING count(*) > 1",
        )
        .expect("having view");
        assert!(s.view_strategy("items").unwrap().contains("incremental"));
        assert!(s.view_strategy("hot").unwrap().contains("incremental"));
    }
    // A new sale updates both views by delta propagation, not recompute.
    for s in sessions.iter_mut() {
        s.insert(
            "sales",
            vec![Tuple::new(vec![
                Value::str("plum"),
                Value::Double(8.0),
                Value::Double(0.5),
                Value::Int(2),
            ])],
        )
        .expect("maintained insert");
    }
    let hot = both(&mut sessions, "SELECT * FROM hot");
    println!("\nhot items after one more plum sale: {hot:?}");

    // ---- ORDER BY/LIMIT are query-only: views refuse them ----------------
    let err = sessions[0]
        .query("CREATE MATERIALIZED VIEW top2 AS SELECT item FROM sales ORDER BY item LIMIT 2")
        .unwrap_err();
    println!("\nordered view refused as designed: {err}");

    // ---- EXPLAIN: plans, rewrites, estimates, maintenance strategies -----
    let plan = sessions[0]
        .explain(
            "SELECT item, avg(price) FROM sales GROUP BY item \
             HAVING item > 'a' ORDER BY 2 DESC LIMIT 1",
        )
        .expect("explain");
    println!("\n{plan}");
}
