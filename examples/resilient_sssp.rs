//! Shortest paths under a node failure: incremental recovery from
//! replicated Δᵢ checkpoints (§4.3) versus a full restart.
//!
//! ```sh
//! cargo run --release --example resilient_sssp
//! ```

use rex::algos::pagerank::Strategy;
use rex::algos::sssp::{dists_from_results, plan_builder, SsspConfig};
use rex::cluster::failure::{FailurePlan, RecoveryStrategy};
use rex::cluster::runtime::{ClusterConfig, ClusterRuntime};
use rex::data::graph::{generate_graph, Graph, GraphSpec};
use rex::storage::catalog::Catalog;
use rex::storage::table::StoredTable;

fn catalog_for(graph: &Graph) -> Catalog {
    let catalog = Catalog::new();
    let mut table = StoredTable::new("graph", Graph::schema(), vec![0]);
    table.load_unchecked(graph.edge_tuples());
    catalog.register(table);
    catalog
}

fn main() {
    let graph = generate_graph(GraphSpec::dbpedia(1_200, 17));
    let source = 0u32;
    let workers = 8;
    let cfg = SsspConfig::from_source(source);
    println!(
        "BFS from vertex {source} over {} vertices / {} edges on {workers} workers",
        graph.n_vertices,
        graph.n_edges()
    );

    // Baseline: no failure.
    let rt = ClusterRuntime::new(ClusterConfig::new(workers), catalog_for(&graph));
    let (baseline, base_rep) = rt.run(plan_builder(cfg, Strategy::Delta)).expect("baseline");
    println!(
        "\nno failure: {} strata, simulated time {:.0}",
        base_rep.iterations(),
        base_rep.simulated_time()
    );

    // Kill worker 2 at the end of stratum 4, with each recovery strategy.
    for strategy in [RecoveryStrategy::Restart, RecoveryStrategy::Incremental] {
        let cluster_cfg =
            ClusterConfig::new(workers).with_failure(FailurePlan::kill_at(2, 4), strategy);
        let rt = ClusterRuntime::new(cluster_cfg, catalog_for(&graph));
        let (results, report) = rt.run(plan_builder(cfg, Strategy::Delta)).expect("recovery");
        assert_eq!(
            dists_from_results(&results, graph.n_vertices),
            dists_from_results(&baseline, graph.n_vertices),
            "recovery must not change the answer"
        );
        let f = &report.failures[0];
        println!(
            "\n{strategy:?}: worker {} died at stratum {}; resumed from stratum {}",
            f.worker, f.stratum, f.resumed_from
        );
        println!(
            "  simulated time {:.0} ({:+.0}% vs no-failure), checkpoints shipped: {} bytes",
            report.simulated_time(),
            100.0 * (report.simulated_time() / base_rep.simulated_time() - 1.0),
            report.checkpoint_bytes
        );
    }
    println!("\nboth strategies produce identical distances; incremental pays less.");
}
