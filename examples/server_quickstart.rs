//! Server quickstart: the embedded engine behind a TCP socket.
//!
//! ```sh
//! cargo run --example server_quickstart
//! ```
//!
//! Spawns a rex server in-process on an ephemeral port, then drives it
//! the way any external client would — over TCP, in the line protocol
//! (see docs/SERVER.md). Pass an address to talk to an already-running
//! `rex-serverd` instead (this is what the CI smoke job does):
//!
//! ```sh
//! cargo run -p rex-server --bin rex-serverd -- --addr 127.0.0.1:7462 &
//! cargo run --example server_quickstart -- 127.0.0.1:7462
//! ```

use rex::core::tuple::Tuple;
use rex::core::value::Value;
use rex::Session;
use rex_server::{Client, Server, ServerConfig};

fn main() {
    // ---- 1. A server to talk to -----------------------------------------
    // In-process by default; an external daemon if an address was given.
    let external = std::env::args().nth(1);
    let server = if external.is_none() {
        let mut session = Session::local();
        session.query("CREATE TABLE org (employee STRING, manager STRING)").expect("create org");
        Some(Server::start(session, "127.0.0.1:0", ServerConfig::default()).expect("start"))
    } else {
        None
    };
    let addr = match (&external, &server) {
        (Some(a), _) => a.clone(),
        (None, Some(s)) => s.local_addr().to_string(),
        _ => unreachable!(),
    };

    // ---- 2. Connect and handshake ---------------------------------------
    let (mut client, greeting) = Client::connect(addr.as_str()).expect("connect");
    println!("connected: {greeting}");

    // ---- 3. DDL travels as a SCRIPT (serialized on the writer thread) ---
    // Against an external daemon the table may not exist yet; creating it
    // twice is the one statement allowed to fail here.
    let (results, _) = client
        .script(&[
            "CREATE TABLE org (employee STRING, manager STRING)",
            "CREATE MATERIALIZED VIEW reports AS \
             SELECT manager, count(*) FROM org GROUP BY manager",
        ])
        .expect("script");
    println!(
        "script: {} statements, {} ok",
        results.len(),
        results.iter().filter(|r| r.is_ok()).count()
    );

    // ---- 4. Rows travel as INSERT/BATCH; the ack's version is the proof -
    // The server publishes a covering snapshot *before* acknowledging, so
    // the very next query is guaranteed to see these rows.
    let edge = |e: &str, m: &str| Tuple::new(vec![Value::str(e), Value::str(m)]);
    let ack = client
        .batch(
            "org",
            &[
                edge("ada", "grace"),
                edge("edsger", "grace"),
                edge("grace", "alan"),
                edge("barbara", "alan"),
                edge("donald", "barbara"),
            ],
        )
        .expect("batch");
    println!("ingested {} rows; session version {}", ack.rows, ack.version);

    // ---- 5. Queries run lock-free on the published snapshot --------------
    let reply = client
        .query("SELECT manager, count(*) FROM org GROUP BY manager ORDER BY 2 DESC, manager")
        .expect("query");
    println!("top managers (snapshot v{}, engine {}):", reply.version, reply.engine);
    for row in &reply.rows {
        println!("  {row}");
    }
    assert!(reply.version >= ack.version, "read-your-writes");

    // The incrementally maintained view answers the same question.
    let view = client.query("SELECT * FROM reports ORDER BY 2 DESC, manager").expect("view");
    assert_eq!(view.rows.len(), reply.rows.len());

    // ---- 6. STATS: traffic counters + the snapshot's own report ----------
    let stats = client.stats().expect("stats");
    for line in stats.lines().filter(|l| {
        l.starts_with("server.queries")
            || l.starts_with("server.publishes")
            || l.starts_with("snapshot.version")
            || l.starts_with("view.reports.")
    }) {
        println!("  {line}");
    }

    // ---- 7. Hang up; stop the in-process server gracefully ---------------
    client.quit().expect("quit");
    if let Some(server) = server {
        server.shutdown().expect("shutdown");
        println!("server: clean shutdown");
    }
    println!("done.");
}
