//! Delta-based K-means over 2-D geo points (Listing 3): the centroid
//! relation is the mutable set; only points that *switch* clusters emit
//! deltas.
//!
//! ```sh
//! cargo run --release --example geo_clustering
//! ```

use rex::algos::kmeans::{centroids_from_results, plan_local, KMeansConfig};
use rex::algos::reference;
use rex::core::exec::LocalRuntime;
use rex::data::points::{generate_points, PointSpec};

fn main() {
    let points =
        generate_points(PointSpec { n_points: 2_000, n_clusters: 6, stddev: 2.0, seed: 5 });
    let k = 6;
    println!("clustering {} points into {k} clusters", points.len());

    let plan = plan_local(&points, KMeansConfig { k, max_iterations: 100 });
    let (results, report) = LocalRuntime::new().run(plan).expect("kmeans");
    let centroids = centroids_from_results(&results, k);

    println!("\ncentroids:");
    for (cid, c) in centroids.iter().enumerate() {
        println!("  cluster {cid}: ({:>8.3}, {:>8.3})", c.x, c.y);
    }

    // Cross-check against sequential Lloyd's iteration.
    let init = reference::sample_centroids(&points, k);
    let (want, _, iters, switch_trace) = reference::kmeans(&points, &init, 100);
    let max_err = centroids.iter().zip(&want).map(|(a, b)| a.dist(b)).fold(0.0f64, f64::max);
    println!("\nmax deviation from sequential Lloyd's: {max_err:.2e} over {iters} iterations");

    // The delta behaviour: switches per stratum shrink to zero.
    println!("\npoints switching clusters per engine stratum (the Δᵢ set):");
    for s in &report.strata {
        println!("  {:>3}: {:>5} changed-centroid deltas", s.stratum, s.delta_set_size);
    }
    println!("\nreference switch trace: {switch_trace:?}");
}
