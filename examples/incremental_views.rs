//! Materialized views kept fresh by the delta engine.
//!
//! Creates a join+aggregate view over an orders stream, then inserts and
//! deletes rows and watches the view track the base tables without ever
//! re-running the defining query — the `+()` / `-()` deltas of each batch
//! propagate through the view's maintenance plan instead.
//!
//! ```sh
//! cargo run --example incremental_views
//! ```

use rex::core::tuple::{Schema, Tuple};
use rex::core::value::{DataType, Value};
use rex::Session;

fn main() {
    let mut session = Session::local();

    // ---- 1. Base tables: an orders stream and a tiny rates dimension ----
    session
        .create_table(
            "orders",
            Schema::of(&[
                ("customer", DataType::Str),
                ("region", DataType::Int),
                ("amount", DataType::Double),
            ]),
        )
        .expect("create orders");
    session
        .create_table("rates", Schema::of(&[("region", DataType::Int), ("rate", DataType::Double)]))
        .expect("create rates");

    let order =
        |c: &str, r: i64, a: f64| Tuple::new(vec![Value::str(c), Value::Int(r), Value::Double(a)]);
    session
        .insert(
            "orders",
            vec![
                order("ada", 1, 120.0),
                order("ada", 2, 80.0),
                order("grace", 1, 200.0),
                order("alan", 2, 50.0),
            ],
        )
        .expect("insert orders");
    session
        .insert(
            "rates",
            vec![
                Tuple::new(vec![Value::Int(1), Value::Double(1.10)]),
                Tuple::new(vec![Value::Int(2), Value::Double(1.25)]),
            ],
        )
        .expect("insert rates");

    // ---- 2. CREATE MATERIALIZED VIEW: join + aggregate -------------------
    // EXPLAIN first: the session reports the maintenance strategy it will
    // pick (incremental here; recursive views would say "full recompute").
    let ddl = "CREATE MATERIALIZED VIEW spend AS
        SELECT customer, count(*), sum(taxed) FROM
          (SELECT o.customer AS customer, o.amount * r.rate AS taxed
           FROM orders o, rates r WHERE o.region = r.region) t
        GROUP BY customer";
    println!("{}", session.explain(ddl).expect("explain ddl"));
    session.query(ddl).expect("create view");

    let show = |session: &mut Session, when: &str| {
        let rows = session.query("SELECT * FROM spend").expect("scan view").rows;
        println!("spend per customer {when}:");
        for row in &rows {
            println!("  {:<6} orders={} taxed={:.2}", row.get(0), row.get(1), row.get(2));
        }
    };
    show(&mut session, "after creation");

    // ---- 3. Inserts and deletes maintain the view, not recompute it ------
    session
        .insert("orders", vec![order("ada", 1, 300.0), order("turing", 2, 40.0)])
        .expect("insert more");
    show(&mut session, "after two inserts (O(1) running state per touched group)");

    session.delete("orders", vec![order("alan", 2, 50.0)]).expect("delete one");
    show(&mut session, "after deleting alan's only order (group disappears)");

    let n = session.delete_where("orders", "amount > 150.0").expect("delete where");
    show(&mut session, &format!("after delete_where amount > 150.0 ({n} rows)"));

    // ---- 4. Dependency tracking guards the base tables -------------------
    let err = session.drop_table("orders").expect_err("must refuse");
    println!("\ndrop orders while the view reads it -> {err}");
    session.query("DROP VIEW spend").expect("drop view");
    session.drop_table("orders").expect("now droppable");
    println!("after DROP VIEW, the base table drops cleanly");
}
