//! Quickstart: plain and recursive RQL through [`rex::Session`] — the
//! one front door from query text to results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rex::core::tuple::Tuple;
use rex::core::value::Value;
use rex::Session;

fn main() {
    // ---- 1. Open a session and create tables — in plain RQL DDL --------
    // `Session::cluster(8)` would run the very same queries distributed.
    let mut session = Session::local();
    session.query("CREATE TABLE org (employee string, manager string)").expect("create org");
    session.query("CREATE TABLE roots (name string)").expect("create roots");

    let edge = |e: &str, m: &str| Tuple::new(vec![Value::str(e), Value::str(m)]);
    session
        .insert(
            "org",
            vec![
                edge("ada", "grace"),
                edge("edsger", "grace"),
                edge("grace", "alan"),
                edge("barbara", "alan"),
                edge("donald", "barbara"),
            ],
        )
        .expect("insert org");
    session.insert("roots", vec![Tuple::new(vec![Value::str("alan")])]).expect("insert roots");

    // ---- 2. An ordinary SQL query — busiest managers first ---------------
    // HAVING filters groups; ORDER BY 2 DESC sorts by the count column;
    // LIMIT keeps the top rows (see docs/RQL.md for the full language).
    let result = session
        .query(
            "SELECT manager, count(*) FROM org GROUP BY manager \
             HAVING count(*) > 0 ORDER BY 2 DESC, manager LIMIT 3",
        )
        .expect("group by");
    println!("direct reports per manager (top 3):");
    for row in &result.rows {
        println!("  {:<8} {}", row.get(0), row.get(1));
    }

    // ---- 3. A recursive query: everyone in alan's reporting tree ---------
    let result = session
        .query(
            "WITH reports (name) AS (
               SELECT name FROM roots
             ) UNION UNTIL FIXPOINT BY name (
               SELECT org.employee FROM org, reports WHERE org.manager = reports.name
             )",
        )
        .expect("recursive query");
    println!("\nalan's reporting tree ({} strata to fixpoint):", result.iterations());
    for row in &result.rows {
        println!("  {}", row.get(0));
    }
    println!(
        "\nΔ set sizes per stratum: {:?}  (each name derived exactly once)",
        result.delta_sizes()
    );
    println!(
        "optimizer estimate: {:.1} cost units for {} rows; executed on the {} engine",
        result.cost.runtime(),
        result.cost.rows,
        result.engine
    );

    // ---- 4. EXPLAIN without executing ------------------------------------
    let plan = session
        .explain("SELECT manager, count(*) FROM org WHERE employee > 'b' GROUP BY manager")
        .expect("explain");
    println!("\n{plan}");
}
