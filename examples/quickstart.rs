//! Quickstart: run plain and recursive RQL queries on the REX engine.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rex::core::exec::LocalRuntime;
use rex::core::tuple::{Schema, Tuple};
use rex::core::udf::Registry;
use rex::core::value::{DataType, Value};
use rex::rql::lower::{compile, MemTables};
use rex::rql::SchemaCatalog;

fn main() {
    // ---- 1. Register a table: org(employee, manager) --------------------
    let mut catalog = SchemaCatalog::new();
    catalog.register(
        "org",
        Schema::of(&[("employee", DataType::Str), ("manager", DataType::Str)]),
    );
    catalog.register("roots", Schema::of(&[("name", DataType::Str)]));

    let mut tables = MemTables::new();
    let edge = |e: &str, m: &str| Tuple::new(vec![Value::str(e), Value::str(m)]);
    tables.insert(
        "org",
        vec![
            edge("ada", "grace"),
            edge("edsger", "grace"),
            edge("grace", "alan"),
            edge("barbara", "alan"),
            edge("donald", "barbara"),
        ],
    );
    tables.insert("roots", vec![Tuple::new(vec![Value::str("alan")])]);

    let reg = Registry::with_builtins();
    let rt = LocalRuntime::new();

    // ---- 2. An ordinary SQL query ----------------------------------------
    let sql = "SELECT manager, count(*) FROM org GROUP BY manager";
    let plan = compile(sql, &catalog, &tables, &reg).expect("compile");
    let (results, _) = rt.run(plan).expect("run");
    println!("direct reports per manager:");
    for row in &results {
        println!("  {:<8} {}", row.get(0), row.get(1));
    }

    // ---- 3. A recursive query: everyone in alan's reporting tree ---------
    let recursive = "
        WITH reports (name) AS (
          SELECT name FROM roots
        ) UNION UNTIL FIXPOINT BY name (
          SELECT org.employee FROM org, reports WHERE org.manager = reports.name
        )";
    let plan = compile(recursive, &catalog, &tables, &reg).expect("compile recursive");
    let (results, report) = rt.run(plan).expect("run recursive");
    println!("\nalan's reporting tree ({} strata to fixpoint):", report.iterations());
    for row in &results {
        println!("  {}", row.get(0));
    }
    println!(
        "\nΔ set sizes per stratum: {:?}  (each name derived exactly once)",
        report.strata.iter().map(|s| s.delta_set_size).collect::<Vec<_>>()
    );
}
