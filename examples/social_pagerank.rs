//! Delta-based PageRank over a simulated social graph — the paper's
//! flagship workload (Listing 1 / Figure 1) — written as RQL text and run
//! on a multi-worker cluster through [`rex::Session`]: one query, and the
//! system plans, optimizes, distributes, and iterates to fixpoint.
//!
//! ```sh
//! cargo run --release --example social_pagerank
//! ```

use rex::algos::common::per_vertex_doubles;
use rex::algos::pagerank::PrAgg;
use rex::algos::reference::BASE_RANK;
use rex::core::handlers::FlippedJoin;
use rex::data::graph::{generate_graph, Graph, GraphSpec};
use rex::Session;
use std::sync::Arc;

/// Listing 1: PageRank with the PRAgg join delta handler and an
/// incremental SUM over rank differences.
const LISTING1: &str = "
    WITH PR (srcId, pr) AS (
      SELECT srcId, 1.0 AS pr FROM graph
    ) UNION UNTIL FIXPOINT BY srcId (
      SELECT nbr, 0.15 + 0.85 * sum(prDiff)
      FROM (SELECT PRAgg(srcId, pr).{nbr, prDiff}
            FROM graph, PR
            WHERE graph.srcId = PR.srcId)
      GROUP BY nbr)";

fn main() {
    // A follower graph with a heavy-tailed degree distribution.
    let graph = generate_graph(GraphSpec::twitter(2_000, 99));
    println!("social graph: {} users, {} follow edges", graph.n_vertices, graph.n_edges());

    // One session on an 8-worker cluster: the edge relation is stored
    // partitioned on srcId (the first column), which the distributed
    // lowering exploits to keep the Listing 1 join co-partitioned.
    let mut session = Session::cluster(8);
    session.create_table("graph", Graph::schema()).expect("create graph");
    session.insert("graph", graph.edge_tuples()).expect("load edges");

    // Listing 1's PRAgg, flipped because `FROM graph, PR` puts the rank
    // relation on the right. Changes below 1% are not propagated.
    session.register_join("PRAgg", Arc::new(FlippedJoin(Arc::new(PrAgg::delta(0.01)))));

    let result = session.query(LISTING1).expect("pagerank");
    let ranks = per_vertex_doubles(&result.rows, graph.n_vertices, BASE_RANK);

    // Top influencers.
    let mut by_rank: Vec<(usize, f64)> = ranks.iter().copied().enumerate().collect();
    by_rank.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop 10 users by PageRank:");
    for (user, rank) in by_rank.iter().take(10) {
        println!("  user {user:>5}: {rank:.4}");
    }

    // The delta story: Δ set sizes shrink as ranks converge.
    println!("\nconverged in {} strata; Δ set per stratum:", result.iterations());
    for s in &result.report.strata {
        let bar = "#".repeat((s.delta_set_size as usize / 40).min(70));
        println!("  {:>3}: {:>6} {bar}", s.stratum, s.delta_set_size);
    }
    let cluster = result.cluster.as_ref().expect("ran distributed");
    println!(
        "\nbytes shipped between {} workers: {} (deltas only, not the full rank relation)",
        cluster.n_workers, result.report.totals.bytes_sent
    );
    println!(
        "optimizer estimate: {:.0} cost units; measured simulated time: {:.0} units",
        result.cost.runtime(),
        result.simulated_time()
    );
}
