//! Delta-based PageRank over a simulated social graph on a multi-worker
//! REX cluster — the paper's flagship workload (Listing 1 / Figure 1).
//!
//! ```sh
//! cargo run --release --example social_pagerank
//! ```

use rex::algos::pagerank::{plan_builder, ranks_from_results, PageRankConfig, Strategy};
use rex::cluster::runtime::{ClusterConfig, ClusterRuntime};
use rex::data::graph::{generate_graph, Graph, GraphSpec};
use rex::storage::catalog::Catalog;
use rex::storage::table::StoredTable;

fn main() {
    // A follower graph with a heavy-tailed degree distribution.
    let graph = generate_graph(GraphSpec::twitter(2_000, 99));
    println!(
        "social graph: {} users, {} follow edges",
        graph.n_vertices,
        graph.n_edges()
    );

    // Store the edge relation partitioned by source vertex.
    let catalog = Catalog::new();
    let mut table = StoredTable::new("graph", Graph::schema(), vec![0]);
    table.load_unchecked(graph.edge_tuples());
    catalog.register(table);

    // Run delta PageRank on 8 workers: only rank changes above 1% are
    // propagated between iterations.
    let workers = 8;
    let rt = ClusterRuntime::new(ClusterConfig::new(workers), catalog);
    let cfg = PageRankConfig { threshold: 0.01, max_iterations: 60 };
    let (results, report) = rt.run(plan_builder(cfg, Strategy::Delta)).expect("pagerank");
    let ranks = ranks_from_results(&results, graph.n_vertices);

    // Top influencers.
    let mut by_rank: Vec<(usize, f64)> = ranks.iter().copied().enumerate().collect();
    by_rank.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop 10 users by PageRank:");
    for (user, rank) in by_rank.iter().take(10) {
        println!("  user {user:>5}: {rank:.4}");
    }

    // The delta story: Δ set sizes shrink as ranks converge.
    println!("\nconverged in {} strata; Δ set per stratum:", report.iterations());
    for s in &report.query.strata {
        let bar = "#".repeat((s.delta_set_size as usize / 40).min(70));
        println!("  {:>3}: {:>6} {bar}", s.stratum, s.delta_set_size);
    }
    println!(
        "\nbytes shipped between workers: {} (deltas only, not the full rank relation)",
        report.query.totals.bytes_sent
    );
}
