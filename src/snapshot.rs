//! Versioned, immutable database snapshots: the concurrent read path.
//!
//! A [`SnapshotView`] is everything [`Session::query`](crate::session::Session::query)
//! needs to answer a *read* — schema catalog, stored tables (base tables
//! and synced materialized-view copies), UDF registry, a
//! statistics-frozen optimizer, and the engine — captured at one version
//! and never mutated again. [`Session::snapshot`](crate::session::Session::snapshot)
//! builds one in O(tables) `Arc` bumps (no row is copied; see
//! [`Catalog::snapshot`]); every later write copy-on-writes the affected
//! table, so a published snapshot keeps serving exactly the rows it
//! captured.
//!
//! This is the MVCC-lite design the server front-end
//! (`rex-server`) is built on: a single writer thread applies
//! inserts/DDL, runs view maintenance through the existing delta path,
//! bumps the version, and publishes a fresh `Arc<SnapshotView>`; any
//! number of reader threads clone the current `Arc` and execute
//! lock-free against a consistent version. Readers never block the
//! writer and the writer never disturbs readers.
//!
//! ```
//! use rex::Session;
//! use rex::core::tuple::Schema;
//! use rex::core::value::DataType;
//! use rex::core::tuple;
//!
//! let mut s = Session::local();
//! s.create_table("t", Schema::of(&[("x", DataType::Int)])).unwrap();
//! s.insert("t", vec![tuple![1i64]]).unwrap();
//! let snap = s.snapshot().unwrap();          // version frozen here
//! s.insert("t", vec![tuple![2i64]]).unwrap(); // invisible to `snap`
//! let r = snap.query("SELECT x FROM t").unwrap();
//! assert_eq!(r.rows, vec![tuple![1i64]]);
//! assert!(s.snapshot().unwrap().version() > snap.version());
//! ```

use crate::engine::{Engine, EngineContext};
use crate::session::QueryResult;
use rex_core::error::{Result, RexError};
use rex_core::metrics::QueryReport;
use rex_core::telemetry::fmt_ns;
use rex_core::tuple::Tuple;
use rex_core::udf::Registry;
use rex_core::value::Value;
use rex_optimizer::Optimizer;
use rex_rql::ast::Statement;
use rex_rql::logical::{LogicalPlan, SortKey};
use rex_rql::resolve::SchemaCatalog;
use rex_rql::{RqlError, RqlStage};
use rex_storage::catalog::Catalog;
use std::sync::Arc;

/// A materialized view's identity card inside a snapshot — the same
/// strategy strings `Session::explain` prints, captured at publish time
/// so server `STATS` output cannot drift from the engine's own view of
/// the world.
#[derive(Debug, Clone)]
pub struct ViewStat {
    /// View name (lowercase).
    pub name: String,
    /// Rendered maintenance strategy ("incremental delta propagation",
    /// "full recompute (…)").
    pub strategy: String,
    /// Per-aggregate maintenance strategies (O(1) running sum, ordered
    /// multiset min/max, dirty-group replay, …).
    pub agg_strategies: Vec<String>,
}

/// An immutable, versioned view of the database: the read half of a
/// [`Session`](crate::session::Session), shareable across threads. See
/// the [module docs](self).
pub struct SnapshotView {
    version: u64,
    schemas: SchemaCatalog,
    store: Catalog,
    registry: Registry,
    optimizer: Optimizer,
    engine: Arc<dyn Engine>,
    views: Vec<ViewStat>,
    telemetry: bool,
    threads: usize,
}

impl SnapshotView {
    /// Assembled by [`Session::snapshot`](crate::session::Session::snapshot).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        version: u64,
        schemas: SchemaCatalog,
        store: Catalog,
        registry: Registry,
        optimizer: Optimizer,
        engine: Arc<dyn Engine>,
        views: Vec<ViewStat>,
        telemetry: bool,
        threads: usize,
    ) -> SnapshotView {
        SnapshotView {
            version,
            schemas,
            store,
            registry,
            optimizer,
            engine,
            views,
            telemetry,
            threads,
        }
    }

    /// The version this snapshot was published at. Versions are bumped by
    /// every committed session mutation (insert/delete/DDL), so two
    /// snapshots with the same version serve identical contents.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The engine queries run on ("local", "cluster", …).
    pub fn engine_name(&self) -> &str {
        self.engine.name()
    }

    /// Run a read-only RQL query against this frozen version. Write
    /// statements (DDL) are refused — they must go through the owning
    /// session (in the server: the writer thread). `EXPLAIN` and
    /// `EXPLAIN ANALYZE` over queries are reads and run here too, their
    /// output returned as single-column text rows.
    ///
    /// `&self`: any number of threads may query one snapshot
    /// concurrently; per-query state lives on the stack.
    pub fn query(&self, rql: &str) -> Result<QueryResult> {
        let stmt = rex_rql::parse(rql).map_err(|e| RqlError::at(RqlStage::Parse, e))?;
        if stmt.is_ddl() {
            return Err(RexError::Plan(
                "snapshot is read-only: DDL must run through the session (server: the write \
                 path — SCRIPT)"
                    .into(),
            ));
        }
        let (explain, analyze, stmt) = match stmt {
            Statement::Explain { analyze, inner } => (true, analyze, *inner),
            s => (false, false, s),
        };
        let logical = rex_rql::logical::plan(&stmt, &self.schemas, &self.registry)
            .map_err(|e| RqlError::at(RqlStage::Plan, e))?;
        if explain && analyze {
            return run_explain_analyze(
                logical,
                &self.optimizer,
                self.engine.as_ref(),
                &self.store,
                &self.registry,
                self.threads,
            );
        }
        if explain {
            return explain_result(logical, &self.optimizer, self.engine.name());
        }
        run_read_query(
            logical,
            &self.optimizer,
            self.engine.as_ref(),
            &self.store,
            &self.registry,
            self.telemetry,
            self.threads,
        )
    }

    /// Table (and synced view-copy) names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.store.table_names()
    }

    /// Rows stored in `table` at this version.
    pub fn table_rows(&self, table: &str) -> Result<usize> {
        Ok(self.store.get(table)?.len())
    }

    /// The materialized views captured in this snapshot, with the same
    /// strategy rendering `Session::explain` uses.
    pub fn views(&self) -> &[ViewStat] {
        &self.views
    }

    /// A human-readable snapshot report: version, engine, per-table row
    /// counts, and each view's maintenance strategy. The server's `STATS`
    /// command serves this text (plus its own traffic counters), so the
    /// numbers are read off the same structures the engine executes
    /// against — they cannot drift.
    pub fn stats_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("snapshot.version {}\n", self.version));
        out.push_str(&format!("engine {}\n", self.engine_name()));
        let view_names: std::collections::BTreeSet<String> =
            self.views.iter().map(|v| v.name.clone()).collect();
        for t in self.table_names() {
            if view_names.contains(&t) {
                continue;
            }
            let rows = self.table_rows(&t).unwrap_or(0);
            out.push_str(&format!("table.{t}.rows {rows}\n"));
        }
        for v in &self.views {
            let rows = self.table_rows(&v.name).unwrap_or(0);
            out.push_str(&format!("view.{}.rows {rows}\n", v.name));
            out.push_str(&format!("view.{}.strategy {}\n", v.name, v.strategy));
            for a in &v.agg_strategies {
                out.push_str(&format!("view.{}.agg {}\n", v.name, a));
            }
        }
        out
    }
}

/// The shared read pipeline: optimize → execute → presentation-sort.
/// Both the live session (`Session::query`) and every published
/// [`SnapshotView`] funnel reads through here, so embedded and served
/// queries cannot diverge in semantics.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_read_query(
    logical: LogicalPlan,
    optimizer: &Optimizer,
    engine: &dyn Engine,
    store: &Catalog,
    registry: &Registry,
    telemetry: bool,
    threads: usize,
) -> Result<QueryResult> {
    let (optimized, cost) = optimizer.optimize(logical)?;
    let ctx = EngineContext { store, registry, telemetry, threads };
    let mut out = engine.execute(&optimized, &ctx)?;
    // Engines return rows sorted (their agreement contract); a top-level
    // ORDER BY re-orders the final — already limited — rows into
    // presentation order.
    if let Some(keys) = output_ordering(&optimized) {
        presentation_sort(&mut out.rows, keys, registry)?;
    }
    Ok(QueryResult {
        rows: out.rows,
        report: out.report,
        cluster: out.cluster,
        cost,
        engine: engine.name().to_string(),
        trace: out.trace,
    })
}

/// One single-column string tuple per line of `text` — how EXPLAIN output
/// travels as a result set (and so over the server's line protocol
/// unchanged).
pub(crate) fn text_rows(text: &str) -> Vec<Tuple> {
    text.lines().map(|l| Tuple::new(vec![Value::str(l)])).collect()
}

/// `EXPLAIN <query>` without execution: logical plan, optimizer rewrite,
/// and estimate, as text rows.
pub(crate) fn explain_result(
    logical: LogicalPlan,
    optimizer: &Optimizer,
    engine: &str,
) -> Result<QueryResult> {
    let before = logical.explain();
    let (optimized, cost) = optimizer.optimize(logical)?;
    let text = format!(
        "== logical ==\n{before}== optimized ==\n{}== estimate ==\nruntime {:.3} units, {} rows\n",
        optimized.explain(),
        cost.runtime(),
        cost.rows,
    );
    Ok(QueryResult {
        rows: text_rows(&text),
        report: QueryReport::default(),
        cluster: None,
        cost,
        engine: engine.to_string(),
        trace: None,
    })
}

/// `EXPLAIN ANALYZE <query>`: execute with telemetry forced on and render
/// the measured operator tree next to the optimizer's estimate, so
/// misestimates read directly off the `estimated … actual …` line. Shared
/// by [`Session::query`](crate::session::Session::query) and
/// [`SnapshotView::query`].
pub(crate) fn run_explain_analyze(
    logical: LogicalPlan,
    optimizer: &Optimizer,
    engine: &dyn Engine,
    store: &Catalog,
    registry: &Registry,
    threads: usize,
) -> Result<QueryResult> {
    let (optimized, cost) = optimizer.optimize(logical)?;
    let ctx = EngineContext { store, registry, telemetry: true, threads };
    let out = engine.execute(&optimized, &ctx)?;
    let trace = out
        .trace
        .ok_or_else(|| RexError::Exec("engine returned no trace for EXPLAIN ANALYZE".into()))?;
    let mut text = format!("== explain analyze ({}) ==\n", engine.name());
    text.push_str(&format!(
        "estimated {} rows; actual {} rows in {}\n",
        cost.rows,
        out.rows.len(),
        fmt_ns((trace.wall_seconds * 1e9) as u64),
    ));
    text.push_str(&trace.render());
    Ok(QueryResult {
        rows: text_rows(&text),
        report: out.report,
        cluster: out.cluster,
        cost,
        engine: engine.name().to_string(),
        trace: Some(trace),
    })
}

/// The ORDER BY keys governing the final result's presentation order, if
/// the plan's root is a `Sort` (possibly under a `Limit`). The dataflow
/// already applied any LIMIT/OFFSET *selection*; what remains is putting
/// the surviving rows in order.
fn output_ordering(plan: &LogicalPlan) -> Option<&[SortKey]> {
    match plan {
        LogicalPlan::Sort { keys, .. } => Some(keys),
        LogicalPlan::Limit { input, .. } => output_ordering(input),
        _ => None,
    }
}

/// Order rows by the sort keys via the engine-shared
/// [`compare_by_keys`](rex_core::operators::compare_by_keys) total order
/// (keys in sequence, full-row tie-break) — the same order the top-k
/// operator selects by, so selection and presentation can never disagree.
fn presentation_sort(rows: &mut Vec<Tuple>, keys: &[SortKey], reg: &Registry) -> Result<()> {
    use rex_core::operators::{compare_by_keys, SortSpec};
    let specs: Vec<SortSpec> =
        keys.iter().map(|k| SortSpec { expr: k.expr.clone(), desc: k.desc }).collect();
    let mut keyed: Vec<(Vec<rex_core::value::Value>, usize)> = Vec::with_capacity(rows.len());
    for (i, t) in rows.iter().enumerate() {
        let mut kv = Vec::with_capacity(specs.len());
        for s in &specs {
            kv.push(s.expr.eval(t, reg)?);
        }
        keyed.push((kv, i));
    }
    keyed.sort_unstable_by(|a, b| compare_by_keys(&specs, &a.0, &rows[a.1], &b.0, &rows[b.1]));
    // Apply the permutation without cloning any tuple.
    let mut slots: Vec<Option<Tuple>> = std::mem::take(rows).into_iter().map(Some).collect();
    *rows = keyed.into_iter().map(|(_, i)| slots[i].take().expect("unique index")).collect();
    Ok(())
}

#[cfg(test)]
mod tests {
    use rex_core::tuple;
    use rex_core::tuple::Schema;
    use rex_core::value::DataType;

    use crate::Session;

    fn seeded(engine: &str) -> Session {
        let mut s = match engine {
            "cluster" => Session::cluster(3),
            _ => Session::local(),
        };
        s.create_table("edges", Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)]))
            .unwrap();
        s.insert("edges", vec![tuple![0i64, 1i64], tuple![1i64, 2i64], tuple![0i64, 2i64]])
            .unwrap();
        s
    }

    #[test]
    fn snapshots_version_and_isolate_on_both_engines() {
        for engine in ["local", "cluster"] {
            let mut s = seeded(engine);
            let v1 = s.snapshot().unwrap();
            s.insert("edges", vec![tuple![9i64, 9i64]]).unwrap();
            let v2 = s.snapshot().unwrap();
            assert!(v2.version() > v1.version(), "{engine}");
            assert_eq!(v1.query("SELECT * FROM edges").unwrap().rows.len(), 3, "{engine}");
            assert_eq!(v2.query("SELECT * FROM edges").unwrap().rows.len(), 4, "{engine}");
            // Same version ⇒ same contents, even after more writes.
            s.delete("edges", vec![tuple![9i64, 9i64]]).unwrap();
            assert_eq!(v2.query("SELECT * FROM edges").unwrap().rows.len(), 4, "{engine}");
            assert_eq!(v2.engine_name(), engine);
        }
    }

    #[test]
    fn snapshot_serves_view_state_and_stats() {
        let mut s = seeded("local");
        s.create_materialized_view("fanout", "SELECT src, count(*) FROM edges GROUP BY src")
            .unwrap();
        let snap = s.snapshot().unwrap();
        let rows = snap.query("SELECT * FROM fanout").unwrap().rows;
        assert_eq!(rows, vec![tuple![0i64, 2i64], tuple![1i64, 1i64]]);
        // Maintenance after publish is invisible to the snapshot...
        s.insert("edges", vec![tuple![1i64, 7i64]]).unwrap();
        assert_eq!(snap.query("SELECT * FROM fanout").unwrap().rows.len(), 2);
        // ...and visible to the next one.
        let next = s.snapshot().unwrap();
        assert_eq!(
            next.query("SELECT src, count FROM fanout WHERE src = 1").unwrap().rows,
            vec![tuple![1i64, 2i64]]
        );
        let stats = next.stats_text();
        assert!(stats.contains("table.edges.rows 4"), "{stats}");
        assert!(stats.contains("view.fanout.rows 2"), "{stats}");
        assert!(stats.contains("view.fanout.strategy incremental"), "{stats}");
        assert!(stats.contains("count: O(1)"), "{stats}");
    }

    #[test]
    fn snapshot_refuses_writes_and_supports_full_query_surface() {
        let mut s = seeded("local");
        let snap = s.snapshot().unwrap();
        let err = snap.query("CREATE TABLE t2 (x int)").unwrap_err();
        assert!(err.to_string().contains("read-only"), "{err}");
        let err = snap.query("DROP TABLE edges").unwrap_err();
        assert!(err.to_string().contains("read-only"), "{err}");
        // ORDER BY / aggregate / recursion all run on a snapshot.
        let r = snap.query("SELECT src, dst FROM edges ORDER BY dst DESC LIMIT 2").unwrap();
        assert_eq!(r.rows, vec![tuple![0i64, 2i64], tuple![1i64, 2i64]], "ties by full row");
        let agg = snap.query("SELECT src, count(*) FROM edges GROUP BY src").unwrap();
        assert_eq!(agg.rows, vec![tuple![0i64, 2i64], tuple![1i64, 1i64]]);
        let reach = snap
            .query(
                "WITH reach (id) AS (SELECT src FROM edges WHERE src = 0)
                 UNION UNTIL FIXPOINT BY id (
                   SELECT edges.dst FROM edges, reach WHERE edges.src = reach.id)",
            )
            .unwrap();
        assert_eq!(reach.rows.len(), 3);
    }

    #[test]
    fn concurrent_readers_share_one_snapshot() {
        let mut s = seeded("local");
        let snap = s.snapshot().unwrap();
        let mut handles = Vec::new();
        for i in 0..4 {
            let snap = std::sync::Arc::clone(&snap);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    let r = snap.query("SELECT src, count(*) FROM edges GROUP BY src").unwrap();
                    assert_eq!(r.rows.len(), 2, "reader {i}");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
