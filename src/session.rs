//! The session: REX's front door.
//!
//! A [`Session`] owns everything a query needs — a schema catalog for name
//! resolution, a partitioned table store, a UDF/UDA registry, and a
//! cost-based optimizer — and runs RQL text through the full pipeline:
//!
//! ```text
//! parse → resolve/plan → optimize → lower → execute
//! ```
//!
//! on whichever [`Engine`] the session was opened with. The same query
//! text, tables, and handlers produce the same rows on the single-node
//! engine and on a simulated cluster; only the execution report differs.
//!
//! ```
//! use rex::Session;
//! use rex::core::tuple::Schema;
//! use rex::core::value::DataType;
//! use rex::core::tuple;
//!
//! let mut s = Session::local();
//! s.create_table("edges", Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)]))
//!     .unwrap();
//! s.insert("edges", vec![tuple![0i64, 1i64], tuple![1i64, 2i64]]).unwrap();
//! let result = s.query(
//!     "WITH reach (id) AS (SELECT src FROM edges WHERE src = 0)
//!      UNION UNTIL FIXPOINT BY id (
//!        SELECT edges.dst FROM edges, reach WHERE edges.src = reach.id)",
//! ).unwrap();
//! assert_eq!(result.rows.len(), 3); // 0, 1, 2
//! assert!(result.report.iterations() >= 2);
//! ```

use crate::engine::{ClusterEngine, ClusterStats, Engine, EngineContext, LocalEngine};
use rex_core::error::{Result, RexError};
use rex_core::handlers::{AggHandler, JoinHandler, WhileHandler};
use rex_core::metrics::{QueryReport, ReportSummary};
use rex_core::tuple::{Schema, Tuple};
use rex_core::udf::{Registry, ScalarUdf};
use rex_optimizer::{Optimizer, PlanCost};
use rex_rql::logical::LogicalPlan;
use rex_rql::resolve::SchemaCatalog;
use rex_storage::catalog::Catalog;
use rex_storage::table::StoredTable;
use std::sync::Arc;

/// The unified result of [`Session::query`]: rows plus execution
/// accounting from whichever engine ran the plan.
#[derive(Debug)]
pub struct QueryResult {
    /// The materialized result rows, sorted.
    pub rows: Vec<Tuple>,
    /// Per-stratum trace and totals (identical shape on every engine).
    pub report: QueryReport,
    /// Cluster-only accounting when the query ran distributed.
    pub cluster: Option<ClusterStats>,
    /// The optimizer's cost estimate for the executed plan.
    pub cost: PlanCost,
    /// Which engine ran the query ("local", "cluster", ...).
    pub engine: String,
}

impl QueryResult {
    /// Strata executed (1 for non-recursive queries).
    pub fn iterations(&self) -> usize {
        self.report.iterations()
    }

    /// Total simulated time in cost-model units.
    pub fn simulated_time(&self) -> f64 {
        ReportSummary::simulated_time(&self.report)
    }

    /// Δ set sizes per stratum — the convergence trace.
    pub fn delta_sizes(&self) -> Vec<u64> {
        self.report.strata.iter().map(|s| s.delta_set_size).collect()
    }
}

/// A REX session: tables + user code + optimizer + engine, behind one
/// query API. See the [module docs](self) for an end-to-end example.
pub struct Session {
    schemas: SchemaCatalog,
    store: Catalog,
    registry: Registry,
    optimizer: Optimizer,
    engine: Box<dyn Engine>,
}

impl Session {
    /// A session executing on the single-node engine.
    pub fn local() -> Session {
        Session::with_engine(Box::new(LocalEngine::new()))
    }

    /// A session executing on a simulated cluster of `n` workers. The
    /// optimizer is calibrated for the same cluster size.
    pub fn cluster(n_workers: usize) -> Session {
        let mut s = Session::with_engine(Box::new(ClusterEngine::new(n_workers)));
        s.optimizer = Optimizer::new(n_workers.max(1));
        s
    }

    /// A session on any [`Engine`] implementation.
    pub fn with_engine(engine: Box<dyn Engine>) -> Session {
        let n = 1;
        Session {
            schemas: SchemaCatalog::new(),
            store: Catalog::new(),
            registry: Registry::with_builtins(),
            optimizer: Optimizer::new(n),
            engine,
        }
    }

    /// Swap the execution engine, keeping tables and registered code. The
    /// same queries run unchanged on the new backend.
    pub fn set_engine(&mut self, engine: Box<dyn Engine>) {
        self.engine = engine;
    }

    /// The active engine's name.
    pub fn engine_name(&self) -> &str {
        self.engine.name()
    }

    // ---- tables ----------------------------------------------------------

    /// Create an empty table partitioned on its first column (the paper's
    /// key-based partitioning; use [`create_table_partitioned`](Self::create_table_partitioned)
    /// to choose the key).
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<()> {
        let cols = if schema.arity() > 0 { vec![0] } else { Vec::new() };
        self.create_table_partitioned(name, schema, cols)
    }

    /// Create an empty table partitioned on the given columns.
    pub fn create_table_partitioned(
        &mut self,
        name: &str,
        schema: Schema,
        partition_cols: Vec<usize>,
    ) -> Result<()> {
        if self.store.contains(name) {
            return Err(RexError::Storage(format!("table {name} already exists")));
        }
        if let Some(&bad) = partition_cols.iter().find(|&&c| c >= schema.arity()) {
            return Err(RexError::Storage(format!(
                "table {name}: partition column {bad} out of range for arity {}",
                schema.arity()
            )));
        }
        self.schemas.register(name, schema.clone());
        self.store.register(StoredTable::new(name, schema, partition_cols));
        Ok(())
    }

    /// Append rows to a table (validated against its schema; a bad batch
    /// leaves the table unchanged). Returns the number of rows inserted.
    pub fn insert(&mut self, table: &str, rows: Vec<Tuple>) -> Result<usize> {
        self.store.append(table, rows)
    }

    /// Drop a table; returns whether it existed.
    pub fn drop_table(&mut self, name: &str) -> bool {
        self.store.drop_table(name)
    }

    /// Number of rows currently stored in `table`.
    pub fn table_rows(&self, table: &str) -> Result<usize> {
        Ok(self.store.get(table)?.len())
    }

    /// The stored-table catalog (shared with the engines).
    pub fn store(&self) -> &Catalog {
        &self.store
    }

    // ---- user code -------------------------------------------------------

    /// Register a scalar UDF.
    pub fn register_scalar(&mut self, udf: Arc<dyn ScalarUdf>) {
        self.registry.register_scalar(udf);
    }

    /// Register a user-defined aggregate (UDA).
    pub fn register_aggregate(&mut self, name: &str, h: Arc<dyn AggHandler>) {
        self.registry.register_agg(name, h);
    }

    /// Register a join delta handler (Listing 1's `PRAgg` and friends).
    pub fn register_join(&mut self, name: &str, h: Arc<dyn JoinHandler>) {
        self.registry.register_join(name, h);
    }

    /// Register a while/fixpoint delta handler.
    pub fn register_handler(&mut self, name: &str, h: Arc<dyn WhileHandler>) {
        self.registry.register_while(name, h);
    }

    /// The registry (for advanced registration paths).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    // ---- queries ---------------------------------------------------------

    /// Parse and plan `rql` without executing it: the logical plan as the
    /// optimizer will see it.
    pub fn plan(&self, rql: &str) -> Result<LogicalPlan> {
        Ok(rex_rql::plan_rql(rql, &self.schemas, &self.registry)?)
    }

    /// Run `rql` through the full pipeline — parse → resolve → optimize →
    /// lower → execute — on the session's engine.
    pub fn query(&mut self, rql: &str) -> Result<QueryResult> {
        let logical = rex_rql::plan_rql(rql, &self.schemas, &self.registry)?;
        self.refresh_stats();
        let (optimized, cost) = self.optimizer.optimize(logical)?;
        let ctx = EngineContext { store: &self.store, registry: &self.registry };
        let out = self.engine.execute(&optimized, &ctx)?;
        Ok(QueryResult {
            rows: out.rows,
            report: out.report,
            cluster: out.cluster,
            cost,
            engine: self.engine.name().to_string(),
        })
    }

    /// EXPLAIN: the logical plan, the optimizer's rewrite, and its cost
    /// estimate, without executing.
    pub fn explain(&mut self, rql: &str) -> Result<String> {
        let logical = rex_rql::plan_rql(rql, &self.schemas, &self.registry)?;
        self.refresh_stats();
        let before = logical.explain();
        let (optimized, cost) = self.optimizer.optimize(logical)?;
        Ok(format!(
            "== logical ==\n{before}== optimized ==\n{}== estimate ==\nruntime {:.3} units, {} rows\n",
            optimized.explain(),
            cost.runtime(),
            cost.rows
        ))
    }

    /// Feed current table cardinalities to the optimizer so its estimates
    /// track the data the engines will actually scan.
    fn refresh_stats(&mut self) {
        for name in self.store.table_names() {
            if let Ok(t) = self.store.get(&name) {
                self.optimizer.stats.set_table_rows(name, t.len() as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::tuple;
    use rex_core::value::DataType;

    fn edge_session(engine: &str) -> Session {
        let mut s = match engine {
            "cluster" => Session::cluster(3),
            _ => Session::local(),
        };
        s.create_table("edges", Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)]))
            .unwrap();
        s.insert(
            "edges",
            vec![tuple![0i64, 1i64], tuple![1i64, 2i64], tuple![2i64, 3i64], tuple![0i64, 2i64]],
        )
        .unwrap();
        s
    }

    #[test]
    fn select_runs_on_both_engines_with_cost_estimate() {
        for engine in ["local", "cluster"] {
            let mut s = edge_session(engine);
            let r = s.query("SELECT dst FROM edges WHERE src = 0").unwrap();
            assert_eq!(r.rows, vec![tuple![1i64], tuple![2i64]], "{engine}");
            assert_eq!(r.engine, engine);
            assert!(r.cost.runtime() > 0.0, "optimizer must cost the plan");
        }
    }

    #[test]
    fn recursive_query_agrees_across_engines() {
        let run = |engine: &str| {
            let mut s = edge_session(engine);
            s.create_table("seed", Schema::of(&[("id", DataType::Int)])).unwrap();
            s.insert("seed", vec![tuple![0i64]]).unwrap();
            s.query(
                "WITH reach (id) AS (SELECT id FROM seed)
                 UNION UNTIL FIXPOINT BY id (
                   SELECT edges.dst FROM edges, reach WHERE edges.src = reach.id)",
            )
            .unwrap()
        };
        let local = run("local");
        let cluster = run("cluster");
        assert_eq!(local.rows, cluster.rows);
        assert_eq!(local.rows.len(), 4);
        assert!(cluster.cluster.is_some(), "cluster run carries worker stats");
        assert!(local.cluster.is_none());
        assert_eq!(*local.delta_sizes().last().unwrap(), 0, "converged");
    }

    #[test]
    fn insert_validates_and_accumulates() {
        let mut s = edge_session("local");
        assert_eq!(s.table_rows("edges").unwrap(), 4);
        s.insert("edges", vec![tuple![3i64, 0i64]]).unwrap();
        assert_eq!(s.table_rows("edges").unwrap(), 5);
        // Wrong arity is rejected and leaves the table unchanged.
        assert!(s.insert("edges", vec![tuple![1i64]]).is_err());
        assert_eq!(s.table_rows("edges").unwrap(), 5);
    }

    #[test]
    fn duplicate_table_is_rejected() {
        let mut s = edge_session("local");
        let err = s.create_table("edges", Schema::of(&[("x", DataType::Int)])).unwrap_err();
        assert!(err.to_string().contains("already exists"));
    }

    #[test]
    fn bad_partition_column_is_rejected() {
        let mut s = Session::local();
        let err = s
            .create_table_partitioned("t", Schema::of(&[("x", DataType::Int)]), vec![3])
            .unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn parse_and_plan_errors_convert_cleanly() {
        let mut s = edge_session("local");
        assert!(matches!(s.query("SELEKT zzz"), Err(RexError::Parse { .. })));
        assert!(matches!(s.query("SELECT x FROM missing"), Err(RexError::Plan(_))));
    }

    #[test]
    fn explain_shows_both_plans_and_estimate() {
        let mut s = edge_session("local");
        let txt = s.explain("SELECT src, count(*) FROM edges WHERE dst > 1 GROUP BY src").unwrap();
        assert!(txt.contains("== logical =="));
        assert!(txt.contains("== optimized =="));
        assert!(txt.contains("Aggregate"));
        assert!(txt.contains("runtime"));
    }

    #[test]
    fn engine_swap_keeps_tables_and_handlers() {
        let mut s = edge_session("local");
        let local_rows = s.query("SELECT src, count(*) FROM edges GROUP BY src").unwrap().rows;
        s.set_engine(Box::new(ClusterEngine::new(4)));
        assert_eq!(s.engine_name(), "cluster");
        let cluster_rows = s.query("SELECT src, count(*) FROM edges GROUP BY src").unwrap().rows;
        assert_eq!(local_rows, cluster_rows);
    }

    #[test]
    fn global_aggregate_is_one_row_on_cluster() {
        let mut s = edge_session("cluster");
        let r = s.query("SELECT sum(dst), count(*) FROM edges").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].get(1).as_int(), Some(4));
    }
}
