//! The session: REX's front door.
//!
//! A [`Session`] owns everything a query needs — a schema catalog for name
//! resolution, a partitioned table store, a UDF/UDA registry, and a
//! cost-based optimizer — and runs RQL text through the full pipeline:
//!
//! ```text
//! parse → resolve/plan → optimize → lower → execute
//! ```
//!
//! on whichever [`Engine`] the session was opened with. The same query
//! text, tables, and handlers produce the same rows on the single-node
//! engine and on a simulated cluster; only the execution report differs.
//!
//! ```
//! use rex::Session;
//! use rex::core::tuple::Schema;
//! use rex::core::value::DataType;
//! use rex::core::tuple;
//!
//! let mut s = Session::local();
//! s.create_table("edges", Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)]))
//!     .unwrap();
//! s.insert("edges", vec![tuple![0i64, 1i64], tuple![1i64, 2i64]]).unwrap();
//! let result = s.query(
//!     "WITH reach (id) AS (SELECT src FROM edges WHERE src = 0)
//!      UNION UNTIL FIXPOINT BY id (
//!        SELECT edges.dst FROM edges, reach WHERE edges.src = reach.id)",
//! ).unwrap();
//! assert_eq!(result.rows.len(), 3); // 0, 1, 2
//! assert!(result.report.iterations() >= 2);
//! ```

use crate::engine::{ClusterEngine, ClusterStats, Engine, LocalEngine};
use crate::snapshot::{run_explain_analyze, run_read_query, text_rows, SnapshotView, ViewStat};
use rex_core::delta::Delta;
use rex_core::error::{Result, RexError};
use rex_core::handlers::{AggHandler, JoinHandler, WhileHandler};
use rex_core::metrics::{QueryReport, ReportSummary};
use rex_core::telemetry::ExecTrace;
use rex_core::tuple::{Field, Schema, Tuple};
use rex_core::udf::{Registry, ScalarUdf};
use rex_optimizer::{Optimizer, PlanCost, ResourceVector};
use rex_rql::ast::{Query, Statement};
use rex_rql::logical::LogicalPlan;
use rex_rql::resolve::SchemaCatalog;
use rex_rql::{RqlError, RqlStage};
use rex_storage::catalog::Catalog;
use rex_storage::table::StoredTable;
use rex_views::{MaterializedView, ViewCatalog};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The unified result of [`Session::query`]: rows plus execution
/// accounting from whichever engine ran the plan.
#[derive(Debug)]
pub struct QueryResult {
    /// The materialized result rows, sorted.
    pub rows: Vec<Tuple>,
    /// Per-stratum trace and totals (identical shape on every engine).
    pub report: QueryReport,
    /// Cluster-only accounting when the query ran distributed.
    pub cluster: Option<ClusterStats>,
    /// The optimizer's cost estimate for the executed plan.
    pub cost: PlanCost,
    /// Which engine ran the query ("local", "cluster", ...).
    pub engine: String,
    /// Measured per-operator trace, when the session ran with telemetry
    /// enabled (always present for `EXPLAIN ANALYZE`).
    pub trace: Option<ExecTrace>,
}

impl QueryResult {
    /// Strata executed (1 for non-recursive queries).
    pub fn iterations(&self) -> usize {
        self.report.iterations()
    }

    /// Total simulated time in cost-model units.
    pub fn simulated_time(&self) -> f64 {
        ReportSummary::simulated_time(&self.report)
    }

    /// Δ set sizes per stratum — the convergence trace.
    pub fn delta_sizes(&self) -> Vec<u64> {
        self.report.strata.iter().map(|s| s.delta_set_size).collect()
    }
}

/// One entry of the session's slow-query log: a query whose wall time
/// crossed [`Session::set_slow_query_threshold`].
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// The query text as submitted.
    pub rql: String,
    /// Measured wall time.
    pub wall: Duration,
    /// The engine that ran it.
    pub engine: String,
    /// Result cardinality.
    pub rows: usize,
}

/// Ring-buffer capacity of the slow-query log: old entries fall off so an
/// unattended session can never grow the log without bound.
const SLOW_LOG_CAPACITY: usize = 32;

/// A REX session: tables + user code + optimizer + engine, behind one
/// query API. See the [module docs](self) for an end-to-end example.
pub struct Session {
    schemas: SchemaCatalog,
    store: Catalog,
    registry: Registry,
    optimizer: Optimizer,
    engine: Arc<dyn Engine>,
    views: ViewCatalog,
    /// Bumped by every committed mutation (insert/delete/DDL) — the
    /// version [`snapshot`](Self::snapshot) publishes at. Two snapshots
    /// with equal versions serve identical contents.
    version: u64,
    /// Collect an [`ExecTrace`] for every query (seeded from the
    /// `REX_TELEMETRY` environment variable; see
    /// [`set_telemetry`](Self::set_telemetry)).
    telemetry: bool,
    /// Per-query thread ceiling (seeded from `REX_THREADS`, defaulting
    /// to the host's available parallelism; see
    /// [`set_threads`](Self::set_threads)).
    threads: usize,
    /// Queries at least this slow land in the ring-buffer log.
    slow_threshold: Duration,
    slow_log: VecDeque<SlowQuery>,
}

impl Session {
    /// A session executing on the single-node engine.
    pub fn local() -> Session {
        Session::with_engine(Box::new(LocalEngine::new()))
    }

    /// A session executing on a simulated cluster of `n` workers. The
    /// optimizer is calibrated for the same cluster size.
    pub fn cluster(n_workers: usize) -> Session {
        let mut s = Session::with_engine(Box::new(ClusterEngine::new(n_workers)));
        s.optimizer = Optimizer::new(n_workers.max(1));
        // Views defined in this session shard their maintenance state
        // across the same workers (when the plan co-partitions; see
        // rex_views::sharded).
        s.views.set_partitions(n_workers.max(1));
        s
    }

    /// A session on any [`Engine`] implementation.
    pub fn with_engine(engine: Box<dyn Engine>) -> Session {
        let n = 1;
        Session {
            schemas: SchemaCatalog::new(),
            store: Catalog::new(),
            registry: Registry::with_builtins(),
            optimizer: Optimizer::new(n),
            engine: Arc::from(engine),
            views: ViewCatalog::new(),
            version: 0,
            telemetry: env_telemetry(),
            threads: env_threads(),
            slow_threshold: Duration::from_millis(100),
            slow_log: VecDeque::new(),
        }
    }

    // ---- telemetry -------------------------------------------------------

    /// Collect a measured per-operator [`ExecTrace`] for every query
    /// (returned in [`QueryResult::trace`]). Off by default; the
    /// `REX_TELEMETRY` environment variable (any value but `0` or empty)
    /// turns it on at construction so unmodified binaries can be measured.
    /// `EXPLAIN ANALYZE` traces its query regardless of this toggle.
    pub fn set_telemetry(&mut self, on: bool) {
        self.telemetry = on;
    }

    /// Whether per-query telemetry is being collected.
    pub fn telemetry(&self) -> bool {
        self.telemetry
    }

    // ---- parallelism -----------------------------------------------------

    /// Set the per-query thread ceiling. `1` forces single-threaded
    /// execution (the historical behavior); higher values let eligible
    /// queries run morsel-parallel across that many OS threads, and flow
    /// into every [`SnapshotView`] published afterwards. Engines treat
    /// this as a ceiling: plans that cannot parallelize safely still run
    /// on one thread, and the process-wide
    /// [`thread_budget`](rex_core::thread_budget) (the server's
    /// `--threads` flag) may cap the extra threads actually spawned.
    ///
    /// Defaults to the `REX_THREADS` environment variable when set, else
    /// the host's available parallelism.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
        self.views.set_threads(self.threads);
    }

    /// The current per-query thread ceiling.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Fault injection: kill worker `worker`'s view-maintenance shards
    /// and recover them under `strategy` — survivors adopt the dead
    /// worker's shard ranges, from replicated snapshots (`Incremental`)
    /// or by replaying base data (`Restart`); see `rex_views::sharded`
    /// and docs/FAULT.md. Published snapshots and the session's stored
    /// view copies are untouched, so reads keep being served throughout.
    /// Returns the number of shards lost (0 when no view is sharded).
    pub fn inject_failure(
        &mut self,
        worker: usize,
        strategy: rex_cluster::failure::RecoveryStrategy,
    ) -> Result<usize> {
        self.views.set_recovery(strategy);
        self.views.kill_worker(worker, &self.store, &self.registry)
    }

    /// Queries whose wall time reaches `threshold` are recorded in the
    /// slow-query log (default 100ms; `Duration::ZERO` logs everything).
    pub fn set_slow_query_threshold(&mut self, threshold: Duration) {
        self.slow_threshold = threshold;
    }

    /// The slow-query log, oldest first. A ring buffer of the 32 most
    /// recent offenders.
    pub fn slow_queries(&self) -> impl Iterator<Item = &SlowQuery> {
        self.slow_log.iter()
    }

    /// Record a finished query in the slow log if it crossed the line.
    fn note_query(&mut self, rql: &str, wall: Duration, rows: usize) {
        if wall < self.slow_threshold {
            return;
        }
        if self.slow_log.len() == SLOW_LOG_CAPACITY {
            self.slow_log.pop_front();
        }
        self.slow_log.push_back(SlowQuery {
            rql: rql.to_string(),
            wall,
            engine: self.engine.name().to_string(),
            rows,
        });
    }

    /// Swap the execution engine, keeping tables and registered code. The
    /// same queries run unchanged on the new backend.
    pub fn set_engine(&mut self, engine: Box<dyn Engine>) {
        self.engine = Arc::from(engine);
    }

    /// The current mutation version: how many committed mutations
    /// (inserts/deletes/DDL) this session has applied. Monotonic; carried
    /// by every published [`SnapshotView`].
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Publish an immutable, versioned snapshot of the database — the
    /// concurrent read path (see [`crate::snapshot`]). Stale view copies
    /// are synced first (via the delta path), optimizer statistics are
    /// frozen at current cardinalities, and the stored tables are
    /// captured copy-on-write in O(tables) `Arc` bumps. The returned
    /// `Arc<SnapshotView>` can be queried from any number of threads and
    /// keeps serving this exact version no matter what the session does
    /// next.
    pub fn snapshot(&mut self) -> Result<Arc<SnapshotView>> {
        self.views.sync(&self.store)?;
        self.refresh_stats();
        let views = self
            .views
            .names()
            .into_iter()
            .map(|name| {
                let v = self.views.get(&name).expect("view exists");
                ViewStat {
                    strategy: v.strategy().to_string(),
                    agg_strategies: v.agg_strategies(),
                    name,
                }
            })
            .collect();
        Ok(Arc::new(SnapshotView::assemble(
            self.version,
            self.schemas.clone(),
            self.store.snapshot(),
            self.registry.clone(),
            self.optimizer.clone(),
            Arc::clone(&self.engine),
            views,
            self.telemetry,
            self.threads,
        )))
    }

    /// The active engine's name.
    pub fn engine_name(&self) -> &str {
        self.engine.name()
    }

    // ---- tables ----------------------------------------------------------

    /// Create an empty table partitioned on its first column (the paper's
    /// key-based partitioning; use [`create_table_partitioned`](Self::create_table_partitioned)
    /// to choose the key).
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<()> {
        let cols = if schema.arity() > 0 { vec![0] } else { Vec::new() };
        self.create_table_partitioned(name, schema, cols)
    }

    /// Create an empty table partitioned on the given columns.
    pub fn create_table_partitioned(
        &mut self,
        name: &str,
        schema: Schema,
        partition_cols: Vec<usize>,
    ) -> Result<()> {
        if self.store.contains(name) {
            return Err(RexError::Storage(format!("table {name} already exists")));
        }
        if let Some(&bad) = partition_cols.iter().find(|&&c| c >= schema.arity()) {
            return Err(RexError::Storage(format!(
                "table {name}: partition column {bad} out of range for arity {}",
                schema.arity()
            )));
        }
        self.schemas.register(name, schema.clone());
        self.store.register(StoredTable::new(name, schema, partition_cols));
        self.version += 1;
        Ok(())
    }

    /// Append rows to a table (validated against its schema; a bad batch
    /// leaves the table unchanged). Returns the number of rows inserted.
    /// Materialized views reading the table are maintained incrementally
    /// from the batch's `+()` deltas. If view *maintenance* fails after
    /// the append validated, the rows stay committed — do not retry the
    /// batch — and every view is rebuilt from the current tables before
    /// the error is returned (the message says whether rebuild succeeded).
    pub fn insert(&mut self, table: &str, rows: Vec<Tuple>) -> Result<usize> {
        self.insert_stream(table, std::iter::once(rows))
    }

    /// Batched streaming ingest: append a *stream* of row batches to one
    /// table, then run a **single** view-maintenance pass over the
    /// combined deltas. This is the shared write path for embedded users
    /// and the server's writer loop (which drains a channel of batches
    /// into one call) — per-batch semantics match [`insert`](Self::insert)
    /// exactly (whole-batch validation; a bad batch leaves the table
    /// unchanged), but maintenance cost is paid once per stream, not once
    /// per batch. Returns the total rows inserted.
    ///
    /// If a batch fails validation mid-stream, earlier batches stay
    /// committed (views are maintained for them before the error
    /// surfaces) and the failing batch plus the rest of the stream are
    /// not consumed.
    pub fn insert_stream<I>(&mut self, table: &str, batches: I) -> Result<usize>
    where
        I: IntoIterator<Item = Vec<Tuple>>,
    {
        if self.views.contains(table) {
            return Err(RexError::Storage(format!("cannot insert into materialized view {table}")));
        }
        let track = self.views.reads(table);
        let mut deltas: Vec<Delta> = Vec::new();
        let mut total = 0usize;
        let mut failed: Option<RexError> = None;
        for rows in batches {
            let committed = deltas.len();
            if track {
                deltas.extend(rows.iter().cloned().map(Delta::insert));
            }
            match self.store.append(table, rows) {
                Ok(n) => total += n,
                Err(e) => {
                    // The failing batch never reached the store: its
                    // deltas must not reach the views either.
                    deltas.truncate(committed);
                    failed = Some(e);
                    break;
                }
            }
        }
        if total > 0 {
            self.version += 1;
        }
        let maintained = self.maintain_views(table, &deltas);
        match (failed, maintained) {
            (None, Ok(())) => Ok(total),
            (None, Err(m)) => Err(m),
            (Some(e), Ok(())) => Err(e),
            (Some(e), Err(m)) => Err(RexError::Exec(format!(
                "batch rejected ({e}); maintenance of the committed prefix also failed: {m}"
            ))),
        }
    }

    /// Delete one occurrence of each given row (whole-batch validation,
    /// mirroring [`insert`](Self::insert): a bad batch — wrong schema or a
    /// row not stored with sufficient multiplicity — leaves the table
    /// unchanged). Materialized views reading the table are maintained
    /// from the batch's `-()` deltas. Returns the number of rows deleted.
    /// As with [`insert`](Self::insert), a *maintenance* failure leaves
    /// the deletion committed and rebuilds the views before erroring.
    pub fn delete(&mut self, table: &str, rows: Vec<Tuple>) -> Result<usize> {
        if self.views.contains(table) {
            return Err(RexError::Storage(format!("cannot delete from materialized view {table}")));
        }
        let n = self.store.remove(table, &rows)?;
        self.version += 1;
        let deltas: Vec<Delta> = rows.into_iter().map(Delta::delete).collect();
        self.maintain_views(table, &deltas)?;
        Ok(n)
    }

    /// Delete every row of `table` matching an RQL predicate (the `WHERE`
    /// body, e.g. `"dst > 3 AND src = 0"`). Returns the number deleted.
    pub fn delete_where(&mut self, table: &str, predicate: &str) -> Result<usize> {
        let sql = format!("SELECT * FROM {table} WHERE {predicate}");
        let logical = rex_rql::plan_rql(&sql, &self.schemas, &self.registry)?;
        let matching = rex_views::evaluate(&logical, &self.store, &self.registry)?;
        self.delete(table, matching)
    }

    /// Drop a table. Typed errors distinguish the failure modes: the table
    /// may not exist, may be a view (use [`drop_view`](Self::drop_view)),
    /// or may still be read by materialized views (drop those first).
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        if self.views.contains(name) {
            return Err(RexError::Storage(format!("{name} is a materialized view; use DROP VIEW")));
        }
        let readers = self.views.dependents(name);
        if !readers.is_empty() {
            return Err(RexError::Storage(format!(
                "cannot drop {name}: materialized view(s) {} depend on it",
                readers.join(", ")
            )));
        }
        self.store.drop_table(name)?;
        self.schemas.remove(name);
        self.version += 1;
        Ok(())
    }

    /// Number of rows currently stored in `table` (or materialized in a
    /// view of that name — answered from the authoritative view state, so
    /// no mutation is needed).
    pub fn table_rows(&self, table: &str) -> Result<usize> {
        if let Some(v) = self.views.get(table) {
            return Ok(v.len());
        }
        Ok(self.store.get(table)?.len())
    }

    /// Feed a base-table change to every dependent materialized view. The
    /// base-table mutation has already committed; if maintenance fails
    /// partway (some views updated, some not), every view is rebuilt from
    /// the current table contents so view state stays equivalent to a full
    /// recompute, and the error is surfaced with that context.
    fn maintain_views(&mut self, table: &str, deltas: &[Delta]) -> Result<()> {
        if deltas.is_empty() || !self.views.reads(table) {
            return Ok(());
        }
        if let Err(e) = self.views.on_base_change(table, deltas, &self.store, &self.registry) {
            return Err(match self.views.rebuild_all(&self.store, &self.registry) {
                Ok(()) => RexError::Exec(format!(
                    "view maintenance failed (all views rebuilt from current tables): {e}"
                )),
                Err(r) => RexError::Exec(format!(
                    "view maintenance failed ({e}) and the consistency rebuild also failed \
                     ({r}); view contents may diverge from their base tables"
                )),
            });
        }
        Ok(())
    }

    /// The stored-table catalog (shared with the engines).
    pub fn store(&self) -> &Catalog {
        &self.store
    }

    // ---- user code -------------------------------------------------------

    /// Register a scalar UDF.
    pub fn register_scalar(&mut self, udf: Arc<dyn ScalarUdf>) {
        self.registry.register_scalar(udf);
    }

    /// Register a user-defined aggregate (UDA).
    pub fn register_aggregate(&mut self, name: &str, h: Arc<dyn AggHandler>) {
        self.registry.register_agg(name, h);
    }

    /// Register a join delta handler (Listing 1's `PRAgg` and friends).
    pub fn register_join(&mut self, name: &str, h: Arc<dyn JoinHandler>) {
        self.registry.register_join(name, h);
    }

    /// Register a while/fixpoint delta handler.
    pub fn register_handler(&mut self, name: &str, h: Arc<dyn WhileHandler>) {
        self.registry.register_while(name, h);
    }

    /// The registry (for advanced registration paths).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    // ---- queries ---------------------------------------------------------

    /// Parse and plan `rql` without executing it: the logical plan as the
    /// optimizer will see it (for `CREATE MATERIALIZED VIEW`, the plan of
    /// the defining query).
    pub fn plan(&self, rql: &str) -> Result<LogicalPlan> {
        Ok(rex_rql::plan_rql(rql, &self.schemas, &self.registry)?)
    }

    /// Run an RQL statement. Queries go through the full pipeline — parse
    /// → resolve → optimize → lower → execute — on the session's engine;
    /// DDL (`CREATE TABLE`, `CREATE MATERIALIZED VIEW`, `DROP VIEW`,
    /// `DROP TABLE`) is executed against the session's catalogs and
    /// returns an empty row set. A query that scans a view name reads its
    /// materialized state — no recomputation of the defining query.
    ///
    /// Result rows come back sorted — unless the query has a top-level
    /// `ORDER BY`, in which case they come back in that order (ties
    /// resolved by full-row comparison, identically on every engine).
    pub fn query(&mut self, rql: &str) -> Result<QueryResult> {
        let stmt = rex_rql::parse(rql).map_err(|e| RqlError::at(RqlStage::Parse, e))?;
        match stmt {
            Statement::Query(_) => {
                let logical = rex_rql::logical::plan(&stmt, &self.schemas, &self.registry)
                    .map_err(|e| RqlError::at(RqlStage::Plan, e))?;
                // Fast path: a bare scan of a materialized view is served
                // straight from authoritative view state — no store sync,
                // no optimizer pass, no engine execution. Serving cost is
                // one clone of the merge-maintained sorted cache.
                if let Some(table) = bare_scan_target(&logical) {
                    if let Some(rows) = self.views.serve_rows(table) {
                        return Ok(QueryResult {
                            cost: PlanCost {
                                rows: rows.len() as u64,
                                resources: ResourceVector::default(),
                            },
                            rows,
                            report: QueryReport::default(),
                            cluster: None,
                            engine: "view-state".to_string(),
                            trace: None,
                        });
                    }
                }
                self.views.sync(&self.store)?;
                self.refresh_stats();
                // The same read pipeline every published SnapshotView
                // runs: optimize → execute → presentation order.
                let t0 = Instant::now();
                let r = run_read_query(
                    logical,
                    &self.optimizer,
                    self.engine.as_ref(),
                    &self.store,
                    &self.registry,
                    self.telemetry,
                    self.threads,
                )?;
                self.note_query(rql, t0.elapsed(), r.rows.len());
                Ok(r)
            }
            Statement::CreateTable { name, columns } => {
                let schema =
                    Schema::new(columns.into_iter().map(|(n, t)| Field::new(n, t)).collect());
                self.create_table(&name, schema)?;
                Ok(self.ddl_result(zero_cost()))
            }
            Statement::CreateView { name, query } => {
                let cost = self.define_view(&name, rql, &query)?;
                Ok(self.ddl_result(cost))
            }
            Statement::DropView { name } => {
                self.drop_view(&name)?;
                Ok(self.ddl_result(zero_cost()))
            }
            Statement::DropTable { name } => {
                self.drop_table(&name)?;
                Ok(self.ddl_result(zero_cost()))
            }
            Statement::Explain { analyze, inner } => {
                if inner.is_ddl() {
                    if analyze {
                        return Err(RexError::Plan(
                            "EXPLAIN ANALYZE requires a query (DDL has nothing to execute)".into(),
                        ));
                    }
                    // Plain EXPLAIN of DDL: the catalog-action rendering
                    // `Session::explain` produces, as text rows.
                    let text = self.explain_stmt(&inner, rql)?;
                    let mut r = self.ddl_result(zero_cost());
                    r.rows = text_rows(&text);
                    return Ok(r);
                }
                let logical = rex_rql::logical::plan(&inner, &self.schemas, &self.registry)
                    .map_err(|e| RqlError::at(RqlStage::Plan, e))?;
                self.views.sync(&self.store)?;
                self.refresh_stats();
                if analyze {
                    let t0 = Instant::now();
                    let r = run_explain_analyze(
                        logical,
                        &self.optimizer,
                        self.engine.as_ref(),
                        &self.store,
                        &self.registry,
                        self.threads,
                    )?;
                    self.note_query(
                        rql,
                        t0.elapsed(),
                        r.trace.as_ref().map_or(0, |t| t.sink_rows() as usize),
                    );
                    return Ok(r);
                }
                crate::snapshot::explain_result(logical, &self.optimizer, self.engine.name())
            }
        }
    }

    /// EXPLAIN: the logical plan, the optimizer's rewrite, and its cost
    /// estimate, without executing. For `CREATE MATERIALIZED VIEW`, also
    /// the maintenance strategy the view would be created with; for an
    /// existing view, `explain("SELECT ... FROM <view>")` shows the scan
    /// of materialized state.
    pub fn explain(&mut self, rql: &str) -> Result<String> {
        let stmt = rex_rql::parse(rql).map_err(|e| RqlError::at(RqlStage::Parse, e))?;
        self.explain_stmt(&stmt, rql)
    }

    /// The body of [`explain`](Self::explain), shared with the
    /// `EXPLAIN <ddl>` statement path.
    fn explain_stmt(&mut self, stmt: &Statement, rql: &str) -> Result<String> {
        // Explaining an EXPLAIN explains the wrapped statement.
        if let Statement::Explain { inner, .. } = stmt {
            return self.explain_stmt(inner, rql);
        }
        // Catalog-only DDL has no dataflow plan: explain it as the
        // catalog action it is.
        match &stmt {
            Statement::CreateTable { name, columns } => {
                let cols: Vec<String> = columns.iter().map(|(n, t)| format!("{n} {t}")).collect();
                return Ok(format!(
                    "== ddl ==\nCREATE TABLE {name} ({}): registers an empty stored table \
                     partitioned on its first column\n",
                    cols.join(", ")
                ));
            }
            Statement::DropView { name } => {
                return Ok(format!(
                    "== ddl ==\nDROP VIEW {name}: removes the materialized view and its stored \
                     copy (refused while other views read it)\n"
                ));
            }
            Statement::DropTable { name } => {
                return Ok(format!(
                    "== ddl ==\nDROP TABLE {name}: removes the stored table (refused while \
                     materialized views read it)\n"
                ));
            }
            _ => {}
        }
        let (logical, maintenance) = match &stmt {
            Statement::CreateView { name, query } => {
                let plan = self.plan_view_query(query)?;
                let probe =
                    MaterializedView::define(name.as_str(), rql, plan.clone(), &self.registry);
                let mut m = format!("== maintenance ==\n{}: {}\n", probe.name(), probe.strategy());
                // For incremental plans, say how each group-by maintains
                // its aggregates (O(1) scalars vs dirty-group replay).
                for s in probe.agg_strategies() {
                    m.push_str("  ");
                    m.push_str(&s);
                    m.push('\n');
                }
                (plan, Some(m))
            }
            _ => (
                rex_rql::logical::plan(stmt, &self.schemas, &self.registry)
                    .map_err(|e| RqlError::at(RqlStage::Plan, e))?,
                None,
            ),
        };
        self.views.sync(&self.store)?;
        self.refresh_stats();
        let before = logical.explain();
        let (optimized, cost) = self.optimizer.optimize(logical)?;
        Ok(format!(
            "== logical ==\n{before}== optimized ==\n{}== estimate ==\nruntime {:.3} units, {} rows\n{}{}",
            optimized.explain(),
            cost.runtime(),
            cost.rows,
            maintenance.unwrap_or_default(),
            self.render_view_metrics(),
        ))
    }

    /// The `== view metrics ==` section of EXPLAIN output: one line per
    /// materialized view with its cumulative maintenance counters, plus
    /// the catalog's total sync volume. Empty when no views exist.
    fn render_view_metrics(&self) -> String {
        if self.views.is_empty() {
            return String::new();
        }
        let mut out = String::from("== view metrics ==\n");
        for m in self.views.metrics() {
            out.push_str(&format!(
                "{} [{}]: rows={} deltas_in={} deltas_out={} passes={} recomputes={} \
                 replayed_groups={} maint_time={} state_bytes={}\n",
                m.name,
                m.strategy,
                m.rows,
                m.deltas_in,
                m.deltas_out,
                m.incremental_passes,
                m.recomputes,
                m.replayed_groups,
                rex_core::telemetry::fmt_ns(m.maint_ns),
                m.state_bytes,
            ));
        }
        out.push_str(&format!("sync_bytes={}\n", self.views.sync_bytes()));
        out
    }

    /// Per-view maintenance counters, in creation order (what the
    /// `== view metrics ==` EXPLAIN section renders).
    pub fn view_metrics(&self) -> Vec<rex_views::ViewMetrics> {
        self.views.metrics()
    }

    // ---- materialized views ----------------------------------------------

    /// Create a materialized view named `name` over an RQL query —
    /// the programmatic form of `CREATE MATERIALIZED VIEW name AS query`.
    /// The view is populated immediately and maintained on every
    /// [`insert`](Self::insert)/[`delete`](Self::delete) to its base
    /// tables; its maintenance strategy (incremental delta propagation vs
    /// full recompute for recursive shapes) is chosen automatically.
    pub fn create_materialized_view(&mut self, name: &str, query: &str) -> Result<()> {
        let stmt = rex_rql::parse(query).map_err(|e| RqlError::at(RqlStage::Parse, e))?;
        let Statement::Query(q) = stmt else {
            return Err(RexError::Plan(format!(
                "view {name}: the defining statement must be a query"
            )));
        };
        let sql = format!("CREATE MATERIALIZED VIEW {name} AS {query}");
        self.define_view(name, &sql, &q)?;
        Ok(())
    }

    /// Drop a materialized view (refused while other views read it).
    pub fn drop_view(&mut self, name: &str) -> Result<()> {
        self.views.drop_view(name, &self.store)?;
        self.schemas.remove(name);
        self.version += 1;
        Ok(())
    }

    /// Names of all materialized views, in creation order.
    pub fn view_names(&self) -> Vec<String> {
        self.views.names()
    }

    /// A view's maintenance strategy, rendered ("incremental delta
    /// propagation" / "full recompute (reason)").
    pub fn view_strategy(&self, name: &str) -> Result<String> {
        self.views
            .get(name)
            .map(|v| v.strategy().to_string())
            .ok_or_else(|| RexError::Storage(format!("unknown view: {name}")))
    }

    /// The view catalog (dependency and state inspection).
    pub fn views(&self) -> &ViewCatalog {
        &self.views
    }

    /// Plan a view's defining query, rejecting shapes views can't serve.
    /// `ORDER BY`/`LIMIT` are query-only: a materialized view is an
    /// unordered relation maintained by deltas, so an ordered definition
    /// is refused outright rather than silently losing its order (or
    /// silently degrading to recompute-on-every-change).
    fn plan_view_query(&self, query: &Query) -> Result<LogicalPlan> {
        let stmt = Statement::Query(query.clone());
        let plan = rex_rql::logical::plan(&stmt, &self.schemas, &self.registry)
            .map_err(|e| RexError::from(RqlError::at(RqlStage::Plan, e)))?;
        if plan.has_order_or_limit() {
            return Err(RexError::from(RqlError::at(
                RqlStage::Plan,
                RexError::Plan(
                    "ORDER BY/LIMIT are not view-definable: a materialized view is an \
                     unordered relation — apply ordering in queries over the view"
                        .into(),
                ),
            )));
        }
        Ok(plan)
    }

    /// Shared view-creation path for DDL and the programmatic API.
    /// Returns the optimizer's estimate for the initial materialization.
    fn define_view(&mut self, name: &str, sql: &str, query: &Query) -> Result<PlanCost> {
        if self.schemas.contains(name) || self.store.contains(name) {
            return Err(RexError::Storage(format!("table or view {name} already exists")));
        }
        let plan = self.plan_view_query(query)?;
        self.refresh_stats();
        let (_, cost) = self.optimizer.optimize(plan.clone())?;
        let view = MaterializedView::define_partitioned(
            name,
            sql,
            plan,
            &self.registry,
            self.views.partitions(),
            self.views.recovery(),
        );
        let schema = view.schema().clone();
        self.views.create(view, &self.store, &self.registry)?;
        self.schemas.register(name, schema);
        self.version += 1;
        Ok(cost)
    }

    /// The uniform result shape for DDL statements.
    fn ddl_result(&self, cost: PlanCost) -> QueryResult {
        QueryResult {
            rows: Vec::new(),
            report: QueryReport::default(),
            cluster: None,
            cost,
            engine: self.engine.name().to_string(),
            trace: None,
        }
    }

    /// Feed current table cardinalities to the optimizer so its estimates
    /// track the data the engines will actually scan. Views are stored
    /// tables here too, so view scans are costed from real cardinalities.
    fn refresh_stats(&mut self) {
        for name in self.store.table_names() {
            if let Ok(t) = self.store.get(&name) {
                self.optimizer.stats.set_table_rows(name, t.len() as u64);
            }
        }
    }
}

/// The no-work cost estimate attached to catalog-only DDL results.
fn zero_cost() -> PlanCost {
    PlanCost { rows: 0, resources: ResourceVector::default() }
}

/// The `REX_TELEMETRY` toggle: any value but `0` or empty enables
/// per-query tracing in every session the process constructs.
fn env_telemetry() -> bool {
    std::env::var("REX_TELEMETRY").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

/// The default per-query thread ceiling: `REX_THREADS` when set to a
/// positive integer, else the host's available parallelism.
fn env_threads() -> usize {
    std::env::var("REX_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// If `plan` is a bare scan of one relation — `SELECT * FROM t`, i.e. a
/// `Scan` or an identity projection over one — the scanned table's name.
/// This is what the view-serving fast path keys on.
fn bare_scan_target(plan: &LogicalPlan) -> Option<&str> {
    match plan {
        LogicalPlan::Scan { table, .. } => Some(table),
        LogicalPlan::Project { input, exprs, .. } => match input.as_ref() {
            LogicalPlan::Scan { table, schema } if exprs.len() == schema.arity() => {
                let identity = exprs
                    .iter()
                    .enumerate()
                    .all(|(i, e)| matches!(e, rex_core::expr::Expr::Col(j) if *j == i));
                identity.then_some(table.as_str())
            }
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::tuple;
    use rex_core::value::DataType;

    fn edge_session(engine: &str) -> Session {
        let mut s = match engine {
            "cluster" => Session::cluster(3),
            _ => Session::local(),
        };
        s.create_table("edges", Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)]))
            .unwrap();
        s.insert(
            "edges",
            vec![tuple![0i64, 1i64], tuple![1i64, 2i64], tuple![2i64, 3i64], tuple![0i64, 2i64]],
        )
        .unwrap();
        s
    }

    #[test]
    fn select_runs_on_both_engines_with_cost_estimate() {
        for engine in ["local", "cluster"] {
            let mut s = edge_session(engine);
            let r = s.query("SELECT dst FROM edges WHERE src = 0").unwrap();
            assert_eq!(r.rows, vec![tuple![1i64], tuple![2i64]], "{engine}");
            assert_eq!(r.engine, engine);
            assert!(r.cost.runtime() > 0.0, "optimizer must cost the plan");
        }
    }

    #[test]
    fn recursive_query_agrees_across_engines() {
        let run = |engine: &str| {
            let mut s = edge_session(engine);
            s.create_table("seed", Schema::of(&[("id", DataType::Int)])).unwrap();
            s.insert("seed", vec![tuple![0i64]]).unwrap();
            s.query(
                "WITH reach (id) AS (SELECT id FROM seed)
                 UNION UNTIL FIXPOINT BY id (
                   SELECT edges.dst FROM edges, reach WHERE edges.src = reach.id)",
            )
            .unwrap()
        };
        let local = run("local");
        let cluster = run("cluster");
        assert_eq!(local.rows, cluster.rows);
        assert_eq!(local.rows.len(), 4);
        assert!(cluster.cluster.is_some(), "cluster run carries worker stats");
        assert!(local.cluster.is_none());
        assert_eq!(*local.delta_sizes().last().unwrap(), 0, "converged");
    }

    #[test]
    fn insert_validates_and_accumulates() {
        let mut s = edge_session("local");
        assert_eq!(s.table_rows("edges").unwrap(), 4);
        s.insert("edges", vec![tuple![3i64, 0i64]]).unwrap();
        assert_eq!(s.table_rows("edges").unwrap(), 5);
        // Wrong arity is rejected and leaves the table unchanged.
        assert!(s.insert("edges", vec![tuple![1i64]]).is_err());
        assert_eq!(s.table_rows("edges").unwrap(), 5);
    }

    #[test]
    fn duplicate_table_is_rejected() {
        let mut s = edge_session("local");
        let err = s.create_table("edges", Schema::of(&[("x", DataType::Int)])).unwrap_err();
        assert!(err.to_string().contains("already exists"));
    }

    #[test]
    fn bad_partition_column_is_rejected() {
        let mut s = Session::local();
        let err = s
            .create_table_partitioned("t", Schema::of(&[("x", DataType::Int)]), vec![3])
            .unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn parse_and_plan_errors_convert_cleanly() {
        let mut s = edge_session("local");
        assert!(matches!(s.query("SELEKT zzz"), Err(RexError::Parse { .. })));
        assert!(matches!(s.query("SELECT x FROM missing"), Err(RexError::Plan(_))));
    }

    #[test]
    fn explain_shows_both_plans_and_estimate() {
        let mut s = edge_session("local");
        let txt = s.explain("SELECT src, count(*) FROM edges WHERE dst > 1 GROUP BY src").unwrap();
        assert!(txt.contains("== logical =="));
        assert!(txt.contains("== optimized =="));
        assert!(txt.contains("Aggregate"));
        assert!(txt.contains("runtime"));
    }

    #[test]
    fn engine_swap_keeps_tables_and_handlers() {
        let mut s = edge_session("local");
        let local_rows = s.query("SELECT src, count(*) FROM edges GROUP BY src").unwrap().rows;
        s.set_engine(Box::new(ClusterEngine::new(4)));
        assert_eq!(s.engine_name(), "cluster");
        let cluster_rows = s.query("SELECT src, count(*) FROM edges GROUP BY src").unwrap().rows;
        assert_eq!(local_rows, cluster_rows);
    }

    #[test]
    fn create_view_query_and_maintain() {
        for engine in ["local", "cluster"] {
            let mut s = edge_session(engine);
            let r = s
                .query("CREATE MATERIALIZED VIEW fanout AS SELECT src, count(*) FROM edges GROUP BY src")
                .unwrap();
            assert!(r.rows.is_empty());
            assert!(r.cost.runtime() > 0.0, "creation is costed as the initial materialization");
            // The view answers scans from materialized state on any engine.
            let rows = s.query("SELECT src FROM fanout WHERE count > 1").unwrap().rows;
            assert_eq!(rows, vec![tuple![0i64]], "{engine}");
            // Inserts maintain the view; deletes retract.
            s.insert("edges", vec![tuple![1i64, 9i64]]).unwrap();
            let rows = s.query("SELECT src FROM fanout WHERE count > 1").unwrap().rows;
            assert_eq!(rows, vec![tuple![0i64], tuple![1i64]], "{engine}");
            s.delete("edges", vec![tuple![1i64, 9i64], tuple![1i64, 2i64]]).unwrap();
            let rows = s.query("SELECT src, count FROM fanout").unwrap().rows;
            assert_eq!(rows, vec![tuple![0i64, 2i64], tuple![2i64, 1i64]], "{engine}");
        }
    }

    #[test]
    fn bare_view_scans_are_served_from_view_state() {
        let mut s = edge_session("local");
        s.create_materialized_view("fanout", "SELECT src, count(*) FROM edges GROUP BY src")
            .unwrap();
        let r = s.query("SELECT * FROM fanout").unwrap();
        assert_eq!(r.engine, "view-state", "bare scans skip the engine");
        assert_eq!(r.rows, vec![tuple![0i64, 2i64], tuple![1i64, 1i64], tuple![2i64, 1i64]]);
        assert_eq!(r.cost.rows as usize, r.rows.len());
        // Maintenance keeps the served rows (and the merge-maintained
        // sorted cache) fresh.
        s.insert("edges", vec![tuple![1i64, 9i64], tuple![5i64, 0i64]]).unwrap();
        s.delete("edges", vec![tuple![0i64, 1i64]]).unwrap();
        let fast = s.query("SELECT * FROM fanout").unwrap();
        // Oracle: the same rows through the full engine pipeline.
        let slow = s.query("SELECT src, count FROM fanout WHERE src >= 0").unwrap();
        assert_eq!(slow.engine, "local", "non-bare scans still run on the engine");
        assert_eq!(fast.rows, slow.rows);
        // A bare scan of a *table* is not intercepted.
        let t = s.query("SELECT * FROM edges").unwrap();
        assert_eq!(t.engine, "local");
    }

    #[test]
    fn drop_table_is_typed_and_respects_view_dependencies() {
        let mut s = edge_session("local");
        let err = s.drop_table("missing").unwrap_err();
        assert!(err.to_string().contains("unknown table"));
        s.create_materialized_view("v", "SELECT src FROM edges WHERE dst > 1").unwrap();
        let err = s.drop_table("edges").unwrap_err();
        assert!(err.to_string().contains("depend on it"));
        let err = s.drop_table("v").unwrap_err();
        assert!(err.to_string().contains("use DROP VIEW"));
        assert!(matches!(s.insert("v", vec![tuple![1i64]]), Err(RexError::Storage(_))));
        s.query("DROP VIEW v").unwrap();
        s.query("DROP TABLE edges").unwrap();
        assert!(s.query("SELECT src FROM edges").is_err(), "schema is unregistered too");
    }

    #[test]
    fn explain_shows_maintenance_strategy() {
        let mut s = edge_session("local");
        let txt = s
            .explain("CREATE MATERIALIZED VIEW agg AS SELECT src, sum(dst) FROM edges GROUP BY src")
            .unwrap();
        assert!(txt.contains("== maintenance =="));
        assert!(txt.contains("incremental delta propagation"));
        assert!(txt.contains("sum: O(1) running sum"), "explain names the aggregate strategy");
        let txt = s
            .explain(
                "CREATE MATERIALIZED VIEW reach AS
                 WITH R (id) AS (SELECT src FROM edges WHERE src = 0)
                 UNION UNTIL FIXPOINT BY id (
                   SELECT edges.dst FROM edges, R WHERE edges.src = R.id)",
            )
            .unwrap();
        assert!(txt.contains("full recompute"));
        assert!(txt.contains("recursive fixpoint"));
        assert!(s.view_names().is_empty(), "explain must not create the view");
    }

    #[test]
    fn delete_where_evaluates_predicates() {
        let mut s = edge_session("local");
        assert_eq!(s.delete_where("edges", "src = 0 AND dst > 1").unwrap(), 1);
        assert_eq!(s.table_rows("edges").unwrap(), 3);
        // Whole-batch validation: deleting a missing row is refused.
        let err = s.delete("edges", vec![tuple![42i64, 42i64]]).unwrap_err();
        assert!(err.to_string().contains("only 0 stored"));
        assert_eq!(s.table_rows("edges").unwrap(), 3);
    }

    #[test]
    fn recursive_view_recomputes_on_change() {
        let mut s = edge_session("local");
        s.query(
            "CREATE MATERIALIZED VIEW reach AS
             WITH R (id) AS (SELECT src FROM edges WHERE src = 0)
             UNION UNTIL FIXPOINT BY id (
               SELECT edges.dst FROM edges, R WHERE edges.src = R.id)",
        )
        .unwrap();
        assert!(s.view_strategy("reach").unwrap().contains("full recompute"));
        assert_eq!(s.table_rows("reach").unwrap(), 4);
        s.insert("edges", vec![tuple![3i64, 7i64]]).unwrap();
        let rows = s.query("SELECT id FROM reach").unwrap().rows;
        assert_eq!(
            rows,
            vec![tuple![0i64], tuple![1i64], tuple![2i64], tuple![3i64], tuple![7i64]]
        );
    }

    #[test]
    fn mixed_case_views_and_tables_drop_cleanly() {
        let mut s = edge_session("local");
        // Mixed-case view: drop via lowercase DDL, then re-create.
        s.create_materialized_view("Hot", "SELECT src FROM edges WHERE dst > 1").unwrap();
        s.query("DROP VIEW hot").unwrap();
        s.create_materialized_view("Hot", "SELECT src FROM edges WHERE dst > 1")
            .expect("stale schema must not block re-creation");
        s.query("DROP VIEW HOT").unwrap();
        // Mixed-case table: same story.
        s.create_table("Tmp", Schema::of(&[("x", DataType::Int)])).unwrap();
        s.drop_table("tmp").unwrap();
        s.create_table("Tmp", Schema::of(&[("x", DataType::Int)]))
            .expect("stale schema must not block re-creation");
    }

    #[test]
    fn view_scans_are_costed_from_materialized_cardinality() {
        let mut s = edge_session("local");
        s.create_materialized_view("fanout", "SELECT src, count(*) FROM edges GROUP BY src")
            .unwrap();
        let r = s.query("SELECT src FROM fanout").unwrap();
        assert_eq!(r.cost.rows as usize, r.rows.len(), "stats see the view's true row count");
    }

    #[test]
    fn global_aggregate_is_one_row_on_cluster() {
        let mut s = edge_session("cluster");
        let r = s.query("SELECT sum(dst), count(*) FROM edges").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].get(1).as_int(), Some(4));
    }

    #[test]
    fn create_table_ddl_registers_a_table() {
        for engine in ["local", "cluster"] {
            let mut s = edge_session(engine);
            let r = s.query("CREATE TABLE scores (name string, score double)").unwrap();
            assert!(r.rows.is_empty());
            use rex_core::value::Value;
            s.insert(
                "scores",
                vec![
                    Tuple::new(vec![Value::str("ada"), Value::Double(1.5)]),
                    Tuple::new(vec![Value::str("alan"), Value::Double(0.5)]),
                ],
            )
            .unwrap();
            let rows = s.query("SELECT name FROM scores WHERE score > 1").unwrap().rows;
            assert_eq!(rows.len(), 1, "{engine}");
            // Duplicate creation fails; DDL explain names the action.
            assert!(s.query("CREATE TABLE scores (x int)").is_err());
            let txt = s.explain("CREATE TABLE other (x int, y double)").unwrap();
            assert!(txt.contains("CREATE TABLE other"), "{txt}");
            assert!(s.view_names().is_empty() && !s.store().contains("other"), "explain is dry");
        }
    }

    #[test]
    fn order_by_returns_rows_in_presentation_order() {
        for engine in ["local", "cluster"] {
            let mut s = edge_session(engine);
            let r = s.query("SELECT src, dst FROM edges ORDER BY dst DESC, src LIMIT 3").unwrap();
            assert_eq!(
                r.rows,
                vec![tuple![2i64, 3i64], tuple![0i64, 2i64], tuple![1i64, 2i64]],
                "{engine}: descending dst, ties by src"
            );
            // OFFSET past the end is empty; LIMIT larger than the table
            // returns everything (in order).
            assert!(s
                .query("SELECT src FROM edges ORDER BY src LIMIT 2 OFFSET 9")
                .unwrap()
                .rows
                .is_empty());
            let all = s.query("SELECT dst FROM edges ORDER BY dst DESC LIMIT 99").unwrap().rows;
            assert_eq!(all, vec![tuple![3i64], tuple![2i64], tuple![2i64], tuple![1i64]]);
        }
    }

    #[test]
    fn distinct_having_and_expression_aggregates_run_end_to_end() {
        for engine in ["local", "cluster"] {
            let mut s = edge_session(engine);
            let d = s.query("SELECT DISTINCT src FROM edges").unwrap().rows;
            assert_eq!(d, vec![tuple![0i64], tuple![1i64], tuple![2i64]], "{engine}");
            let h = s
                .query("SELECT src, count(*) FROM edges GROUP BY src HAVING count(*) > 1")
                .unwrap()
                .rows;
            assert_eq!(h, vec![tuple![0i64, 2i64]], "{engine}");
            let e = s.query("SELECT src, sum(dst * dst) FROM edges GROUP BY src").unwrap().rows;
            assert_eq!(
                e,
                vec![tuple![0i64, 5.0f64], tuple![1i64, 4.0f64], tuple![2i64, 9.0f64]],
                "{engine}"
            );
        }
    }

    #[test]
    fn ordered_view_definitions_are_rejected() {
        let mut s = edge_session("local");
        for sql in [
            "CREATE MATERIALIZED VIEW v AS SELECT src FROM edges ORDER BY src",
            "CREATE MATERIALIZED VIEW v AS SELECT src FROM edges LIMIT 3",
        ] {
            let err = s.query(sql).unwrap_err();
            assert!(matches!(err, RexError::Plan(_)), "{sql}: {err:?}");
            assert!(err.to_string().contains("not view-definable"), "{err}");
        }
        assert!(s.view_names().is_empty());
        // The programmatic API refuses identically.
        let err =
            s.create_materialized_view("v", "SELECT src FROM edges ORDER BY src").unwrap_err();
        assert!(err.to_string().contains("not view-definable"));
    }

    #[test]
    fn distinct_and_having_views_maintain_incrementally() {
        let mut s = edge_session("local");
        s.create_materialized_view("targets", "SELECT DISTINCT dst FROM edges").unwrap();
        s.create_materialized_view(
            "fanned",
            "SELECT src, count(*) FROM edges GROUP BY src HAVING count(*) > 1",
        )
        .unwrap();
        assert!(s.view_strategy("targets").unwrap().contains("incremental"));
        assert!(s.view_strategy("fanned").unwrap().contains("incremental"));
        s.insert("edges", vec![tuple![1i64, 3i64], tuple![1i64, 2i64]]).unwrap();
        s.delete("edges", vec![tuple![0i64, 1i64]]).unwrap();
        assert_eq!(
            s.query("SELECT * FROM targets").unwrap().rows,
            vec![tuple![2i64], tuple![3i64]]
        );
        assert_eq!(
            s.query("SELECT * FROM fanned").unwrap().rows,
            vec![tuple![1i64, 3i64]],
            "src=0 dropped to one edge; src=1 rose to three"
        );
        // Incremental means never a recompute pass.
        assert_eq!(s.views().get("targets").unwrap().recomputes(), 0);
        assert_eq!(s.views().get("fanned").unwrap().recomputes(), 0);
    }
}
