//! Execution engines: where a [`Session`](crate::session::Session) runs
//! optimized plans.
//!
//! # The `Engine` contract
//!
//! An [`Engine`] turns one optimizer-produced [`LogicalPlan`] into rows
//! plus an execution report. Implementations must:
//!
//! 1. **Read tables only through the context.** The
//!    [`EngineContext`] carries the session's stored-table
//!    [`Catalog`] and UDF/UDA [`Registry`]; an engine must not cache table
//!    contents across `execute` calls — the session may have inserted rows
//!    in between.
//! 2. **Return the *complete* result.** `rows` is the full materialized
//!    query answer, not a partition of it; a distributed engine unions its
//!    workers' sinks before returning (sorted, so engines agree
//!    bit-for-bit on set-semantics results).
//! 3. **Report faithfully.** [`EngineOutput::report`] carries the
//!    per-stratum trace in [`QueryReport`] form regardless of topology;
//!    cluster-only accounting (per-worker metrics, failures, checkpoint
//!    volume) rides in [`EngineOutput::cluster`]. `iterations()` on the
//!    report must equal the number of executed strata.
//! 4. **Fail with engine errors.** Errors surface as
//!    [`RexError`](rex_core::error::RexError); an engine maps its own
//!    error type in via `From`, never by formatting ad-hoc strings.
//!
//! Future backends (sharded stores, async pipelines, remote clusters —
//! see ROADMAP.md) plug in by implementing this trait; `Session` code and
//! user queries do not change.

use rex_cluster::failure::FailureEvent;
use rex_cluster::runtime::{ClusterConfig, ClusterRuntime};
use rex_core::error::Result;
use rex_core::exec::LocalRuntime;
use rex_core::metrics::{ExecMetrics, QueryReport};
use rex_core::telemetry::ExecTrace;
use rex_core::thread_budget;
use rex_core::tuple::Tuple;
use rex_core::udf::Registry;
use rex_rql::logical::LogicalPlan;
use rex_rql::lower::{lower, lower_parallel, LowerOptions};
use rex_rql::provider::CatalogProvider;
use rex_rql::{RqlError, RqlStage};
use rex_storage::catalog::Catalog;

/// What an engine needs from the session to run a query: the stored
/// tables and the user code registered for the query's lifetime.
pub struct EngineContext<'a> {
    /// The session's stored tables.
    pub store: &'a Catalog,
    /// The session's UDF/UDA/handler registry.
    pub registry: &'a Registry,
    /// Collect a per-operator [`ExecTrace`] for this query (the engine
    /// returns it in [`EngineOutput::trace`]).
    pub telemetry: bool,
    /// Thread budget for this query: how many OS threads the engine may
    /// use in total (1 = single-threaded, the historical behavior). The
    /// engine treats this as a ceiling, not a promise — plans that cannot
    /// parallelize safely run on one thread, and the process-wide
    /// [`thread_budget`] may cap the extra
    /// threads actually spawned.
    pub threads: usize,
}

/// Cluster-level accounting attached to a result when the query ran
/// distributed.
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// Workers at query start.
    pub n_workers: usize,
    /// Final metrics per worker.
    pub per_worker: Vec<ExecMetrics>,
    /// Failures injected/recovered during the run.
    pub failures: Vec<FailureEvent>,
    /// Bytes replicated for incremental checkpoints.
    pub checkpoint_bytes: u64,
    /// Boundary-crossing bytes moved by key-partitioned rehash boundaries.
    pub rehash_bytes: u64,
    /// Boundary-crossing bytes replicated by broadcast boundaries.
    pub broadcast_bytes: u64,
    /// Boundary-crossing bytes funneled through gather boundaries.
    pub gather_bytes: u64,
    /// Rows the router delivered into each worker (self-delivery included).
    pub rows_routed: Vec<u64>,
}

/// An engine's answer: rows plus the unified execution report.
pub struct EngineOutput {
    /// The complete materialized result.
    pub rows: Vec<Tuple>,
    /// Per-stratum trace and totals (all topologies).
    pub report: QueryReport,
    /// Cluster-only accounting, when the query ran distributed.
    pub cluster: Option<ClusterStats>,
    /// Measured per-operator trace, when the context asked for telemetry
    /// (merged across workers for distributed runs).
    pub trace: Option<ExecTrace>,
}

/// An execution backend for optimized logical plans. See the module docs
/// for the implementation contract.
pub trait Engine: Send + Sync {
    /// A short, stable name for reports and diagnostics ("local",
    /// "cluster", ...).
    fn name(&self) -> &str;

    /// Execute `plan` against the session's tables and registry.
    fn execute(&self, plan: &LogicalPlan, ctx: &EngineContext<'_>) -> Result<EngineOutput>;
}

/// Single-node execution on [`LocalRuntime`]: plans lower against whole
/// stored tables and run in-process.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalEngine;

impl LocalEngine {
    /// The local engine.
    pub fn new() -> LocalEngine {
        LocalEngine
    }
}

impl Engine for LocalEngine {
    fn name(&self) -> &str {
        "local"
    }

    fn execute(&self, plan: &LogicalPlan, ctx: &EngineContext<'_>) -> Result<EngineOutput> {
        let provider = CatalogProvider::new(ctx.store.clone());
        // Morsel-driven parallel path: when the context grants threads
        // and the plan parallelizes safely, lower one plan copy per
        // thread and run them over shared snapshots. Extra threads are
        // leased from the process-wide budget so concurrent queries
        // (e.g. server readers) cannot oversubscribe the host.
        if ctx.threads > 1 {
            let extra = thread_budget::try_acquire(ctx.threads - 1);
            if extra > 0 {
                let lowered = lower_parallel(
                    plan,
                    &provider,
                    ctx.registry,
                    LowerOptions::default(),
                    1 + extra,
                );
                let run = match lowered {
                    Ok(Some(graphs)) => {
                        let rt = LocalRuntime::with_registry(ctx.registry.clone())
                            .with_telemetry(ctx.telemetry);
                        Some(rt.run_partitioned(graphs))
                    }
                    Ok(None) => None,
                    Err(e) => {
                        thread_budget::release(extra);
                        return Err(RqlError::at(RqlStage::Lower, e).into());
                    }
                };
                thread_budget::release(extra);
                if let Some(res) = run {
                    let (rows, report, trace) = res?;
                    return Ok(EngineOutput { rows, report, cluster: None, trace });
                }
            }
        }
        let graph =
            lower(plan, &provider, ctx.registry).map_err(|e| RqlError::at(RqlStage::Lower, e))?;
        let rt = LocalRuntime::with_registry(ctx.registry.clone()).with_telemetry(ctx.telemetry);
        // The runtime's sink already returns rows in sorted order (the
        // engine agreement contract) — no second sort here.
        let (rows, report, trace) = rt.run_traced(graph)?;
        Ok(EngineOutput { rows, report, cluster: None, trace })
    }
}

/// Distributed execution on [`ClusterRuntime`]: the optimized plan is
/// lowered once per worker against that worker's partition snapshot, and
/// the simulated cluster coordinates strata, routing, and recovery.
#[derive(Clone)]
pub struct ClusterEngine {
    config: ClusterConfig,
}

impl ClusterEngine {
    /// An engine over `n` workers with default replication and costs.
    pub fn new(n_workers: usize) -> ClusterEngine {
        ClusterEngine { config: ClusterConfig::new(n_workers) }
    }

    /// An engine with an explicit cluster configuration (failure plans,
    /// recovery strategy, cost model). The configured registry is
    /// replaced by the session's at query time.
    pub fn with_config(config: ClusterConfig) -> ClusterEngine {
        ClusterEngine { config }
    }

    /// The number of workers this engine runs.
    pub fn n_workers(&self) -> usize {
        self.config.n_workers
    }
}

impl Engine for ClusterEngine {
    fn name(&self) -> &str {
        "cluster"
    }

    fn execute(&self, plan: &LogicalPlan, ctx: &EngineContext<'_>) -> Result<EngineOutput> {
        let config = self
            .config
            .clone()
            .with_registry(ctx.registry.clone())
            .with_telemetry(ctx.telemetry)
            .with_threads(ctx.threads);
        let n_workers = config.n_workers;
        let rt = ClusterRuntime::new(config, ctx.store.clone());
        let (rows, report) = rt.run_logical(plan, ctx.registry)?;
        let ClusterReportParts { query, per_worker, failures, checkpoint_bytes, traffic, trace } =
            ClusterReportParts::from(report);
        let (rehash_bytes, broadcast_bytes, gather_bytes, rows_routed) = traffic;
        Ok(EngineOutput {
            rows,
            report: query,
            cluster: Some(ClusterStats {
                n_workers,
                per_worker,
                failures,
                checkpoint_bytes,
                rehash_bytes,
                broadcast_bytes,
                gather_bytes,
                rows_routed,
            }),
            trace,
        })
    }
}

/// Destructuring helper keeping `execute` readable.
struct ClusterReportParts {
    query: QueryReport,
    per_worker: Vec<ExecMetrics>,
    failures: Vec<FailureEvent>,
    checkpoint_bytes: u64,
    /// (rehash, broadcast, gather, rows-per-worker) router traffic.
    traffic: (u64, u64, u64, Vec<u64>),
    trace: Option<ExecTrace>,
}

impl From<rex_cluster::report::ClusterReport> for ClusterReportParts {
    fn from(r: rex_cluster::report::ClusterReport) -> ClusterReportParts {
        ClusterReportParts {
            query: r.query,
            per_worker: r.per_worker,
            failures: r.failures,
            checkpoint_bytes: r.checkpoint_bytes,
            traffic: (r.rehash_bytes, r.broadcast_bytes, r.gather_bytes, r.rows_routed),
            trace: r.trace,
        }
    }
}
