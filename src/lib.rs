//! # REX — Recursive, Delta-Based Data-Centric Computation
//!
//! A from-scratch Rust reproduction of the REX system (Mihaylov, Ives,
//! Guha; PVLDB 5(11), 2012): a shared-nothing, pipelined parallel query
//! engine where incremental updates (*deltas*) are first-class citizens,
//! recursion executes in strata with user-defined termination, and state is
//! refined — not accumulated — from iteration to iteration.
//!
//! ## Front door: [`Session`]
//!
//! The paper's promise is that a user writes one recursive RQL query and
//! the system handles planning, optimization, distribution, and
//! delta-based iteration. [`Session`] is that promise as an API: create
//! tables, register delta handlers, and call [`Session::query`] — the
//! text runs through parse → resolve → optimize → lower → execute on the
//! engine the session was opened with.
//!
//! ```
//! use rex::Session;
//! use rex::core::tuple::{Schema, Tuple};
//! use rex::core::value::{DataType, Value};
//!
//! // Open a session (swap `local()` for `cluster(8)` to distribute —
//! // queries run unchanged).
//! let mut s = Session::local();
//! s.create_table(
//!     "org",
//!     Schema::of(&[("employee", DataType::Str), ("manager", DataType::Str)]),
//! ).unwrap();
//! s.insert("org", vec![
//!     Tuple::new(vec![Value::str("ada"), Value::str("grace")]),
//!     Tuple::new(vec![Value::str("grace"), Value::str("alan")]),
//! ]).unwrap();
//!
//! // Plain SQL...
//! let r = s.query("SELECT manager, count(*) FROM org GROUP BY manager").unwrap();
//! assert_eq!(r.rows.len(), 2);
//!
//! // ...and recursion to fixpoint, through the same call.
//! s.create_table("roots", Schema::of(&[("name", DataType::Str)])).unwrap();
//! s.insert("roots", vec![Tuple::new(vec![Value::str("alan")])]).unwrap();
//! let tree = s.query(
//!     "WITH reports (name) AS (SELECT name FROM roots)
//!      UNION UNTIL FIXPOINT BY name (
//!        SELECT org.employee FROM org, reports WHERE org.manager = reports.name)",
//! ).unwrap();
//! assert_eq!(tree.rows.len(), 3); // alan, grace, ada
//! assert!(tree.report.iterations() >= 3);
//! ```
//!
//! Execution backends implement the [`Engine`] trait ([`LocalEngine`],
//! [`ClusterEngine`]; see [`engine`] for the contract new backends must
//! satisfy). Results come back as [`QueryResult`]: rows, the per-stratum
//! [`QueryReport`](core::metrics::QueryReport), the optimizer's cost
//! estimate, and — for distributed runs — per-worker cluster stats.
//!
//! ## The RQL language
//!
//! The full SQL-style surface is documented in **`docs/RQL.md`**:
//! `SELECT` with `DISTINCT`, `HAVING`, `ORDER BY … LIMIT/OFFSET`
//! (deterministic ties, distributed top-k), aggregates over arbitrary
//! scalar expressions (`SUM(price * (1 - discount))`), `CREATE TABLE`
//! and `CREATE MATERIALIZED VIEW` / `DROP` DDL, and
//! `WITH … UNTIL FIXPOINT` recursion. `cargo run --example rql_tour`
//! exercises every clause on both engines.
//!
//! ## Materialized views & incremental maintenance
//!
//! Deltas are REX's substrate, and materialized views are the workload
//! where they pay off directly: `CREATE MATERIALIZED VIEW v AS <query>`
//! materializes the query once, and every subsequent
//! [`Session::insert`] / [`Session::delete`] batch propagates through the
//! view's *maintenance plan* — the select/project/join/group-by delta
//! rules of the [`views`] crate — touching state proportional to the
//! change, not the data. The hot path is constant-work per delta tuple:
//! `sum`/`count`/`avg` keep O(1) running scalars, `min`/`max` an
//! O(log n) count-annotated multiset (deleting the current extreme
//! included), and all keyed state lives in hash maps keyed by the
//! deterministic in-tree [`core::hash::FxHasher`]. Recursive
//! (`WITH … UNTIL FIXPOINT`) definitions fall back to full recomputation
//! automatically; `explain` on the DDL shows which strategy — and which
//! per-aggregate specialization — a view gets. A bare `SELECT * FROM v`
//! is served directly from authoritative view state (no engine pass);
//! composed queries read the stored copy, which syncs *delta-granularly*
//! — O(change), not O(view). Views can be defined over other views
//! (deltas cascade in dependency-depth order), and `drop_table` refuses
//! while a view still reads the table.
//!
//! ```
//! use rex::Session;
//! use rex::core::tuple::{Schema, Tuple};
//! use rex::core::value::{DataType, Value};
//!
//! let mut s = Session::local();
//! s.create_table("orders", Schema::of(&[("cust", DataType::Str), ("amt", DataType::Double)]))
//!     .unwrap();
//! s.insert("orders", vec![Tuple::new(vec![Value::str("ada"), Value::Double(10.0)])]).unwrap();
//! s.query("CREATE MATERIALIZED VIEW spend AS \
//!          SELECT cust, sum(amt) FROM orders GROUP BY cust").unwrap();
//! // The insert maintains the view incrementally; the scan reads state.
//! s.insert("orders", vec![Tuple::new(vec![Value::str("ada"), Value::Double(5.0)])]).unwrap();
//! let r = s.query("SELECT sum FROM spend").unwrap();
//! assert_eq!(r.rows[0].get(0), &Value::Double(15.0));
//! ```
//!
//! `cargo run --example incremental_views` walks the full lifecycle, and
//! `cargo run --release -p rex-bench --bin ivm_maintenance` measures
//! maintenance against per-batch recomputation (`BENCH_ivm.json`).
//!
//! ## Workspace layout
//!
//! * [`core`] — deltas, operators, the execution engine;
//! * [`storage`] — partitioned replicated tables, snapshots, checkpoints;
//! * [`cluster`] — the distributed runtime with incremental recovery;
//! * [`rql`] — the RQL language (SQL + fixpoint recursion + UDAs + view DDL);
//! * [`views`] — incrementally maintained materialized views;
//! * [`optimizer`] — cost-based top-down optimization;
//! * [`hadoop`] — the MapReduce/HaLoop simulator used as a baseline;
//! * [`dbms`] — the accumulate-only recursive-SQL "DBMS X" baseline;
//! * [`algos`] — delta-oriented PageRank, shortest paths, K-means, and
//!   their MapReduce twins;
//! * [`data`] — synthetic dataset generators.
//!
//! See `README.md` for a tour, `docs/RQL.md` for the language
//! reference, and `ROADMAP.md` for the open items.

pub mod engine;
pub mod session;
pub mod snapshot;

pub use engine::{ClusterEngine, ClusterStats, Engine, EngineContext, EngineOutput, LocalEngine};
pub use session::{QueryResult, Session};
pub use snapshot::{SnapshotView, ViewStat};

pub use rex_algos as algos;
pub use rex_cluster as cluster;
pub use rex_core as core;
pub use rex_data as data;
pub use rex_dbms as dbms;
pub use rex_hadoop as hadoop;
pub use rex_optimizer as optimizer;
pub use rex_rql as rql;
pub use rex_storage as storage;
pub use rex_views as views;
