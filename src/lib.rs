//! # REX — Recursive, Delta-Based Data-Centric Computation
//!
//! A from-scratch Rust reproduction of the REX system (Mihaylov, Ives,
//! Guha; PVLDB 5(11), 2012): a shared-nothing, pipelined parallel query
//! engine where incremental updates (*deltas*) are first-class citizens,
//! recursion executes in strata with user-defined termination, and state is
//! refined — not accumulated — from iteration to iteration.
//!
//! ## Front door: [`Session`]
//!
//! The paper's promise is that a user writes one recursive RQL query and
//! the system handles planning, optimization, distribution, and
//! delta-based iteration. [`Session`] is that promise as an API: create
//! tables, register delta handlers, and call [`Session::query`] — the
//! text runs through parse → resolve → optimize → lower → execute on the
//! engine the session was opened with.
//!
//! ```
//! use rex::Session;
//! use rex::core::tuple::{Schema, Tuple};
//! use rex::core::value::{DataType, Value};
//!
//! // Open a session (swap `local()` for `cluster(8)` to distribute —
//! // queries run unchanged).
//! let mut s = Session::local();
//! s.create_table(
//!     "org",
//!     Schema::of(&[("employee", DataType::Str), ("manager", DataType::Str)]),
//! ).unwrap();
//! s.insert("org", vec![
//!     Tuple::new(vec![Value::str("ada"), Value::str("grace")]),
//!     Tuple::new(vec![Value::str("grace"), Value::str("alan")]),
//! ]).unwrap();
//!
//! // Plain SQL...
//! let r = s.query("SELECT manager, count(*) FROM org GROUP BY manager").unwrap();
//! assert_eq!(r.rows.len(), 2);
//!
//! // ...and recursion to fixpoint, through the same call.
//! s.create_table("roots", Schema::of(&[("name", DataType::Str)])).unwrap();
//! s.insert("roots", vec![Tuple::new(vec![Value::str("alan")])]).unwrap();
//! let tree = s.query(
//!     "WITH reports (name) AS (SELECT name FROM roots)
//!      UNION UNTIL FIXPOINT BY name (
//!        SELECT org.employee FROM org, reports WHERE org.manager = reports.name)",
//! ).unwrap();
//! assert_eq!(tree.rows.len(), 3); // alan, grace, ada
//! assert!(tree.report.iterations() >= 3);
//! ```
//!
//! Execution backends implement the [`Engine`] trait ([`LocalEngine`],
//! [`ClusterEngine`]; see [`engine`] for the contract new backends must
//! satisfy). Results come back as [`QueryResult`]: rows, the per-stratum
//! [`QueryReport`](core::metrics::QueryReport), the optimizer's cost
//! estimate, and — for distributed runs — per-worker cluster stats.
//!
//! ## Workspace layout
//!
//! * [`core`] — deltas, operators, the execution engine;
//! * [`storage`] — partitioned replicated tables, snapshots, checkpoints;
//! * [`cluster`] — the distributed runtime with incremental recovery;
//! * [`rql`] — the RQL language (SQL + fixpoint recursion + UDAs);
//! * [`optimizer`] — cost-based top-down optimization;
//! * [`hadoop`] — the MapReduce/HaLoop simulator used as a baseline;
//! * [`dbms`] — the accumulate-only recursive-SQL "DBMS X" baseline;
//! * [`algos`] — delta-oriented PageRank, shortest paths, K-means, and
//!   their MapReduce twins;
//! * [`data`] — synthetic dataset generators.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the paper's
//! figure-by-figure reproduction.

pub mod engine;
pub mod session;

pub use engine::{ClusterEngine, ClusterStats, Engine, EngineContext, EngineOutput, LocalEngine};
pub use session::{QueryResult, Session};

pub use rex_algos as algos;
pub use rex_cluster as cluster;
pub use rex_core as core;
pub use rex_data as data;
pub use rex_dbms as dbms;
pub use rex_hadoop as hadoop;
pub use rex_optimizer as optimizer;
pub use rex_rql as rql;
pub use rex_storage as storage;
