//! # REX — Recursive, Delta-Based Data-Centric Computation
//!
//! A from-scratch Rust reproduction of the REX system (Mihaylov, Ives,
//! Guha; PVLDB 5(11), 2012): a shared-nothing, pipelined parallel query
//! engine where incremental updates (*deltas*) are first-class citizens,
//! recursion executes in strata with user-defined termination, and state is
//! refined — not accumulated — from iteration to iteration.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] — deltas, operators, the execution engine;
//! * [`storage`] — partitioned replicated tables, snapshots, checkpoints;
//! * [`cluster`] — the distributed runtime with incremental recovery;
//! * [`rql`] — the RQL language (SQL + fixpoint recursion + UDAs);
//! * [`optimizer`] — cost-based top-down optimization;
//! * [`hadoop`] — the MapReduce/HaLoop simulator used as a baseline;
//! * [`dbms`] — the accumulate-only recursive-SQL "DBMS X" baseline;
//! * [`algos`] — delta-oriented PageRank, shortest paths, K-means, and
//!   their MapReduce twins;
//! * [`data`] — synthetic dataset generators.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the paper's
//! figure-by-figure reproduction.

pub use rex_algos as algos;
pub use rex_cluster as cluster;
pub use rex_core as core;
pub use rex_data as data;
pub use rex_dbms as dbms;
pub use rex_hadoop as hadoop;
pub use rex_optimizer as optimizer;
pub use rex_rql as rql;
pub use rex_storage as storage;
